"""Beam-search influence-path planning.

Algorithm 1 of the paper generates the influence path greedily: at each step
the single highest-probability item (given the objective through the PIM) is
appended.  Greedy decoding can paint the path into a corner — exactly the
limitation the paper attributes to Rec2Inf ("the local optimal selections may
not ultimately reach the global optimal influence path", §III-C).

:class:`BeamSearchPlanner` wraps any recommender that exposes
``score_with_objective(sequence, objective, user_index)`` (IRN does) and
plans the whole path with beam search instead.  Hypotheses are scored by
their average per-step log-probability plus a terminal bonus for reaching the
objective; the best complete hypothesis (or the best partial one, if none is
complete) becomes the influence path.

The planner also implements the standard
:class:`~repro.core.base.InfluentialRecommender` interface, so it drops into
every evaluation protocol: ``next_step`` simply serves the next item of the
currently planned path and replans when the context changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.base import InfluentialRecommender, influential_registry
from repro.data.splitting import DatasetSplit
from repro.utils.exceptions import ConfigurationError

__all__ = ["BeamSearchPlanner"]


@runtime_checkable
class _ObjectiveScorer(Protocol):
    """Anything that can score the next item conditioned on an objective."""

    def score_with_objective(
        self, sequence: Sequence[int], objective: int, user_index: int | None = None
    ) -> np.ndarray:  # pragma: no cover - protocol signature only
        ...


@dataclass(frozen=True)
class _Hypothesis:
    """One partial path inside the beam."""

    items: tuple[int, ...]
    log_probability: float
    reached: bool

    def score(self, objective_bonus: float) -> float:
        """Length-normalised log-probability plus the completion bonus."""
        length = max(len(self.items), 1)
        return self.log_probability / length + (objective_bonus if self.reached else 0.0)


@influential_registry.register("beam")
class BeamSearchPlanner(InfluentialRecommender):
    """Plan influence paths with beam search over an objective-aware scorer.

    Parameters
    ----------
    backbone:
        A fitted (or fit-able) recommender exposing ``score_with_objective``
        — in practice an :class:`~repro.core.irn.IRN`.
    beam_width:
        Number of hypotheses kept per step.
    branch_factor:
        Number of next-item candidates expanded from each hypothesis.
    objective_bonus:
        Additive bonus (in average-log-prob units) for hypotheses that reach
        the objective; larger values prefer *reaching* over smoothness.
    fit_backbone:
        Whether :meth:`fit` should also fit the backbone.
    """

    name = "IRN-beam"

    def __init__(
        self,
        backbone: _ObjectiveScorer,
        beam_width: int = 4,
        branch_factor: int = 4,
        objective_bonus: float = 1.0,
        fit_backbone: bool = False,
    ) -> None:
        super().__init__()
        if not hasattr(backbone, "score_with_objective"):
            raise ConfigurationError(
                "BeamSearchPlanner needs a backbone with score_with_objective()"
            )
        if beam_width <= 0 or branch_factor <= 0:
            raise ConfigurationError("beam_width and branch_factor must be positive")
        if objective_bonus < 0:
            raise ConfigurationError("objective_bonus must be non-negative")
        self.backbone = backbone
        self.beam_width = beam_width
        self.branch_factor = branch_factor
        self.objective_bonus = objective_bonus
        self.fit_backbone = fit_backbone
        backbone_name = getattr(backbone, "name", type(backbone).__name__)
        self.name = f"{backbone_name}-beam"
        self._plan_key: tuple | None = None
        self._plan: list[int] = []

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "BeamSearchPlanner":
        self.corpus = split.corpus
        if self.fit_backbone:
            self.backbone.fit(split)  # type: ignore[attr-defined]
        backbone_corpus = getattr(self.backbone, "corpus", None)
        if backbone_corpus is None:
            raise ConfigurationError("the beam-search backbone must be fitted")
        return self

    # ------------------------------------------------------------------ #
    def _log_softmax(self, scores: np.ndarray) -> np.ndarray:
        finite = np.isfinite(scores)
        shifted = scores - np.max(scores[finite])
        exp = np.where(finite, np.exp(shifted), 0.0)
        log_norm = float(np.log(exp.sum()))
        return np.where(finite, shifted - log_norm, -np.inf)

    def _expand(
        self,
        hypothesis: _Hypothesis,
        history: Sequence[int],
        objective: int,
        user_index: int | None,
    ) -> list[_Hypothesis]:
        sequence = list(history) + list(hypothesis.items)
        scores = np.asarray(
            self.backbone.score_with_objective(sequence, objective, user_index=user_index),
            dtype=np.float64,
        ).copy()
        for item in sequence:
            if item != objective:
                scores[item] = -np.inf
        log_probs = self._log_softmax(scores)
        order = np.argsort(-log_probs, kind="stable")[: self.branch_factor]
        children = []
        for item in order:
            item = int(item)
            if not np.isfinite(log_probs[item]):
                continue
            children.append(
                _Hypothesis(
                    items=hypothesis.items + (item,),
                    log_probability=hypothesis.log_probability + float(log_probs[item]),
                    reached=item == objective,
                )
            )
        return children

    def plan_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        """Plan a full influence path with beam search."""
        if max_length <= 0:
            raise ConfigurationError(f"max_length must be positive, got {max_length}")
        self._require_fitted()
        beam = [_Hypothesis(items=(), log_probability=0.0, reached=False)]
        complete: list[_Hypothesis] = []

        for _ in range(max_length):
            candidates: list[_Hypothesis] = []
            for hypothesis in beam:
                if hypothesis.reached:
                    complete.append(hypothesis)
                    continue
                candidates.extend(self._expand(hypothesis, history, objective, user_index))
            if not candidates:
                break
            candidates.sort(key=lambda h: h.score(self.objective_bonus), reverse=True)
            beam = candidates[: self.beam_width]

        complete.extend(hypothesis for hypothesis in beam if hypothesis.reached)
        pool = complete if complete else beam
        if not pool:
            return []
        best = max(pool, key=lambda h: h.score(self.objective_bonus))
        return list(best.items)

    # ------------------------------------------------------------------ #
    # InfluentialRecommender interface
    # ------------------------------------------------------------------ #
    def generate_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        return self.plan_path(history, objective, user_index=user_index, max_length=max_length)

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        key = (tuple(history), int(objective), user_index)
        path_so_far = list(path_so_far)
        if self._plan_key != key or self._plan[: len(path_so_far)] != path_so_far:
            remaining = max(20 - len(path_so_far), 1)
            replanned = self.plan_path(
                list(history) + path_so_far, objective, user_index=user_index, max_length=remaining
            )
            self._plan_key = key
            self._plan = path_so_far + replanned
        if len(self._plan) > len(path_so_far):
            return int(self._plan[len(path_so_far)])
        return None
