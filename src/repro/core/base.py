"""Common interface for influential recommenders and Algorithm 1."""

from __future__ import annotations

import abc
from typing import Sequence

from repro.data.interactions import SequenceCorpus
from repro.data.splitting import DatasetSplit
from repro.utils.batch import broadcast_user_indices, check_batch_lengths
from repro.utils.exceptions import NotFittedError
from repro.utils.registry import Registry

__all__ = ["InfluentialRecommender", "influential_registry"]

#: Registry mapping framework names ("irn", "rec2inf", "pf2inf", ...) to classes.
influential_registry: Registry["InfluentialRecommender"] = Registry("influential recommender")


class InfluentialRecommender(abc.ABC):
    """A recommender that leads a user toward a given objective item.

    The central operation is :meth:`next_step` — the recommender function
    ``F(s_h, i_t, s_p)`` of Algorithm 1 — which proposes the next path item
    given the user's history, the objective and the path generated so far.
    :meth:`generate_path` runs the full Algorithm 1 loop.
    """

    #: human-readable name used in result tables
    name: str = "influential"

    def __init__(self) -> None:
        self.corpus: SequenceCorpus | None = None

    @abc.abstractmethod
    def fit(self, split: DatasetSplit) -> "InfluentialRecommender":
        """Train (or index) the recommender on the training split."""

    @abc.abstractmethod
    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        """Return the next path item, or ``None`` if no item can be proposed."""

    # ------------------------------------------------------------------ #
    def generate_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        """Run Algorithm 1: recommend path items until the objective or ``max_length``."""
        from repro.core.influence_path import generate_influence_path

        return generate_influence_path(
            self, history, objective, user_index=user_index, max_length=max_length
        )

    def generate_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int = 20,
    ) -> list[list[int]]:
        """Run Algorithm 1 for a batch of ``(history, objective)`` instances.

        The default implementation simply loops :meth:`generate_path`;
        recommenders with batched scoring (IRN, the beam planner) override it
        to fuse all instances that share a step index into single model
        forwards.  The evaluation protocol always calls this entry point.
        """
        check_batch_lengths(len(histories), objectives=objectives)
        users = broadcast_user_indices(len(histories), user_indices)
        return [
            self.generate_path(history, objective, user_index=user, max_length=max_length)
            for history, objective, user in zip(histories, objectives, users)
        ]

    def _require_fitted(self) -> SequenceCorpus:
        if self.corpus is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.corpus
