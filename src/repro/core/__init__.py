"""The Influential Recommender System frameworks (§III of the paper).

* :class:`~repro.core.base.InfluentialRecommender` — common interface: given
  a user history and an objective item, produce the next path item (and, via
  Algorithm 1, a whole influence path).
* :class:`~repro.core.pf2inf.Pf2Inf` — path-finding on the item graph
  (Dijkstra / minimum spanning tree), §III-B.
* :class:`~repro.core.rec2inf.Rec2Inf` — greedy adaptation of any existing
  sequential recommender: re-rank its top-k candidates by distance to the
  objective, §III-C.
* :class:`~repro.core.vanilla.VanillaInfluential` — the unadapted baseline
  that just repeats the backbone's top recommendation.
* :class:`~repro.core.irn.IRN` — the Influential Recommender Network with the
  Personalized Impressionability Mask, §III-D.
"""

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.beam import BeamSearchPlanner
from repro.core.distance import ItemDistance
from repro.core.influence_path import generate_influence_path
from repro.core.irn import IRN
from repro.core.item_graph import build_item_graph
from repro.core.objectives import (
    CategoryObjective,
    ItemSetObjective,
    ObjectiveSet,
    SingleItemObjective,
    generate_path_to_set,
)
from repro.core.pf2inf import Pf2Inf
from repro.core.pim import MaskType, build_pim
from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential

__all__ = [
    "BeamSearchPlanner",
    "CategoryObjective",
    "IRN",
    "InfluentialRecommender",
    "ItemDistance",
    "ItemSetObjective",
    "MaskType",
    "ObjectiveSet",
    "Pf2Inf",
    "Rec2Inf",
    "SingleItemObjective",
    "VanillaInfluential",
    "build_item_graph",
    "build_pim",
    "generate_influence_path",
    "generate_path_to_set",
    "influential_registry",
]
