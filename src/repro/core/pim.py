"""Personalized Impressionability Mask (PIM), §III-D3/4 of the paper.

The PIM is an *additive* attention mask over a pre-padded input sequence
whose final position holds the objective item.  It combines three effects:

1. **Causality** — position ``j`` may attend only to positions ``k <= j``
   (standard Transformer-decoder mask, Figure 5(a)).
2. **Perceiving the objective** — every position may additionally attend to
   the objective item at the final position (Figure 5(b)).  The objective
   column receives an additive weight ``w_t`` while visible history
   positions receive ``w_h`` (the paper sets ``w_t > w_h``).
3. **Personalization** — the objective weight is scaled by the user's
   learned impressionability factor ``r_u`` (Figure 5(c)), so impressionable
   users get a stronger pull toward the objective.

Three mask types are distinguished, matching the Table V ablation:

* ``MaskType.CAUSAL`` (Type 1) — no objective attention (``w_h = w_t = 0``).
* ``MaskType.OBJECTIVE`` (Type 2) — uniform objective weight ``w_t``.
* ``MaskType.PERSONALIZED`` (Type 3) — objective weight ``r_u * w_t``.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.data.padding import PAD_INDEX
from repro.nn.attention import NEG_INF
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "MaskType",
    "causal_history_mask",
    "objective_column_indicator",
    "build_pim",
]


class MaskType(IntEnum):
    """The three masking schemes compared in Table V."""

    CAUSAL = 1
    OBJECTIVE = 2
    PERSONALIZED = 3


def causal_history_mask(items: np.ndarray, history_weight: float = 0.0) -> np.ndarray:
    """Causal + padding additive mask of shape ``(batch, length, length)``.

    * future positions (``k > j``) get :data:`NEG_INF`;
    * padding keys get :data:`NEG_INF` (real positions never attend to pads);
    * visible real history positions get ``history_weight`` (``w_h``).
    """
    items = np.asarray(items, dtype=np.int64)
    if items.ndim != 2:
        raise ConfigurationError(f"items must be a (batch, length) array, got {items.shape}")
    batch, length = items.shape
    future = np.triu(np.ones((length, length), dtype=bool), k=1)
    mask = np.where(future, NEG_INF, float(history_weight))[None, :, :]
    mask = np.repeat(mask, batch, axis=0)
    padding_keys = items == PAD_INDEX
    mask = np.where(padding_keys[:, None, :], NEG_INF, mask)
    return mask


def objective_column_indicator(length: int) -> np.ndarray:
    """Indicator ``(length, length)`` matrix of the objective-attention entries.

    Entry ``[j, length-1]`` is 1 for every ``j < length - 1`` — i.e. the
    positions for which the objective (last position) would normally be
    masked as "future" but is revealed by the PIM.
    """
    indicator = np.zeros((length, length), dtype=np.float64)
    if length >= 2:
        indicator[: length - 1, length - 1] = 1.0
    return indicator


def build_pim(
    items: np.ndarray,
    mask_type: MaskType = MaskType.PERSONALIZED,
    objective_weight: float = 1.0,
    history_weight: float = 0.0,
    impressionability: np.ndarray | float | None = None,
) -> np.ndarray:
    """Build the full (non-differentiable) PIM as a NumPy array.

    This is the reference construction used by tests, analysis and inference.
    During training the IRN module composes the same mask from
    :func:`causal_history_mask` and :func:`objective_column_indicator` as a
    :class:`~repro.nn.tensor.Tensor` expression so gradients reach the
    impressionability factor.

    Parameters
    ----------
    items:
        ``(batch, length)`` pre-padded item indices whose final column holds
        the objective item.
    mask_type:
        One of :class:`MaskType`.
    objective_weight:
        The ``w_t`` hyperparameter (Figure 7 sweeps it over {0, .25, .5, .75, 1}).
    history_weight:
        The ``w_h`` mask weight for visible history positions.
    impressionability:
        Per-sequence ``r_u`` values (scalar or ``(batch,)`` array); required
        for ``MaskType.PERSONALIZED``.
    """
    items = np.asarray(items, dtype=np.int64)
    base = causal_history_mask(items, history_weight=history_weight)
    batch, length = items.shape
    if mask_type == MaskType.CAUSAL or length < 2:
        return base

    if mask_type == MaskType.OBJECTIVE:
        weights = np.full(batch, float(objective_weight))
    elif mask_type == MaskType.PERSONALIZED:
        if impressionability is None:
            raise ConfigurationError(
                "MaskType.PERSONALIZED requires the impressionability factor r_u"
            )
        weights = np.broadcast_to(
            np.asarray(impressionability, dtype=np.float64).reshape(-1), (batch,)
        ) * float(objective_weight)
    else:  # pragma: no cover - IntEnum exhausts the options
        raise ConfigurationError(f"unknown mask type {mask_type}")

    pim = base.copy()
    # Reveal the objective column to every preceding position with the
    # configured additive weight (overriding the causal NEG_INF).
    pim[:, : length - 1, length - 1] = weights[:, None]
    return pim
