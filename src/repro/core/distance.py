"""Item-to-item distances used by the Rec2Inf greedy re-ranking (§III-C).

The paper computes item distance from the genre feature vector on
MovieLens-1M and from item2vec embeddings on Lastfm.  Both options are
provided, plus a co-occurrence-embedding fallback, behind a single
:class:`ItemDistance` facade.
"""

from __future__ import annotations

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError

__all__ = ["ItemDistance"]


class ItemDistance:
    """Cosine distance between item feature vectors.

    Parameters
    ----------
    vectors:
        ``(vocab_size, dim)`` feature matrix; row 0 (padding) is ignored.
    """

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ConfigurationError("item feature matrix must be 2-dimensional")
        self._vectors = vectors
        norms = np.linalg.norm(vectors, axis=1)
        norms[norms == 0] = 1.0
        self._normalised = vectors / norms[:, None]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_genres(cls, corpus: SequenceCorpus) -> "ItemDistance":
        """Distance on binary genre vectors (the MovieLens option of the paper)."""
        if corpus.item_genre_matrix is None:
            raise ConfigurationError(
                f"corpus '{corpus.name}' has no genre metadata for genre distances"
            )
        return cls(corpus.item_genre_matrix.astype(np.float64))

    @classmethod
    def from_embeddings(cls, vectors: np.ndarray) -> "ItemDistance":
        """Distance on learned embeddings (the item2vec option of the paper)."""
        return cls(vectors)

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return self._vectors.shape[0]

    def distance(self, first: int, second: int) -> float:
        """Cosine distance in ``[0, 2]``; identical items have distance 0."""
        if first == second:
            return 0.0
        similarity = float(self._normalised[first] @ self._normalised[second])
        return 1.0 - similarity

    def distances_to(self, objective: int) -> np.ndarray:
        """Vector of distances from every item to ``objective``."""
        similarities = self._normalised @ self._normalised[objective]
        distances = 1.0 - similarities
        distances[objective] = 0.0
        return distances

    def closest_to(self, objective: int, candidates: list[int]) -> int:
        """Return the candidate with the smallest distance to ``objective``.

        Ties are broken by candidate order, so when the backbone's ranking is
        passed in rank order the better-ranked item wins (keeps Rec2Inf paths
        closer to the user's interests when several candidates are equally
        distant from the objective).
        """
        if not candidates:
            raise ConfigurationError("cannot pick from an empty candidate list")
        distances = self.distances_to(objective)
        best_item, best_key = candidates[0], (distances[candidates[0]], 0)
        for position, item in enumerate(candidates[1:], start=1):
            key = (distances[item], position)
            if key < best_key:
                best_item, best_key = item, key
        return int(best_item)
