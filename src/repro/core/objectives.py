"""Objective sets: influencing a user toward a collection, category or topic.

The paper's conclusion (future-work direction 3) proposes to "expand the
scope of the objective in IRS ... the objective can be a collection of items,
a category, a topic, etc.".  This module provides that generalisation on top
of the single-item machinery:

* :class:`ObjectiveSet` and its concrete forms (:class:`SingleItemObjective`,
  :class:`ItemSetObjective`, :class:`CategoryObjective`) describe *which*
  items count as reaching the goal.
* :func:`resolve_target` picks the concrete member item the path should steer
  toward, given the user's current sequence (nearest / most popular member).
* :func:`generate_path_to_set` runs the Algorithm 1 loop against an objective
  set, optionally re-targeting the concrete member after every step.
* :class:`SetPathRecord` plus :func:`set_success_rate` /
  :func:`set_increase_of_interest` evaluate the generated paths, where
  success means reaching *any* member of the set.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.base import InfluentialRecommender
from repro.core.distance import ItemDistance
from repro.data.interactions import SequenceCorpus
from repro.evaluation.evaluator import IRSEvaluator
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ObjectiveSet",
    "SingleItemObjective",
    "ItemSetObjective",
    "CategoryObjective",
    "resolve_target",
    "generate_path_to_set",
    "SetPathRecord",
    "set_success_rate",
    "set_increase_of_interest",
]


class ObjectiveSet(abc.ABC):
    """A goal that is satisfied by any item from some set."""

    #: human-readable description used in reports
    name: str = "objective"

    @abc.abstractmethod
    def members(self, corpus: SequenceCorpus) -> list[int]:
        """Item indices that satisfy the objective (non-empty, no padding)."""

    # ------------------------------------------------------------------ #
    def contains(self, item: int, corpus: SequenceCorpus) -> bool:
        """Whether ``item`` satisfies the objective."""
        return int(item) in set(self.members(corpus))

    def validate(self, corpus: SequenceCorpus) -> list[int]:
        """Return the members, raising if the set is empty or out of range."""
        members = [int(item) for item in self.members(corpus)]
        if not members:
            raise ConfigurationError(f"objective '{self.name}' has no member items")
        for item in members:
            if not 1 <= item < corpus.vocab.size:
                raise ConfigurationError(f"objective member {item} outside the vocabulary")
        return members


class SingleItemObjective(ObjectiveSet):
    """The paper's original setting: one concrete objective item."""

    def __init__(self, item: int) -> None:
        self.item = int(item)
        self.name = f"item:{self.item}"

    def members(self, corpus: SequenceCorpus) -> list[int]:
        return [self.item]


class ItemSetObjective(ObjectiveSet):
    """An explicit collection of acceptable objective items."""

    def __init__(self, items: Sequence[int], name: str | None = None) -> None:
        unique = sorted({int(item) for item in items})
        if not unique:
            raise ConfigurationError("ItemSetObjective needs at least one item")
        self.items = unique
        self.name = name or f"set:{len(unique)} items"

    def members(self, corpus: SequenceCorpus) -> list[int]:
        return list(self.items)


class CategoryObjective(ObjectiveSet):
    """All sufficiently popular items of one genre/category.

    Parameters
    ----------
    genre:
        Genre name as it appears in ``corpus.genre_names``.
    min_interactions:
        Only items with at least this many training interactions qualify
        (mirrors the paper's objective-popularity constraint, §IV-B1).
    """

    def __init__(self, genre: str, min_interactions: int = 5) -> None:
        if min_interactions < 0:
            raise ConfigurationError("min_interactions must be non-negative")
        self.genre = genre
        self.min_interactions = min_interactions
        self.name = f"category:{genre}"

    def members(self, corpus: SequenceCorpus) -> list[int]:
        if corpus.item_genre_matrix is None or not corpus.genre_names:
            raise ConfigurationError(
                f"corpus '{corpus.name}' has no genre metadata for category objectives"
            )
        if self.genre not in corpus.genre_names:
            raise ConfigurationError(
                f"unknown genre '{self.genre}' (available: {', '.join(corpus.genre_names)})"
            )
        column = corpus.genre_names.index(self.genre)
        in_genre = np.flatnonzero(corpus.item_genre_matrix[:, column])
        popularity = corpus.item_popularity()
        members = [
            int(item)
            for item in in_genre
            if item != 0 and popularity[item] >= self.min_interactions
        ]
        if not members:
            # Fall back to the genre membership alone rather than failing.
            members = [int(item) for item in in_genre if item != 0]
        return members


# ---------------------------------------------------------------------- #
# Target resolution
# ---------------------------------------------------------------------- #
def resolve_target(
    objective: ObjectiveSet,
    corpus: SequenceCorpus,
    sequence: Sequence[int],
    distance: ItemDistance | None = None,
    strategy: str = "nearest",
) -> int:
    """Pick the concrete member item the influence path should steer toward.

    Strategies
    ----------
    ``"nearest"``
        The member closest (by ``distance``) to the most recent items of the
        user's sequence — the easiest member to reach from the current
        interests.  Requires ``distance``; falls back to ``"popular"`` when
        no distance is given.
    ``"popular"``
        The member with the most training interactions.
    ``"first"``
        The first member in canonical order (deterministic, metadata-free).
    """
    members = objective.validate(corpus)
    if len(members) == 1:
        return members[0]
    if strategy == "nearest" and distance is None:
        strategy = "popular"

    if strategy == "nearest":
        assert distance is not None
        recent = [item for item in list(sequence)[-5:] if item != 0]
        if not recent:
            strategy = "popular"
        else:
            costs = []
            for member in members:
                distances = distance.distances_to(member)
                costs.append(float(np.mean([distances[item] for item in recent])))
            return members[int(np.argmin(costs))]

    if strategy == "popular":
        popularity = corpus.item_popularity()
        return members[int(np.argmax([popularity[item] for item in members]))]
    if strategy == "first":
        return members[0]
    raise ConfigurationError(f"unknown target-resolution strategy '{strategy}'")


# ---------------------------------------------------------------------- #
# Path generation against an objective set
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SetPathRecord:
    """One influence path generated toward an objective set."""

    user_index: int | None
    history: tuple[int, ...]
    objective_name: str
    members: tuple[int, ...]
    resolved_targets: tuple[int, ...]
    path: tuple[int, ...]

    @property
    def reached(self) -> bool:
        """Whether the path contains any member of the objective set."""
        members = set(self.members)
        return any(item in members for item in self.path)

    @property
    def reached_item(self) -> int | None:
        """The first member item the path reached, if any."""
        members = set(self.members)
        for item in self.path:
            if item in members:
                return int(item)
        return None


def generate_path_to_set(
    recommender: InfluentialRecommender,
    history: Sequence[int],
    objective: ObjectiveSet,
    corpus: SequenceCorpus,
    distance: ItemDistance | None = None,
    user_index: int | None = None,
    max_length: int = 20,
    retarget: bool = True,
    strategy: str = "nearest",
) -> SetPathRecord:
    """Run Algorithm 1 toward an objective *set*.

    At every step the concrete target handed to the recommender is a member
    of the set, chosen by :func:`resolve_target`.  With ``retarget=True`` the
    target is re-resolved after each accepted step, so the path may switch to
    a member that has become easier to reach; with ``retarget=False`` the
    initial target is kept (the single-item behaviour).
    """
    if max_length <= 0:
        raise ConfigurationError(f"max_length must be positive, got {max_length}")
    members = tuple(objective.validate(corpus))
    member_set = set(members)
    history = list(history)
    path: list[int] = []
    resolved: list[int] = []

    target = resolve_target(objective, corpus, history, distance=distance, strategy=strategy)
    while len(path) < max_length:
        resolved.append(target)
        item = recommender.next_step(history, target, path, user_index=user_index)
        if item is None:
            break
        path.append(int(item))
        if item in member_set:
            break
        if retarget:
            target = resolve_target(
                objective, corpus, history + path, distance=distance, strategy=strategy
            )
    return SetPathRecord(
        user_index=user_index,
        history=tuple(history),
        objective_name=objective.name,
        members=members,
        resolved_targets=tuple(resolved),
        path=tuple(path),
    )


# ---------------------------------------------------------------------- #
# Evaluation
# ---------------------------------------------------------------------- #
def set_success_rate(records: Sequence[SetPathRecord]) -> float:
    """Fraction of paths that reached *any* member of their objective set."""
    if not records:
        raise ConfigurationError("no set-path records to evaluate")
    return sum(1 for record in records if record.reached) / len(records)


def set_increase_of_interest(
    records: Sequence[SetPathRecord], evaluator: IRSEvaluator
) -> float:
    """Mean best-member increase of interest.

    For each record the gain ``log P(m | s_h ⊕ s_p) - log P(m | s_h)`` is
    computed for every member ``m`` and the best gain is kept — the set is
    considered reached-toward if *some* member became substantially more
    likely.
    """
    if not records:
        raise ConfigurationError("no set-path records to evaluate")
    gains: list[float] = []
    for record in records:
        before_distribution = evaluator.distribution(record.history)
        after_distribution = evaluator.distribution(list(record.history) + list(record.path))
        member_gains = [
            float(
                np.log(max(after_distribution[member], 1e-12))
                - np.log(max(before_distribution[member], 1e-12))
            )
            for member in record.members
        ]
        gains.append(max(member_gains))
    return float(np.mean(gains))
