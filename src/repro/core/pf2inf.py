"""Pf2Inf: path-finding algorithms as influential recommenders (§III-B).

The item graph is built from the training sequences; the influence path is
the shortest path (Dijkstra) — or the tree path within a minimum spanning
tree (MST) — from the last item of the user's history to the objective item,
truncated to the first ``M`` items.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.item_graph import build_item_graph
from repro.data.splitting import DatasetSplit
from repro.utils.exceptions import ConfigurationError

__all__ = ["Pf2Inf"]


@influential_registry.register("pf2inf")
class Pf2Inf(InfluentialRecommender):
    """Graph path-finding influential recommender.

    Parameters
    ----------
    method:
        ``"dijkstra"`` for shortest paths on the item graph or ``"mst"`` for
        paths inside a minimum spanning tree of the graph.
    count_weights:
        Use transition counts as (inverse) edge weights instead of the
        paper's uniform weights.
    """

    def __init__(self, method: str = "dijkstra", count_weights: bool = False) -> None:
        super().__init__()
        method = method.lower()
        if method not in {"dijkstra", "mst"}:
            raise ConfigurationError(f"unknown Pf2Inf method '{method}'")
        self.method = method
        self.count_weights = count_weights
        self.name = f"Pf2Inf-{method.upper() if method == 'mst' else method.capitalize()}"
        self._graph: nx.Graph | None = None
        self._search_graph: nx.Graph | None = None

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "Pf2Inf":
        self.corpus = split.corpus
        self._graph = build_item_graph(
            (sequence.items for sequence in split.train), count_weights=self.count_weights
        )
        if self.method == "mst":
            # The MST of a disconnected graph is computed per component
            # (a minimum spanning forest), which preserves reachability.
            self._search_graph = nx.minimum_spanning_tree(self._graph, weight="weight")
        else:
            self._search_graph = self._graph
        return self

    # ------------------------------------------------------------------ #
    def _shortest_path(self, source: int, target: int) -> list[int] | None:
        assert self._search_graph is not None
        if source not in self._search_graph or target not in self._search_graph:
            return None
        try:
            path = nx.dijkstra_path(self._search_graph, source, target, weight="weight")
        except nx.NetworkXNoPath:
            return None
        return [int(node) for node in path]

    def plan_path(
        self, history: Sequence[int], objective: int, max_length: int = 20
    ) -> list[int]:
        """Return the whole (truncated) graph path, excluding the source item."""
        self._require_fitted()
        if not history:
            return []
        source = history[-1]
        path = self._shortest_path(int(source), int(objective))
        if path is None or len(path) < 2:
            return []
        return path[1 : max_length + 1]

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        """Return the next item along the pre-planned graph path."""
        planned = self.plan_path(history, objective, max_length=len(path_so_far) + 1)
        if len(planned) <= len(path_so_far):
            return None
        return planned[len(path_so_far)]

    def generate_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        """Plan the whole path at once (equivalent to, but faster than, Algorithm 1)."""
        return self.plan_path(history, objective, max_length=max_length)
