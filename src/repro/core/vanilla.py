"""Vanilla influential adaptation: repeat the backbone's top recommendation.

This is the "Vanilla" block of Table III: the original (user-oriented)
recommender generates the path by repeatedly recommending the item with the
highest ``P(i | s)``, with no awareness of the objective item.  It reaches
the objective only by accident, which is exactly the point of the comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import InfluentialRecommender, influential_registry
from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender
from repro.utils.exceptions import ConfigurationError

__all__ = ["VanillaInfluential"]


@influential_registry.register("vanilla")
class VanillaInfluential(InfluentialRecommender):
    """Objective-agnostic path generation with an unmodified backbone."""

    def __init__(
        self,
        backbone: SequentialRecommender,
        allow_repeats: bool = False,
        fit_backbone: bool = True,
    ) -> None:
        super().__init__()
        self.backbone = backbone
        self.allow_repeats = allow_repeats
        self.fit_backbone = fit_backbone
        self.name = f"Vanilla-{backbone.name}"

    def fit(self, split: DatasetSplit) -> "VanillaInfluential":
        self.corpus = split.corpus
        if self.fit_backbone:
            self.backbone.fit(split)
        elif self.backbone.corpus is None:
            raise ConfigurationError("backbone is not fitted and fit_backbone=False")
        return self

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        self._require_fitted()
        sequence = list(history) + list(path_so_far)
        exclude: list[int] = [] if self.allow_repeats else sequence
        candidates = self.backbone.top_k(sequence, 1, user_index=user_index, exclude=exclude)
        return candidates[0] if candidates else None
