"""Item graph construction from interaction sequences (§III-B).

Every item becomes a vertex; an undirected, equally weighted edge connects
two items whenever they appear consecutively in some training sequence
(following the item-graph practice of Wang et al., KDD 2018).  The graph is
the substrate of the Pf2Inf path-finding framework.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

__all__ = ["build_item_graph"]


def build_item_graph(
    sequences: Iterable[Sequence[int]],
    count_weights: bool = False,
) -> nx.Graph:
    """Build the undirected item graph from item-index sequences.

    Parameters
    ----------
    sequences:
        Iterable of item-index sequences (e.g. ``split.train`` item tuples).
    count_weights:
        If True, edge attribute ``count`` holds the co-occurrence count and
        ``weight`` its reciprocal (more frequent transitions = shorter
        edges).  If False every edge has ``weight`` 1, matching the paper's
        "assign equal weight to each edge".

    Returns
    -------
    networkx.Graph
        Vertices are item indices; isolated items (never adjacent to another
        item) still appear as nodes so membership checks are uniform.
    """
    graph = nx.Graph()
    for sequence in sequences:
        items = list(sequence)
        graph.add_nodes_from(items)
        for previous, current in zip(items[:-1], items[1:]):
            if previous == current:
                continue
            if graph.has_edge(previous, current):
                graph[previous][current]["count"] += 1
            else:
                graph.add_edge(previous, current, count=1)
    for _, _, attributes in graph.edges(data=True):
        if count_weights:
            attributes["weight"] = 1.0 / attributes["count"]
        else:
            attributes["weight"] = 1.0
    return graph
