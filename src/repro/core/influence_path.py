"""Algorithm 1 of the paper: the influence-path generation loop.

Given a user's interaction history ``s_h``, an objective item ``i_t`` and a
maximum length ``M``, repeatedly ask the influential recommender for the next
path item until the objective is recommended or the budget is exhausted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import InfluentialRecommender

__all__ = ["generate_influence_path", "mask_session_items"]


def mask_session_items(
    scores: np.ndarray,
    sequences: Sequence[Sequence[int]],
    objectives: Sequence[int],
) -> np.ndarray:
    """Mask already-seen session items out of batched next-item scores, in place.

    ``scores`` is ``(batch, vocab)``; row ``b`` gets ``-inf`` at every item of
    ``sequences[b]`` except ``objectives[b]`` (the objective may always be
    re-recommended, terminating the path).  This is the vectorised equivalent
    of the per-item Python loop in Algorithm 1's no-repeat rule: one fancy
    indexed assignment instead of ``O(batch * length)`` interpreter steps.
    """
    lengths = [len(sequence) for sequence in sequences]
    total = sum(lengths)
    batch = np.arange(scores.shape[0])
    objective_columns = np.asarray(list(objectives), dtype=np.int64)
    if total:
        row_index = np.repeat(batch, lengths)
        column_index = np.fromiter(
            (int(item) for sequence in sequences for item in sequence),
            dtype=np.int64,
            count=total,
        )
        objective_scores = scores[batch, objective_columns].copy()
        scores[row_index, column_index] = -np.inf
        scores[batch, objective_columns] = objective_scores
    return scores


def generate_influence_path(
    recommender: "InfluentialRecommender",
    history: Sequence[int],
    objective: int,
    user_index: int | None = None,
    max_length: int = 20,
) -> list[int]:
    """Generate an influence path with ``recommender`` (Algorithm 1).

    Parameters
    ----------
    recommender:
        Any fitted :class:`~repro.core.base.InfluentialRecommender`.
    history:
        The user's interaction history ``s_h`` (item indices).
    objective:
        The objective item ``i_t``.
    user_index:
        Optional user index for personalised recommenders (IRN, BPR, ...).
    max_length:
        The maximum path length ``M``.

    Returns
    -------
    list[int]
        The influence path ``s_p``.  If the objective was reached it is the
        final element; otherwise the path has exactly ``max_length`` items
        (or fewer if the recommender could not propose more items).
    """
    if max_length <= 0:
        raise ConfigurationError(f"max_length must be positive, got {max_length}")
    history = list(history)
    path: list[int] = []
    while len(path) < max_length:
        item = recommender.next_step(history, objective, path, user_index=user_index)
        if item is None:
            break
        path.append(int(item))
        if item == objective:
            break
    return path
