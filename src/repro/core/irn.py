"""Influential Recommender Network (IRN), §III-D of the paper.

IRN is a Transformer decoder over pre-padded item sequences whose final
position holds the objective item.  Its self-attention uses the Personalized
Impressionability Mask (PIM): every position attends causally to the history
*and*, with an additive weight ``w_t * r_u``, to the objective item, where
``r_u`` is a learned per-user impressionability factor (Eq. 5).

Training minimises the conditional perplexity of observed sequences given
their own final item as objective (Eq. 8-9), i.e. a shifted cross-entropy
where every position predicts the next item while "seeing" the objective
through the PIM.

At inference the current sequence (history ⊕ path so far) is concatenated
with the objective at the final position; the distribution at the last real
position proposes the next path item (Algorithm 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.pim import MaskType, causal_history_mask, objective_column_indicator
from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.data.padding import PAD_INDEX
from repro.data.splitting import DatasetSplit
from repro.models._sequence_utils import clip_history, shifted_inputs_and_targets
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Linear, Module
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import spawn_rng

__all__ = ["IRN"]


class _IRNModule(Module):
    """Embedding layer + PIM-masked decoder stack + tied output projection."""

    def __init__(
        self,
        vocab_size: int,
        num_users: int,
        max_length: int,
        embedding_dim: int,
        user_dim: int,
        num_heads: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 5)
        self.vocab_size = vocab_size
        self.max_length = max_length
        self.item_embedding = Embedding(vocab_size, embedding_dim, padding_idx=0, rng=rngs[0])
        self.position_embedding = Embedding(max_length, embedding_dim, rng=rngs[1])
        self.user_embedding = Embedding(num_users, user_dim, rng=rngs[2])
        # r_u = W_U e(u) + b, with b initialised to 1 so training starts from
        # the uniform Type-2 behaviour and learns per-user deviations.
        self.impressionability = Linear(user_dim, 1, rng=rngs[3])
        self.impressionability.bias.data[:] = 1.0
        self.decoder = TransformerEncoder(
            num_layers, embedding_dim, num_heads, dropout=dropout, rng=rngs[4]
        )
        self.dropout = Dropout(dropout, rng=rngs[4])

    # ------------------------------------------------------------------ #
    def impressionability_factor(self, users: np.ndarray) -> Tensor:
        """Return ``r_u`` for a batch of user indices, shape ``(batch, 1)``."""
        user_vectors = self.user_embedding(np.asarray(users, dtype=np.int64))
        return self.impressionability(user_vectors)

    def _pim(
        self,
        items: np.ndarray,
        users: np.ndarray,
        mask_type: MaskType,
        objective_weight: float,
        history_weight: float,
    ) -> "Tensor | np.ndarray":
        """Compose the PIM; differentiable w.r.t. ``r_u`` for Type 3."""
        base = causal_history_mask(items, history_weight=history_weight)
        length = items.shape[1]
        if mask_type == MaskType.CAUSAL or length < 2:
            return base
        revealed = base.copy()
        revealed[:, : length - 1, length - 1] = 0.0
        indicator = objective_column_indicator(length)
        if mask_type == MaskType.OBJECTIVE:
            return revealed + indicator[None, :, :] * float(objective_weight)
        # Personalized: w_t * r_u enters as a Tensor so gradients reach the
        # user embedding and the impressionability projection.
        r_u = self.impressionability_factor(users)  # (batch, 1)
        weight = r_u.reshape(-1, 1, 1) * float(objective_weight)
        return Tensor(revealed) + Tensor(indicator[None, :, :]) * weight

    def forward(
        self,
        items: np.ndarray,
        users: np.ndarray,
        mask_type: MaskType = MaskType.PERSONALIZED,
        objective_weight: float = 1.0,
        history_weight: float = 0.0,
    ) -> Tensor:
        """Return next-item logits of shape ``(batch, length, vocab_size)``."""
        items = np.asarray(items, dtype=np.int64)
        batch, length = items.shape
        positions = np.tile(np.arange(length) % self.max_length, (batch, 1))
        hidden = self.item_embedding(items) + self.position_embedding(positions)
        hidden = self.dropout(hidden)
        mask = self._pim(items, users, mask_type, objective_weight, history_weight)
        hidden = self.decoder(hidden, mask=mask)
        return hidden.matmul(self.item_embedding.weight.transpose())


@model_registry.register("irn")
@influential_registry.register("irn")
class IRN(NeuralSequentialRecommender, InfluentialRecommender):
    """The paper's Influential Recommender Network.

    IRN implements both package interfaces: as a
    :class:`~repro.models.base.SequentialRecommender` it scores the next item
    for a history (used for the Table IV next-item comparison), and as an
    :class:`~repro.core.base.InfluentialRecommender` it generates influence
    paths toward an objective item (Tables III/V, Figures 6-9).

    Parameters (defaults follow Table VI, scaled to the NumPy training budget)
    ----------------------------------------------------------------------
    embedding_dim:
        Item embedding size ``d``.
    user_dim:
        User embedding size ``d'``.
    num_layers / num_heads:
        Decoder depth ``L`` and attention heads ``h``.
    objective_weight:
        The objective mask weight ``w_t`` (aggressiveness degree) in ``[0, 1]``
        as in the paper.
    objective_logit_scale:
        Calibration constant mapping ``w_t`` to this implementation's
        attention-logit scale: the additive PIM weight is
        ``w_t * r_u * objective_logit_scale``.  The paper's Transformer uses
        larger embeddings and more layers, so a unit additive weight exerts a
        comparatively stronger pull there; the default of 4.5 reproduces the
        paper's qualitative behaviour at this repo's model size (see
        EXPERIMENTS.md for the calibration sweep — success keeps rising up to
        an effective additive weight of ~4.5 and falls off beyond it).
    history_weight:
        The history mask weight ``w_h`` (the paper uses 0 with ``w_t > w_h``).
    mask_type:
        The PIM variant (Table V ablation); Type 3 (personalized) by default.
    item2vec_init:
        Initialise item embeddings from item2vec vectors trained on the
        corpus (§III-D1).
    padding_scheme:
        ``"pre"`` (the paper's choice, §III-D5) keeps the objective item at
        the fixed final position of every training window; ``"post"`` exists
        only for the padding ablation and degrades the objective signal.
    """

    name = "IRN"

    def __init__(
        self,
        embedding_dim: int = 32,
        user_dim: int = 8,
        num_heads: int = 2,
        num_layers: int = 2,
        dropout: float = 0.1,
        objective_weight: float = 1.0,
        objective_logit_scale: float = 4.5,
        history_weight: float = 0.0,
        mask_type: MaskType = MaskType.PERSONALIZED,
        item2vec_init: bool = False,
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 3e-3,
        max_sequence_length: int = 50,
        padding_scheme: str = "pre",
        seed: int = 0,
    ) -> None:
        NeuralSequentialRecommender.__init__(
            self,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            padding_scheme=padding_scheme,
            seed=seed,
        )
        if objective_weight < 0:
            raise ConfigurationError("objective_weight (w_t) must be non-negative")
        if objective_logit_scale <= 0:
            raise ConfigurationError("objective_logit_scale must be positive")
        self.embedding_dim = embedding_dim
        self.user_dim = user_dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.dropout = dropout
        self.objective_weight = objective_weight
        self.objective_logit_scale = objective_logit_scale
        self.history_weight = history_weight
        self.mask_type = MaskType(mask_type)
        self.item2vec_init = item2vec_init

    # ------------------------------------------------------------------ #
    # Construction / training
    # ------------------------------------------------------------------ #
    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        module = _IRNModule(
            vocab_size=corpus.vocab.size,
            num_users=corpus.num_users,
            max_length=self.max_sequence_length + 1,
            embedding_dim=self.embedding_dim,
            user_dim=self.user_dim,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            dropout=self.dropout,
            rng=rng,
        )
        if self.item2vec_init:
            from repro.embeddings.item2vec import Item2Vec

            item2vec = Item2Vec(embedding_dim=self.embedding_dim, epochs=2, seed=self.seed)
            item2vec.fit(corpus)
            module.item_embedding.load_pretrained(item2vec.vectors)
        return module

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        # The training sub-sequences are pre-padded, so the objective item
        # (the last item of each sub-sequence) sits at the final column.
        logits = self.module(
            batch.items,
            batch.users,
            mask_type=self.mask_type,
            objective_weight=self.objective_weight * self.objective_logit_scale,
            history_weight=self.history_weight,
        )
        _, targets = shifted_inputs_and_targets(batch.items)
        prediction_logits = logits[:, :-1, :]
        return F.cross_entropy(prediction_logits, targets, ignore_index=PAD_INDEX)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _safe_user(self, user_index: int | None) -> int:
        corpus = self._require_fitted()
        if user_index is None or not 0 <= user_index < corpus.num_users:
            return 0
        return int(user_index)

    def score_with_objective(
        self,
        sequence: Sequence[int],
        objective: int,
        user_index: int | None = None,
    ) -> np.ndarray:
        """Next-item scores conditioned on the objective item through the PIM."""
        self._require_fitted()
        assert self.module is not None
        sequence = clip_history(sequence, self.max_sequence_length - 1)
        items = np.asarray([list(sequence) + [int(objective)]], dtype=np.int64)
        users = np.asarray([self._safe_user(user_index)], dtype=np.int64)
        with no_grad():
            logits = self.module(
                items,
                users,
                mask_type=self.mask_type,
                objective_weight=self.objective_weight * self.objective_logit_scale,
                history_weight=self.history_weight,
            )
        position = -2 if items.shape[1] >= 2 else -1
        scores = logits.data[0, position].copy()
        scores[PAD_INDEX] = -np.inf
        return scores

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        """Objective-free next-item scores (causal mask only; Table IV usage)."""
        self._require_fitted()
        assert self.module is not None
        history = clip_history(history, self.max_sequence_length)
        if not history:
            history = [PAD_INDEX]
        items = np.asarray([history], dtype=np.int64)
        users = np.asarray([self._safe_user(user_index)], dtype=np.int64)
        with no_grad():
            logits = self.module(items, users, mask_type=MaskType.CAUSAL)
        scores = logits.data[0, -1].copy()
        scores[PAD_INDEX] = -np.inf
        return scores

    # ------------------------------------------------------------------ #
    # Influential interface
    # ------------------------------------------------------------------ #
    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        sequence = list(history) + list(path_so_far)
        scores = self.score_with_objective(sequence, objective, user_index=user_index).copy()
        # Avoid degenerate repetition: never re-recommend something the user
        # already saw in this session, except the objective itself.
        for item in sequence:
            if item != objective:
                scores[item] = -np.inf
        best = int(np.argmax(scores))
        if not np.isfinite(scores[best]):
            return None
        return best

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def impressionability_factors(self) -> np.ndarray:
        """The learned ``r_u`` of every user (Figure 8)."""
        corpus = self._require_fitted()
        assert self.module is not None
        users = np.arange(corpus.num_users, dtype=np.int64)
        with no_grad():
            factors = self.module.impressionability_factor(users)
        return factors.data.reshape(-1).copy()
