"""Influential Recommender Network (IRN), §III-D of the paper.

IRN is a Transformer decoder over pre-padded item sequences whose final
position holds the objective item.  Its self-attention uses the Personalized
Impressionability Mask (PIM): every position attends causally to the history
*and*, with an additive weight ``w_t * r_u``, to the objective item, where
``r_u`` is a learned per-user impressionability factor (Eq. 5).

Training minimises the conditional perplexity of observed sequences given
their own final item as objective (Eq. 8-9), i.e. a shifted cross-entropy
where every position predicts the next item while "seeing" the objective
through the PIM.

At inference the current sequence (history ⊕ path so far) is concatenated
with the objective at the final position; the distribution at the last real
position proposes the next path item (Algorithm 1).

Batched inference contract
--------------------------
``score_with_objective_batch`` / ``score_next_batch`` fuse many variable-
length sequences into ONE module forward.  Rows are right-aligned into a
``(batch, max_len)`` window — padding on the left — so every row's objective
occupies the shared final column and the PIM's objective-column reveal
applies to all rows at once.  Position indices are computed *per row*
(``0 .. len-1`` over the real tokens, position 0 for the left padding), so
each row sees exactly the position embeddings the unbatched scorer would
use.  Padding keys are masked with ``NEG_INF`` and padded query positions
are never gathered, which makes the batched scores equal to the scalar ones
up to BLAS summation-order noise (documented tolerance ``~1e-8``; the
scalar methods are thin ``batch=1`` wrappers and remain bit-identical to
the pre-batching implementation).

Incremental decoding contract
-----------------------------
:meth:`IRN.begin_decoding_session` / :meth:`IRN.advance_decoding_session`
are the cached variants of the batched scorers: the session encodes the
initial windows once, caches per-layer prefix keys/values
(:mod:`repro.cache.kv`), and every later depth embeds only the newly
appended token (plus the re-projected objective, whose position embedding
moves with the sequence length) while attending over the cached prefix.

Prefix K/V reuse is exact only while prefix hidden states cannot change as
the sequence grows.  Under the PIM every prefix position attends to the
objective item, and the objective's position embedding advances at every
step — so for objective-revealing masks (Types 2/3) with ``num_layers >= 2``
the layer-2+ prefix states *do* change each step and the session
transparently falls back to full re-encoding (tracked separately in
``decode_stats``).  Incremental mode is used exactly when it is exact:
causal masks at any depth, or single-layer stacks under any mask.  Cached
and uncached scoring agree to the same ``~1e-8`` tolerance as the batching
contract, and produce identical plans.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cache.kv import DecodingState
from repro.cache.session import DecodingSession
from repro.cache.stats import DecodeStats
from repro.core.base import InfluentialRecommender, influential_registry
from repro.nn.attention import NEG_INF
from repro.core.influence_path import mask_session_items
from repro.core.pim import MaskType, causal_history_mask, objective_column_indicator
from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.data.padding import PAD_INDEX
from repro.data.splitting import DatasetSplit
from repro.models._sequence_utils import clip_history, shifted_inputs_and_targets
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.utils.batch import broadcast_user_indices, check_batch_lengths
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Linear, Module
from repro.nn.tensor import Tensor, inference_dtype_scope, no_grad, resolve_inference_dtype
from repro.nn.transformer import TransformerEncoder
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import spawn_rng

__all__ = ["IRN"]


class _IRNModule(Module):
    """Embedding layer + PIM-masked decoder stack + tied output projection."""

    def __init__(
        self,
        vocab_size: int,
        num_users: int,
        max_length: int,
        embedding_dim: int,
        user_dim: int,
        num_heads: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 5)
        self.vocab_size = vocab_size
        self.max_length = max_length
        self.item_embedding = Embedding(vocab_size, embedding_dim, padding_idx=0, rng=rngs[0])
        self.position_embedding = Embedding(max_length, embedding_dim, rng=rngs[1])
        self.user_embedding = Embedding(num_users, user_dim, rng=rngs[2])
        # r_u = W_U e(u) + b, with b initialised to 1 so training starts from
        # the uniform Type-2 behaviour and learns per-user deviations.
        self.impressionability = Linear(user_dim, 1, rng=rngs[3])
        self.impressionability.bias.data[:] = 1.0
        self.decoder = TransformerEncoder(
            num_layers, embedding_dim, num_heads, dropout=dropout, rng=rngs[4]
        )
        self.dropout = Dropout(dropout, rng=rngs[4])

    # ------------------------------------------------------------------ #
    def impressionability_factor(self, users: np.ndarray) -> Tensor:
        """Return ``r_u`` for a batch of user indices, shape ``(batch, 1)``."""
        user_vectors = self.user_embedding(np.asarray(users, dtype=np.int64))
        return self.impressionability(user_vectors)

    def _pim(
        self,
        items: np.ndarray,
        users: np.ndarray,
        mask_type: MaskType,
        objective_weight: float,
        history_weight: float,
    ) -> "Tensor | np.ndarray":
        """Compose the PIM; differentiable w.r.t. ``r_u`` for Type 3."""
        base = causal_history_mask(items, history_weight=history_weight)
        length = items.shape[1]
        if mask_type == MaskType.CAUSAL or length < 2:
            return base
        revealed = base.copy()
        revealed[:, : length - 1, length - 1] = 0.0
        indicator = objective_column_indicator(length)
        if mask_type == MaskType.OBJECTIVE:
            return revealed + indicator[None, :, :] * float(objective_weight)
        # Personalized: w_t * r_u enters as a Tensor so gradients reach the
        # user embedding and the impressionability projection.
        r_u = self.impressionability_factor(users)  # (batch, 1)
        weight = r_u.reshape(-1, 1, 1) * float(objective_weight)
        return Tensor(revealed) + Tensor(indicator[None, :, :]) * weight

    def forward(
        self,
        items: np.ndarray,
        users: np.ndarray,
        mask_type: MaskType = MaskType.PERSONALIZED,
        objective_weight: float = 1.0,
        history_weight: float = 0.0,
        positions: np.ndarray | None = None,
        state: "DecodingState | None" = None,
        persist: int | None = None,
        output_items: np.ndarray | None = None,
    ) -> Tensor:
        """Return next-item logits of shape ``(batch, length, vocab_size)``.

        ``positions`` optionally overrides the default ``arange(length)``
        position indices with a per-row ``(batch, length)`` array; the
        batched inference path uses it so right-aligned (left-padded) rows
        keep the positions ``0 .. len-1`` of their real tokens.

        With ``state`` the decoder additionally populates per-layer K/V
        caches for the first ``persist`` columns (the growing prefix of an
        incremental decoding session); the returned logits are unchanged.

        ``output_items`` restricts the tied output projection to the given
        item indices: the returned logits are ``(batch, length,
        len(output_items))``, computed by gathering just those rows of the
        item-embedding weight instead of projecting onto the full
        vocabulary — the two-stage-retrieval hook that makes the dominant
        ``O(B·L·d·V)`` cost proportional to the candidate-set size.  The
        gathered projection is inference-only (it bypasses the autograd
        graph) and refuses to run under grad.
        """
        items = np.asarray(items, dtype=np.int64)
        batch, length = items.shape
        if positions is None:
            positions = np.tile(np.arange(length) % self.max_length, (batch, 1))
        else:
            positions = np.asarray(positions, dtype=np.int64)
        hidden = self.item_embedding(items) + self.position_embedding(positions)
        hidden = self.dropout(hidden)
        mask = self._pim(items, users, mask_type, objective_weight, history_weight)
        hidden = self.decoder(hidden, mask=mask, state=state, persist=persist)
        if output_items is not None:
            from repro.nn.tensor import is_grad_enabled

            if is_grad_enabled():
                raise ConfigurationError(
                    "candidate-restricted projection (output_items) is "
                    "inference-only; run it under no_grad"
                )
            gathered = self.item_embedding.weight.data[output_items]
            return hidden.matmul(Tensor(gathered.T))
        return hidden.matmul(self.item_embedding.weight.transpose())

    def decode_step(
        self,
        items: np.ndarray,
        positions: np.ndarray,
        mask: np.ndarray,
        state: "DecodingState",
        persist: int,
    ) -> Tensor:
        """Encode only newly appended tokens against cached prefix K/V.

        ``items``/``positions`` are ``(batch, new)`` arrays of the appended
        token(s); ``mask`` is the additive ``(batch, new, total_keys)`` mask
        over cached-prefix + new key columns.  Returns the decoder hidden
        states of the new positions (``(batch, new, d)``); the caller
        projects only the row(s) it needs onto the vocabulary.
        """
        items = np.asarray(items, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        hidden = self.item_embedding(items) + self.position_embedding(positions)
        hidden = self.dropout(hidden)
        return self.decoder(hidden, mask=mask, state=state, persist=persist)


@model_registry.register("irn")
@influential_registry.register("irn")
class IRN(NeuralSequentialRecommender, InfluentialRecommender):
    """The paper's Influential Recommender Network.

    IRN implements both package interfaces: as a
    :class:`~repro.models.base.SequentialRecommender` it scores the next item
    for a history (used for the Table IV next-item comparison), and as an
    :class:`~repro.core.base.InfluentialRecommender` it generates influence
    paths toward an objective item (Tables III/V, Figures 6-9).

    Parameters (defaults follow Table VI, scaled to the NumPy training budget)
    ----------------------------------------------------------------------
    embedding_dim:
        Item embedding size ``d``.
    user_dim:
        User embedding size ``d'``.
    num_layers / num_heads:
        Decoder depth ``L`` and attention heads ``h``.
    objective_weight:
        The objective mask weight ``w_t`` (aggressiveness degree) in ``[0, 1]``
        as in the paper.
    objective_logit_scale:
        Calibration constant mapping ``w_t`` to this implementation's
        attention-logit scale: the additive PIM weight is
        ``w_t * r_u * objective_logit_scale``.  The paper's Transformer uses
        larger embeddings and more layers, so a unit additive weight exerts a
        comparatively stronger pull there; the default of 4.5 reproduces the
        paper's qualitative behaviour at this repo's model size (see
        EXPERIMENTS.md for the calibration sweep — success keeps rising up to
        an effective additive weight of ~4.5 and falls off beyond it).
    history_weight:
        The history mask weight ``w_h`` (the paper uses 0 with ``w_t > w_h``).
    mask_type:
        The PIM variant (Table V ablation); Type 3 (personalized) by default.
    item2vec_init:
        Initialise item embeddings from item2vec vectors trained on the
        corpus (§III-D1).
    padding_scheme:
        ``"pre"`` (the paper's choice, §III-D5) keeps the objective item at
        the fixed final position of every training window; ``"post"`` exists
        only for the padding ablation and degrades the objective signal.
    inference_dtype:
        Compute/storage precision of the inference fast path (fused attention
        and K/V arenas).  ``None`` resolves ``$REPRO_INFERENCE_DTYPE`` at
        construction, defaulting to ``float64`` (bit-compatible with the
        graph path).  ``"float32"`` is opt-in and approximate — see
        :func:`repro.nn.tensor.resolve_inference_dtype` for the documented
        tolerance.  Training always runs in float64.
    """

    name = "IRN"
    #: the batched objective scorer accepts ``candidate_items`` (the
    #: two-stage-retrieval gather path); planners feature-test this flag.
    supports_candidate_scoring = True

    def __init__(
        self,
        embedding_dim: int = 32,
        user_dim: int = 8,
        num_heads: int = 2,
        num_layers: int = 2,
        dropout: float = 0.1,
        objective_weight: float = 1.0,
        objective_logit_scale: float = 4.5,
        history_weight: float = 0.0,
        mask_type: MaskType = MaskType.PERSONALIZED,
        item2vec_init: bool = False,
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 3e-3,
        max_sequence_length: int = 50,
        padding_scheme: str = "pre",
        seed: int = 0,
        inference_dtype: "np.dtype | str | None" = None,
    ) -> None:
        NeuralSequentialRecommender.__init__(
            self,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            padding_scheme=padding_scheme,
            seed=seed,
        )
        if objective_weight < 0:
            raise ConfigurationError("objective_weight (w_t) must be non-negative")
        if objective_logit_scale <= 0:
            raise ConfigurationError("objective_logit_scale must be positive")
        self.embedding_dim = embedding_dim
        self.user_dim = user_dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.dropout = dropout
        self.objective_weight = objective_weight
        self.objective_logit_scale = objective_logit_scale
        self.history_weight = history_weight
        self.mask_type = MaskType(mask_type)
        self.item2vec_init = item2vec_init
        self.inference_dtype = resolve_inference_dtype(inference_dtype)
        #: token-work counters for the perf harness (reset by :meth:`fit`)
        self.decode_stats = DecodeStats()

    # ------------------------------------------------------------------ #
    # Construction / training
    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "IRN":
        NeuralSequentialRecommender.fit(self, split)
        # Retraining invalidates any outstanding decoding session or plan
        # cache: fit_generation (bumped by the base class) signals consumers,
        # and the token-work counters restart for the new model.
        self.decode_stats.reset()
        return self

    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        module = _IRNModule(
            vocab_size=corpus.vocab.size,
            num_users=corpus.num_users,
            max_length=self.max_sequence_length + 1,
            embedding_dim=self.embedding_dim,
            user_dim=self.user_dim,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            dropout=self.dropout,
            rng=rng,
        )
        if self.item2vec_init:
            from repro.embeddings.item2vec import Item2Vec

            item2vec = Item2Vec(embedding_dim=self.embedding_dim, epochs=2, seed=self.seed)
            item2vec.fit(corpus)
            module.item_embedding.load_pretrained(item2vec.vectors)
        return module

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        # The training sub-sequences are pre-padded, so the objective item
        # (the last item of each sub-sequence) sits at the final column.
        logits = self.module(
            batch.items,
            batch.users,
            mask_type=self.mask_type,
            objective_weight=self.objective_weight * self.objective_logit_scale,
            history_weight=self.history_weight,
        )
        _, targets = shifted_inputs_and_targets(batch.items)
        prediction_logits = logits[:, :-1, :]
        return F.cross_entropy(prediction_logits, targets, ignore_index=PAD_INDEX)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _safe_user(self, user_index: int | None) -> int:
        corpus = self._require_fitted()
        if user_index is None or not 0 <= user_index < corpus.num_users:
            return 0
        return int(user_index)

    def _right_align(
        self, rows: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pack ragged rows into right-aligned ``(items, positions, lengths)``.

        Rows are left-padded with :data:`PAD_INDEX` so their last tokens share
        the final column; ``positions[b]`` counts ``0 .. len_b - 1`` over the
        real tokens (padding gets position 0, which is never attended to).
        """
        assert self.module is not None
        lengths = np.asarray([len(row) for row in rows], dtype=np.int64)
        width = int(lengths.max())
        items = np.full((len(rows), width), PAD_INDEX, dtype=np.int64)
        for b, row in enumerate(rows):
            if row:
                items[b, width - len(row) :] = row
        columns = np.arange(width, dtype=np.int64)[None, :]
        offsets = (width - lengths)[:, None]
        positions = np.maximum(columns - offsets, 0) % self.module.max_length
        return items, positions, lengths

    def _batch_users(self, user_indices, batch: int) -> np.ndarray:
        users = broadcast_user_indices(batch, user_indices)
        return np.asarray([self._safe_user(u) for u in users], dtype=np.int64)

    def score_with_objective_batch(
        self,
        sequences: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        candidate_items: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Objective-conditioned next-item scores for many sequences at once.

        Fuses all rows into a single ``no_grad`` module forward: sequences are
        right-aligned (left-padded) so every objective sits in the shared
        final column, per-row position indices preserve the scalar scorer's
        ``0 .. len-1`` numbering, and each row's scores are gathered from its
        last real non-objective position.  Returns a ``(batch, vocab)`` array;
        row ``b`` equals ``score_with_objective(sequences[b], objectives[b])``
        up to floating-point summation-order tolerance (~1e-8).

        ``candidate_items`` (the two-stage-retrieval path) restricts the
        output projection to the given item indices: returned rows are
        ``-inf`` everywhere except those columns, whose logits are exact —
        identical to slicing the full-vocabulary scores at the candidates.
        A candidate set covering every real item short-circuits to the full
        projection, so full-vocabulary candidate sets are *structurally*
        bit-identical to unrestricted scoring.
        """
        return self._score_objective_batch(
            sequences, objectives, user_indices, candidate_items=candidate_items
        )

    def _normalize_candidates(
        self, candidate_items: "np.ndarray | None"
    ) -> "np.ndarray | None":
        """Validate + dedupe a candidate set; ``None`` means full vocabulary."""
        if candidate_items is None:
            return None
        cands = np.unique(np.asarray(candidate_items, dtype=np.int64).ravel())
        if cands.size == 0:
            raise ConfigurationError("candidate_items must name at least one item")
        if cands[0] < 1 or cands[-1] >= self.vocab_size:
            raise ConfigurationError(
                f"candidate_items must lie in [1, {self.vocab_size}); got range "
                f"[{cands[0]}, {cands[-1]}]"
            )
        if cands.size >= self.vocab_size - 1:
            return None  # full coverage: take the exact full-projection path
        return cands

    def _score_objective_batch(
        self,
        sequences: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        record: str = "full",
        state: "DecodingState | None" = None,
        persist: int | None = None,
        candidate_items: "np.ndarray | None" = None,
    ) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        candidate_items = self._normalize_candidates(candidate_items)
        batch = len(sequences)
        objectives = list(objectives)
        check_batch_lengths(batch, objectives=objectives)
        if batch == 0:
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        rows = [
            [int(item) for item in clip_history(seq, self.max_sequence_length - 1)]
            + [int(objective)]
            for seq, objective in zip(sequences, objectives)
        ]
        items, positions, lengths = self._right_align(rows)
        users = self._batch_users(user_indices, batch)
        with no_grad(), inference_dtype_scope(self.inference_dtype):
            logits = self.module(
                items,
                users,
                mask_type=self.mask_type,
                objective_weight=self.objective_weight * self.objective_logit_scale,
                history_weight=self.history_weight,
                positions=positions,
                state=state,
                persist=persist,
                output_items=candidate_items,
            )
        self._record_tokens(record, items.size)
        width = items.shape[1]
        gather = np.where(lengths >= 2, width - 2, width - 1)
        if candidate_items is not None:
            gathered = logits.data[np.arange(batch), gather, :].astype(
                np.float64, copy=False
            )
            scores = np.full((batch, self.vocab_size), -np.inf, dtype=np.float64)
            scores[:, candidate_items] = gathered
            return scores
        scores = logits.data[np.arange(batch), gather, :].astype(np.float64, copy=True)
        scores[:, PAD_INDEX] = -np.inf
        return scores

    def _record_tokens(self, record: str, tokens: int) -> None:
        if record == "full":
            self.decode_stats.record_full(tokens)
        elif record == "fallback":
            self.decode_stats.record_fallback(tokens)
        else:  # pragma: no cover - internal misuse
            raise ConfigurationError(f"unknown decode record kind '{record}'")

    def score_with_objective(
        self,
        sequence: Sequence[int],
        objective: int,
        user_index: int | None = None,
    ) -> np.ndarray:
        """Next-item scores conditioned on the objective item through the PIM.

        Thin ``batch=1`` wrapper around :meth:`score_with_objective_batch`
        (a single row needs no padding, so this is bit-identical to the
        pre-batching scalar implementation).
        """
        return self.score_with_objective_batch([sequence], [objective], [user_index])[0]

    def score_next_batch(
        self,
        histories: Sequence[Sequence[int]],
        user_indices: "Sequence[int | None] | None" = None,
    ) -> np.ndarray:
        """Objective-free next-item scores for many histories in one forward.

        Same right-alignment contract as :meth:`score_with_objective_batch`,
        with a causal-only mask; scores are gathered at the shared final
        column (each row's most recent real item).
        """
        return self._score_next_batch(histories, user_indices)

    def _score_next_batch(
        self,
        histories: Sequence[Sequence[int]],
        user_indices: "Sequence[int | None] | None" = None,
        record: str = "full",
        state: "DecodingState | None" = None,
        persist: int | None = None,
    ) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        batch = len(histories)
        if batch == 0:
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        rows = []
        for history in histories:
            clipped = [int(item) for item in clip_history(history, self.max_sequence_length)]
            rows.append(clipped if clipped else [PAD_INDEX])
        items, positions, _ = self._right_align(rows)
        users = self._batch_users(user_indices, batch)
        with no_grad(), inference_dtype_scope(self.inference_dtype):
            logits = self.module(
                items,
                users,
                mask_type=MaskType.CAUSAL,
                positions=positions,
                state=state,
                persist=persist,
            )
        self._record_tokens(record, items.size)
        scores = logits.data[:, -1, :].astype(np.float64, copy=True)
        scores[:, PAD_INDEX] = -np.inf
        return scores

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        """Objective-free next-item scores (causal mask only; Table IV usage)."""
        return self.score_next_batch([history], [user_index])[0]

    # ------------------------------------------------------------------ #
    # Incremental decoding sessions (cached scorer variants)
    # ------------------------------------------------------------------ #
    def _incremental_exact(self, objectives: "Sequence[int] | None") -> bool:
        """Whether prefix K/V reuse is exact for this model configuration.

        Causal attention never lets a prefix position see appended tokens, so
        caching is exact at any depth both for objective-free scoring and for
        ``MaskType.CAUSAL``.  Objective-revealing masks (Types 2/3) make every
        prefix position attend to the objective, whose position embedding
        moves each step — exact only when there is a single layer, whose K/V
        are projections of the fixed input embeddings.
        """
        if objectives is None or self.mask_type == MaskType.CAUSAL:
            return True
        return self.num_layers == 1

    def begin_decoding_session(
        self,
        sequences: Sequence[Sequence[int]],
        objectives: "Sequence[int] | None" = None,
        user_indices: "Sequence[int | None] | None" = None,
    ) -> tuple[np.ndarray, DecodingSession]:
        """Cached variant of the batched scorers: encode contexts once.

        Returns ``(scores, session)`` where ``scores`` equals
        :meth:`score_with_objective_batch` (or :meth:`score_next_batch` when
        ``objectives`` is ``None``) on the same inputs, and ``session`` holds
        the per-layer prefix K/V so subsequent
        :meth:`advance_decoding_session` calls encode only the newly appended
        token per row.  When the exactness contract does not hold (see
        :meth:`_incremental_exact`) the session is created in fallback mode
        and later advances re-encode fully — scores stay exact either way.
        """
        self._require_fitted()
        assert self.module is not None
        batch = len(sequences)
        if batch == 0:
            raise ConfigurationError("cannot begin a decoding session on an empty batch")
        users = self._batch_users(user_indices, batch)
        incremental = self._incremental_exact(objectives)
        state = self.module.decoder.init_state(dtype=self.inference_dtype) if incremental else None
        if objectives is not None:
            objectives = [int(objective) for objective in objectives]
            check_batch_lengths(batch, objectives=objectives)
            rows = [
                [int(item) for item in clip_history(seq, self.max_sequence_length - 1)]
                for seq in sequences
            ]
            width = max(len(row) for row in rows) + 1  # matches _right_align + objective
            scores = self._score_objective_batch(
                sequences, objectives, list(users), state=state, persist=width - 1
            )
            session_width = width - 1
        else:
            rows = [
                [int(item) for item in clip_history(seq, self.max_sequence_length)]
                for seq in sequences
            ]
            # score_next_batch substitutes a PAD placeholder for empty rows;
            # its column is permanently masked, so the session keeps the true
            # (possibly empty) token lists and only the width accounts for it.
            width = max(max(len(row) for row in rows), 1)
            scores = self._score_next_batch(sequences, list(users), state=state, persist=None)
            session_width = width
        impressionability = None
        if incremental and objectives is not None and self.mask_type == MaskType.PERSONALIZED:
            with no_grad():
                impressionability = (
                    self.module.impressionability_factor(users).data.reshape(-1).copy()
                )
        session = DecodingSession(
            rows=rows,
            users=users,
            objectives=objectives,
            state=state,
            incremental=incremental,
            width=session_width,
            impressionability=impressionability,
        )
        return scores, session

    def advance_decoding_session(
        self,
        session: DecodingSession,
        new_items: Sequence[int],
        parent_rows: "Sequence[int] | None" = None,
    ) -> np.ndarray:
        """Append one token per surviving row and score the grown contexts.

        ``parent_rows`` gathers the session down to the rows the new tokens
        extend (beam pruning/re-ranking/duplication); ``new_items[b]`` is then
        appended to gathered row ``b``.  Returns the same ``(batch, vocab)``
        scores the uncached batched scorer would produce for the grown
        sequences, encoding only the new token (plus the re-projected
        objective) per row in incremental mode.
        """
        self._require_fitted()
        assert self.module is not None
        if parent_rows is not None:
            session.select(parent_rows)
        new_items = [int(item) for item in new_items]
        check_batch_lengths(session.batch_size, new_items=new_items)
        session.append(new_items)
        if session.batch_size == 0:
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        if session.incremental:
            # Once any row outgrows the model's window the right-aligned
            # batch starts *sliding* (oldest tokens drop off), which shifts
            # every position embedding — cached K/V become stale, so the
            # session degrades to exact full re-encoding for good.
            limit = self.max_sequence_length - (1 if session.objectives is not None else 0)
            if int(session.lengths.max()) > limit:
                session.degrade()
        if not session.incremental:
            users = list(session.users)
            if session.objectives is not None:
                return self._score_objective_batch(
                    session.rows, session.objectives, users, record="fallback"
                )
            return self._score_next_batch(session.rows, users, record="fallback")
        return self._advance_incremental(session, np.asarray(new_items, dtype=np.int64))

    def _advance_incremental(
        self, session: DecodingSession, new_items: np.ndarray
    ) -> np.ndarray:
        assert self.module is not None
        module = self.module
        lengths = session.lengths  # post-append; the new token sits at position len-1
        objective_mode = session.objectives is not None
        if objective_mode:
            items = np.stack(
                [new_items, np.asarray(session.objectives, dtype=np.int64)], axis=1
            )
            positions = np.stack([lengths - 1, lengths], axis=1)
        else:
            items = new_items[:, None]
            positions = (lengths - 1)[:, None]
        positions = positions % module.max_length  # no-op (guarded), mirrors _right_align
        total_keys = session.width + (1 if objective_mode else 0)
        mask = self._incremental_mask(session, total_keys)
        with no_grad(), inference_dtype_scope(self.inference_dtype):
            hidden = module.decode_step(items, positions, mask, session.state, persist=1)
            logits = hidden[:, 0, :].matmul(module.item_embedding.weight.transpose())
        self.decode_stats.record_incremental(items.size)
        scores = logits.data.astype(np.float64, copy=True)
        scores[:, PAD_INDEX] = -np.inf
        return scores

    def _incremental_mask(self, session: DecodingSession, total_keys: int) -> np.ndarray:
        """Additive mask rows for the new token (+ objective) queries.

        Reproduces exactly the rows the full PIM/causal mask would assign to
        the last position(s) of the equivalent right-aligned window: visible
        real keys get ``w_h`` (0 for causal scoring), left-padding keys get
        ``NEG_INF``, and the objective column gets the (personalized)
        objective weight for the new-token query and ``w_h`` for its own.
        """
        lengths = session.lengths
        batch = session.batch_size
        objective_mode = session.objectives is not None
        history_weight = float(self.history_weight) if objective_mode else 0.0
        rows = 2 if objective_mode else 1
        mask = np.full((batch, rows, total_keys), history_weight, dtype=np.float64)
        columns = np.arange(total_keys, dtype=np.int64)[None, :]
        padding = columns < (session.width - lengths)[:, None]
        mask = np.where(padding[:, None, :], NEG_INF, mask)
        if objective_mode:
            if self.mask_type == MaskType.CAUSAL:
                mask[:, 0, -1] = NEG_INF
            else:
                weight = float(self.objective_weight * self.objective_logit_scale)
                if self.mask_type == MaskType.PERSONALIZED:
                    mask[:, 0, -1] = session.impressionability * weight
                else:
                    mask[:, 0, -1] = weight
        return mask

    # ------------------------------------------------------------------ #
    # Influential interface
    # ------------------------------------------------------------------ #
    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        sequence = list(history) + list(path_so_far)
        scores = self.score_with_objective_batch([sequence], [objective], [user_index])
        # Avoid degenerate repetition: never re-recommend something the user
        # already saw in this session, except the objective itself.
        scores = mask_session_items(scores, [sequence], [objective])[0]
        best = int(np.argmax(scores))
        if not np.isfinite(scores[best]):
            return None
        return best

    def generate_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int = 20,
    ) -> list[list[int]]:
        """Run Algorithm 1 for many ``(history, objective)`` instances in lockstep.

        All instances that are still alive at step ``k`` share one batched
        module forward (via :meth:`score_with_objective_batch`), instead of
        the per-instance, per-step forwards of the scalar loop.  Produces the
        same paths as looping :meth:`generate_path` (same greedy argmax and
        seen-item masking), up to the batched scorer's documented tolerance.
        """
        if max_length <= 0:
            raise ConfigurationError(f"max_length must be positive, got {max_length}")
        self._require_fitted()
        count = len(histories)
        histories = [list(history) for history in histories]
        objectives = [int(objective) for objective in objectives]
        check_batch_lengths(count, objectives=objectives)
        users = broadcast_user_indices(count, user_indices)
        paths: list[list[int]] = [[] for _ in range(count)]
        active = list(range(count))
        for _ in range(max_length):
            if not active:
                break
            sequences = [histories[i] + paths[i] for i in active]
            scores = self.score_with_objective_batch(
                sequences,
                [objectives[i] for i in active],
                [users[i] for i in active],
            )
            mask_session_items(scores, sequences, [objectives[i] for i in active])
            best = np.argmax(scores, axis=1)
            finite = np.isfinite(scores[np.arange(len(active)), best])
            still_active: list[int] = []
            for slot, i in enumerate(active):
                if not finite[slot]:
                    continue
                item = int(best[slot])
                paths[i].append(item)
                if item != objectives[i]:
                    still_active.append(i)
            active = still_active
        return paths

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def impressionability_factors(self) -> np.ndarray:
        """The learned ``r_u`` of every user (Figure 8)."""
        corpus = self._require_fitted()
        assert self.module is not None
        users = np.arange(corpus.num_users, dtype=np.int64)
        with no_grad():
            factors = self.module.impressionability_factor(users)
        return factors.data.reshape(-1).copy()
