"""Sharded execution subsystem: worker-partitioned planning and evaluation.

The third rung of the performance ladder (batching → caching → sharding).
Evaluation instances and planning requests partition across workers by a
deterministic hash of their ``(history, objective, user)`` context; each
worker owns an independent plan-cache shard and its own decoding sessions,
so there is no cross-worker invalidation traffic (a retrain bumps
``fit_generation``, which every shard checks locally).  The item vocabulary
can additionally be column-sharded for top-k selection, so corpora can grow
past what a single fused logits sort would allow.

Layout
------
:mod:`~repro.shard.config`
    The ``num_workers`` / ``shard_backend`` / ``vocab_shards`` knobs and
    their ``REPRO_*`` environment overrides (how CI forces the parallel
    path across the whole test suite).
:mod:`~repro.shard.partition`
    Deterministic context hashing and index partitioning.
:mod:`~repro.shard.executor`
    :class:`ShardedExecutor` — serial / thread-pool / fork-process backends
    behind one partition-run-scatter API.
:mod:`~repro.shard.plancache`
    :class:`ShardedPlanCache` — hash-routed per-worker LRU shards with
    merged counters.
:mod:`~repro.shard.topk`
    Exact vocabulary-sharded top-k (:func:`sharded_topk`).
"""

from repro.shard.config import (
    VALID_BACKENDS,
    fork_available,
    resolve_num_workers,
    resolve_shard_backend,
    resolve_vocab_shards,
)
from repro.shard.executor import ShardedExecutor
from repro.shard.partition import context_key, partition_indices, shard_index, stable_hash
from repro.shard.plancache import ShardedPlanCache, make_plan_cache
from repro.shard.topk import sharded_topk, stable_topk

__all__ = [
    "VALID_BACKENDS",
    "ShardedExecutor",
    "ShardedPlanCache",
    "context_key",
    "fork_available",
    "make_plan_cache",
    "partition_indices",
    "resolve_num_workers",
    "resolve_shard_backend",
    "resolve_vocab_shards",
    "shard_index",
    "sharded_topk",
    "stable_hash",
    "stable_topk",
]
