"""Deterministic hash partitioning of planning/evaluation contexts.

Workers own disjoint shards of the request space, so the shard of a context
must be a pure function of the context itself — stable across interpreter
runs (``PYTHONHASHSEED`` randomises the builtin ``hash``) and across the
parent/child boundary of the process backend.  :func:`stable_hash` feeds a
canonical byte encoding of the key through ``blake2b`` instead.

The canonical planning key is ``(history, objective, user)`` — exactly the
:class:`~repro.cache.memo.PlanCache` context tuple minus the horizon, so a
context's plan-cache shard and the worker that plans it always coincide and
no cross-worker invalidation traffic can exist (a retrain bumps
``fit_generation``, which every shard checks locally).
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Sequence

from repro.utils.exceptions import ConfigurationError

__all__ = ["stable_hash", "shard_index", "context_key", "partition_indices"]


def stable_hash(key: Hashable) -> int:
    """A 64-bit hash of ``key`` that is identical in every interpreter.

    The key is encoded through ``repr`` — deterministic for the nested
    tuples of ints / strings / ``None`` used as planning context keys —
    and digested with ``blake2b``.  Unlike the builtin ``hash``, the result
    does not depend on ``PYTHONHASHSEED``, so serial, thread-pool and
    process-pool executions all route a context to the same shard.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_index(key: Hashable, num_shards: int) -> int:
    """The shard owning ``key`` among ``num_shards`` hash partitions."""
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be at least 1, got {num_shards}")
    if num_shards == 1:
        return 0
    return stable_hash(key) % num_shards


def context_key(
    history: Sequence[int], objective: "int | None", user_index: "int | None"
) -> tuple:
    """The canonical ``(history, objective, user)`` partitioning key."""
    return (
        tuple(int(item) for item in history),
        None if objective is None else int(objective),
        None if user_index is None else int(user_index),
    )


def partition_indices(
    keys: Sequence[Hashable], num_shards: int
) -> "list[list[int]]":
    """Partition positions ``0..len(keys)-1`` into ``num_shards`` index lists.

    Position ``i`` lands in shard ``shard_index(keys[i], num_shards)``;
    within a shard, positions keep their original relative order, so a
    shard's results can be scattered back deterministically.
    """
    shards: "list[list[int]]" = [[] for _ in range(num_shards)]
    for position, key in enumerate(keys):
        shards[shard_index(key, num_shards)].append(position)
    return shards
