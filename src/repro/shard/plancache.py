"""Hash-partitioned plan caches: one independent LRU shard per worker.

:class:`ShardedPlanCache` presents the :class:`~repro.cache.memo.PlanCache`
interface (``get`` / ``put`` / ``clear`` / ``cache_info`` / ``len`` /
``in`` / counter attributes) over ``num_shards`` independent LRU shards.
Keys route to shards by :func:`~repro.shard.partition.stable_hash`, the
same deterministic hash the executor partitions work with, so the worker
that plans a context and the shard that memoises it always coincide and no
entry is ever contended by two workers in the steady state (each shard is
still individually lock-guarded, so cross-shard access — e.g. an outer
evaluation layer partitioned with a different worker count — stays safe).

The configured ``maxsize`` is the TOTAL capacity, distributed across the
shards (remainder to the first shards), so sharding never changes the
memory bound or the global eviction guarantees: ``len(cache) <= maxsize``
holds exactly as for the unsharded cache.
"""

from __future__ import annotations

from typing import Hashable

from repro.cache.memo import PlanCache, merge_cache_infos
from repro.shard.partition import shard_index
from repro.utils.exceptions import ConfigurationError

__all__ = ["ShardedPlanCache", "make_plan_cache"]


def make_plan_cache(
    maxsize: int, num_shards: int, min_shard_capacity: int = 0
) -> "PlanCache | ShardedPlanCache":
    """A plain :class:`PlanCache` for one shard, a sharded one otherwise."""
    if num_shards <= 1:
        return PlanCache(maxsize)
    return ShardedPlanCache(maxsize, num_shards, min_shard_capacity=min_shard_capacity)


class ShardedPlanCache:
    """``num_shards`` independent :class:`PlanCache` shards behind one façade.

    ``min_shard_capacity`` lifts every shard to at least that many slots
    AFTER the ``maxsize`` split.  With the default of 0 the total capacity
    is exactly ``maxsize`` — but a ``maxsize`` smaller than the shard count
    then leaves some shards at capacity 0, silently disabling memoisation
    for their slice of the key space (a supported degenerate mode for the
    finished-plan cache, where size 0 means "no memoisation").  Callers
    whose semantics require every context to be cacheable — the planner's
    ``next_step`` serving cache, whose serial contract is "at least one
    slot" — pass ``min_shard_capacity=1`` and accept a total capacity of
    up to ``max(maxsize, num_shards)``.
    """

    def __init__(
        self, maxsize: int, num_shards: int, min_shard_capacity: int = 0
    ) -> None:
        if maxsize < 0:
            raise ConfigurationError(f"maxsize must be non-negative, got {maxsize}")
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be at least 1, got {num_shards}")
        if min_shard_capacity < 0:
            raise ConfigurationError(
                f"min_shard_capacity must be non-negative, got {min_shard_capacity}"
            )
        self.maxsize = int(maxsize)
        self.num_shards = int(num_shards)
        base, remainder = divmod(self.maxsize, self.num_shards)
        self.shards = [
            PlanCache(max(base + (1 if shard < remainder else 0), min_shard_capacity))
            for shard in range(self.num_shards)
        ]
        # Invalidation EVENTS are counted at the facade: one clear() of a
        # populated cache is one invalidation, however many shards held
        # entries — so the merged counter reads exactly like the serial
        # cache's (the per-shard breakdown keeps the per-shard counts).
        self._invalidations = 0

    # ------------------------------------------------------------------ #
    def shard_for(self, key: Hashable) -> PlanCache:
        """The shard owning ``key`` (stable-hash routing)."""
        return self.shards[shard_index(key, self.num_shards)]

    def get(self, key: Hashable):
        return self.shard_for(key).get(key)

    def put(self, key: Hashable, value) -> None:
        self.shard_for(key).put(key, value)

    def clear(self, reset_stats: bool = False) -> None:
        populated = any(len(shard) for shard in self.shards)
        for shard in self.shards:
            shard.clear(reset_stats=reset_stats)
        if reset_stats:
            self._invalidations = 0
        elif populated:
            self._invalidations += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.shard_for(key)

    def counters(self) -> dict:
        """Merged counter snapshot: each shard contributes ONE locked read.

        Cross-shard consistency is per-shard (a global freeze would need one
        lock over every shard, defeating the point of sharding), but no
        single shard's contribution can be torn — concurrent drain threads
        recording lookups mid-aggregation shift whole lookups between
        snapshots, never half of one.
        """
        merged = {
            "size": 0,
            "maxsize": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        for shard in self.shards:
            snapshot = shard.counters()
            for key in merged:
                merged[key] += snapshot[key]
        merged["invalidations"] = self._invalidations
        return merged

    @property
    def hits(self) -> int:
        return self.counters()["hits"]

    @property
    def misses(self) -> int:
        return self.counters()["misses"]

    @property
    def evictions(self) -> int:
        return self.counters()["evictions"]

    @property
    def invalidations(self) -> int:
        """Facade-level count of clear() events on a populated cache."""
        return self._invalidations

    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict:
        """Merged counters (same keys as :meth:`PlanCache.cache_info`) plus
        the shard count and the per-shard breakdown.  ``invalidations`` is
        the facade-level event count, not the per-shard sum."""
        per_shard = [shard.cache_info() for shard in self.shards]
        info = merge_cache_infos(per_shard)
        info["invalidations"] = self._invalidations
        info["num_shards"] = self.num_shards
        info["per_shard"] = per_shard
        return info
