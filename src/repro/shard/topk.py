"""Exact top-k selection with optional vocabulary (column) sharding.

:func:`stable_topk` is the beam planner's per-row candidate selection,
extracted verbatim: ``argpartition`` over the vocabulary, the k winners
ordered by (value desc, index asc) — the stable-``argsort`` order the
pre-batching scalar implementation produced — and an exact stable-sort
repair for rows whose k-th boundary value ties with unselected columns
(``argpartition`` gives no guarantee about WHICH index wins such a tie).

:func:`sharded_topk` splits the item axis into ``num_shards`` contiguous
column blocks, takes a per-block partial top-k and merges the candidates
exactly.  The merge is lossless: any element of the global stable top-k is
beaten by fewer than k columns under the (value desc, index asc) order, so
a fortiori by fewer than k columns of its own block — it is therefore in
its block's stable top-k and survives into the candidate pool, where the
same ordering selects it again.  Only per-block intermediates (the
``argpartition`` temporaries and a ``(rows, num_shards * k)`` candidate
pool) are materialised, which is what lets the item axis grow past what a
full-vocabulary sort per depth would allow — and the block interface is
the seam where block-wise logits materialisation can slot in later.

Ties involving ``-inf`` are the one place selected *indices* may differ
between shardings: a row whose boundary is ``-inf`` (fewer than k finite
candidates) pads its selection with arbitrary masked columns, exactly as
the unsharded ``argpartition`` does.  Consumers filter non-finite values
(the beam planner drops them before building hypotheses), so plans are
unaffected; the parity tests compare the finite prefix for this reason.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ConfigurationError

__all__ = ["stable_topk", "sharded_topk"]


def _check_k(k: int, vocab: int) -> None:
    if not 1 <= k <= vocab:
        raise ConfigurationError(
            f"top-k needs 1 <= k <= vocab, got k={k} for vocab={vocab}"
        )


def stable_topk(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of ``(rows, vocab)`` scores in stable-argsort order.

    Returns ``(indices, values)``, both ``(rows, k)``, ordered by value
    descending with ties broken by ascending column index — identical to
    ``np.argsort(-row, kind="stable")[:k]`` for every row whose selected
    values are finite.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ConfigurationError(f"expected a (rows, vocab) array, got shape {values.shape}")
    _check_k(k, values.shape[1])
    top = np.argpartition(-values, k - 1, axis=1)[:, :k]
    top_values = np.take_along_axis(values, top, axis=1)
    # Stable-argsort order among the k winners: value desc, index asc.
    order = np.lexsort((top, -top_values), axis=1)
    top = np.take_along_axis(top, order, axis=1)
    top_values = np.take_along_axis(top_values, order, axis=1)
    # argpartition gives no guarantee about WHICH index wins a tie at the
    # k-th boundary; the stable argsort kept the lowest index.  A finite
    # boundary value that also occurs outside the selection marks such a
    # tie — repair those (rare) rows with an exact stable sort.
    boundary = top_values[:, -1]
    finite_boundary = np.isfinite(boundary)
    if finite_boundary.any():
        selected_ties = (top_values == boundary[:, None]).sum(axis=1)
        total_ties = (values == boundary[:, None]).sum(axis=1)
        for row in np.flatnonzero(finite_boundary & (total_ties > selected_ties)):
            exact = np.argsort(-values[row], kind="stable")[:k]
            top[row] = exact
            top_values[row] = values[row][exact]
    return top, top_values


def sharded_topk(
    values: np.ndarray, k: int, num_shards: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Column-sharded top-``k``: per-block partial top-k merged exactly.

    With ``num_shards=1`` this IS :func:`stable_topk`.  Otherwise the item
    axis is split into ``num_shards`` contiguous blocks (sized like
    ``np.array_split``), each block contributes its own stable top-k, and
    the ``(rows, sum(k_b))`` candidate pool is reduced to the final k by
    the same (value desc, index asc) order.  For finite selections the
    result is identical to :func:`stable_topk` for any shard count.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ConfigurationError(f"expected a (rows, vocab) array, got shape {values.shape}")
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be at least 1, got {num_shards}")
    vocab = values.shape[1]
    _check_k(k, vocab)
    if num_shards == 1:
        return stable_topk(values, k)

    bounds = np.linspace(0, vocab, num_shards + 1, dtype=np.int64)
    candidate_indices: list[np.ndarray] = []
    candidate_values: list[np.ndarray] = []
    for start, stop in zip(bounds[:-1], bounds[1:]):
        width = int(stop - start)
        if width == 0:
            continue
        block_top, block_values = stable_topk(values[:, start:stop], min(k, width))
        candidate_indices.append(block_top + int(start))
        candidate_values.append(block_values)
    pool_indices = np.concatenate(candidate_indices, axis=1)
    pool_values = np.concatenate(candidate_values, axis=1)
    order = np.lexsort((pool_indices, -pool_values), axis=1)[:, :k]
    return (
        np.take_along_axis(pool_indices, order, axis=1),
        np.take_along_axis(pool_values, order, axis=1),
    )
