"""Configuration surface of the sharded execution subsystem.

Three knobs, resolved with one shared precedence rule (explicit argument >
environment variable > built-in default):

* ``num_workers`` (``REPRO_NUM_WORKERS``) — how many worker shards the
  executor partitions planning/evaluation requests across.
* ``shard_backend`` (``REPRO_SHARD_BACKEND``) — ``serial`` (partition but
  run shards in one thread; the parity reference), ``thread`` (a thread
  pool; NumPy releases the GIL inside BLAS so independent shard batches
  overlap) or ``process`` (a fork-based process pool; full interpreter
  parallelism, worker state is discarded after each dispatch).
* ``vocab_shards`` (``REPRO_VOCAB_SHARDS``) — how many column shards the
  item axis of fused logits tensors is split into for top-k selection.

The environment hooks exist so CI can force the parallel path across the
entire tier-1 suite (``REPRO_NUM_WORKERS=2 pytest``) without touching any
call site: every constructor defaulting a knob to ``None`` picks up the
forced value, and sharded results are bit-identical to serial, so the whole
suite doubles as a parity harness.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "VALID_BACKENDS",
    "resolve_num_workers",
    "resolve_shard_backend",
    "resolve_vocab_shards",
    "fork_available",
]

VALID_BACKENDS = ("serial", "thread", "process")

_ENV_NUM_WORKERS = "REPRO_NUM_WORKERS"
_ENV_BACKEND = "REPRO_SHARD_BACKEND"
_ENV_VOCAB_SHARDS = "REPRO_VOCAB_SHARDS"


def _positive_int(value, name: str, source: str) -> int:
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be an integer, got {value!r} (from {source})"
        ) from None
    if parsed < 1:
        raise ConfigurationError(
            f"{name} must be at least 1, got {parsed} (from {source}); "
            f"use 1 to disable sharding"
        )
    return parsed


def fork_available() -> bool:
    """Whether the ``process`` backend's fork start method exists on this OS."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_num_workers(value: "int | None" = None) -> int:
    """Resolve the worker count: explicit value > ``REPRO_NUM_WORKERS`` > 1."""
    if value is not None:
        return _positive_int(value, "num_workers", "argument")
    env = os.environ.get(_ENV_NUM_WORKERS)
    if env is not None and env != "":
        return _positive_int(env, "num_workers", f"${_ENV_NUM_WORKERS}")
    return 1


def resolve_shard_backend(value: "str | None" = None, num_workers: int = 1) -> str:
    """Resolve the backend: explicit > ``REPRO_SHARD_BACKEND`` > default.

    The default is ``thread`` whenever more than one worker is requested
    (sharding without parallelism is only useful as a parity reference) and
    ``serial`` otherwise.  A ``process`` request on a platform without the
    fork start method is a configuration error, not a silent fallback.
    """
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_BACKEND)
        if env is not None and env != "":
            value, source = env, f"${_ENV_BACKEND}"
        else:
            value = "thread" if num_workers > 1 else "serial"
    backend = str(value).lower()
    if backend not in VALID_BACKENDS:
        raise ConfigurationError(
            f"shard_backend must be one of {', '.join(VALID_BACKENDS)}, "
            f"got {value!r} (from {source})"
        )
    if backend == "process" and not fork_available():
        raise ConfigurationError(
            "the 'process' shard backend needs the fork start method, which "
            "this platform does not provide; use shard_backend='thread'"
        )
    return backend


def resolve_vocab_shards(value: "int | None" = None) -> int:
    """Resolve the vocabulary shard count: explicit > ``REPRO_VOCAB_SHARDS`` > 1."""
    if value is not None:
        return _positive_int(value, "vocab_shards", "argument")
    env = os.environ.get(_ENV_VOCAB_SHARDS)
    if env is not None and env != "":
        return _positive_int(env, "vocab_shards", f"${_ENV_VOCAB_SHARDS}")
    return 1
