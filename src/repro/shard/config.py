"""Configuration surface of the sharded execution subsystem.

The three knobs (``num_workers`` / ``REPRO_NUM_WORKERS``, ``shard_backend``
/ ``REPRO_SHARD_BACKEND``, ``vocab_shards`` / ``REPRO_VOCAB_SHARDS``) are
rows of the declarative resolver table in :mod:`repro.config`.  The
platform check (:func:`fork_available`) stays here — it is an environment
probe, not a knob, and tests monkeypatch it on this module — so
:func:`resolve_shard_backend` composes the table-driven name resolution
with the local fork check.
"""

from __future__ import annotations

import multiprocessing

from repro.config import (
    VALID_BACKENDS,
    resolve_num_workers,
    resolve_shard_backend_name,
    resolve_vocab_shards,
)
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "VALID_BACKENDS",
    "resolve_num_workers",
    "resolve_shard_backend",
    "resolve_vocab_shards",
    "fork_available",
]


def fork_available() -> bool:
    """Whether the ``process`` backend's fork start method exists on this OS."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_shard_backend(value: "str | None" = None, num_workers: int = 1) -> str:
    """Resolve the backend: explicit > ``REPRO_SHARD_BACKEND`` > default.

    The default is ``thread`` whenever more than one worker is requested
    (sharding without parallelism is only useful as a parity reference) and
    ``serial`` otherwise.  A ``process`` request on a platform without the
    fork start method is a configuration error, not a silent fallback.
    """
    backend = resolve_shard_backend_name(value, num_workers=num_workers)
    if backend == "process" and not fork_available():
        raise ConfigurationError(
            "the 'process' shard backend needs the fork start method, which "
            "this platform does not provide; use shard_backend='thread'"
        )
    return backend
