"""Worker-partitioned execution of planning and evaluation requests.

:class:`ShardedExecutor` owns the fan-out mechanics shared by every sharded
entry point (:meth:`~repro.core.beam.BeamSearchPlanner.plan_paths_batch`,
the :class:`~repro.evaluation.protocol.IRSEvaluationProtocol` rollouts,
:func:`~repro.evaluation.nextitem.evaluate_next_item`): partition work items
across ``num_workers`` hash shards, run one shard function per non-empty
shard on the configured backend, and scatter results back into the
caller's original order.  The shard functions are pure with respect to
shared planner state — workers read the (fitted, frozen) backbone and write
only per-shard state — so every backend produces bit-identical results:

* ``serial`` — shards run one after another in the calling thread.  This
  is the parity reference and the ``num_workers=1`` fast path (no pool is
  ever created).
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy
  releases the GIL inside BLAS kernels, so independent shard batches
  genuinely overlap on multi-core machines.
* ``process`` — a fork-based :class:`multiprocessing.pool.Pool` created
  per dispatch.  Fork children inherit the fitted model without pickling
  it; only the (shard, payload) tuples and the results cross the process
  boundary.  Worker-side cache mutations die with the children — exactly
  the independent-shard semantics the cache design calls for — so shard
  functions return any counters the caller wants to merge.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Hashable, Sequence, TypeVar

from repro.shard.config import resolve_num_workers, resolve_shard_backend
from repro.shard.partition import partition_indices
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

__all__ = ["ShardedExecutor"]

_LOGGER = get_logger("shard.executor")

T = TypeVar("T")
R = TypeVar("R")

# The fork backend passes the shard function to children through process
# inheritance (a closure over a fitted model is not picklable, the forked
# address space already holds it).  The module global is the hand-off point;
# the lock serialises concurrent fork dispatches so one dispatch's function
# can never leak into another's children.
_FORK_FN: "Callable | None" = None
_FORK_LOCK = threading.Lock()


def _fork_invoke(shard: int, payload):
    return _FORK_FN(shard, payload)  # type: ignore[misc]


class ShardedExecutor:
    """Partition work across hash shards and run them on a pluggable backend."""

    def __init__(
        self, num_workers: "int | None" = None, backend: "str | None" = None
    ) -> None:
        self.num_workers = resolve_num_workers(num_workers)
        self.backend = resolve_shard_backend(backend, num_workers=self.num_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedExecutor(num_workers={self.num_workers}, backend='{self.backend}')"

    # ------------------------------------------------------------------ #
    def run_shards(
        self, tasks: "Sequence[tuple[int, T]]", fn: "Callable[[int, T], R]"
    ) -> "list[R]":
        """Run ``fn(shard, payload)`` for every task, parallel per backend.

        Results come back in task order.  With one task (or the serial
        backend) no pool is created and ``fn`` runs in the calling thread.
        """
        if not tasks:
            return []
        if self.backend == "serial" or len(tasks) == 1:
            return [fn(shard, payload) for shard, payload in tasks]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
                futures = [pool.submit(fn, shard, payload) for shard, payload in tasks]
                return [future.result() for future in futures]
        if self.backend == "process":
            return self._run_fork(tasks, fn)
        raise ConfigurationError(f"unknown shard backend '{self.backend}'")  # pragma: no cover

    def _run_fork(
        self, tasks: "Sequence[tuple[int, T]]", fn: "Callable[[int, T], R]"
    ) -> "list[R]":
        # Forking while other threads are alive copies any lock one of them
        # holds mid-operation (a plan-cache RLock, the decode-stats lock)
        # into the children in the LOCKED state, with no owner to ever
        # release it — the children would deadlock on first use.  The
        # realistic path here is nesting (a process-backend planner inside a
        # thread-backend protocol), so when the process is not
        # single-threaded the dispatch degrades to in-thread execution:
        # results are bit-identical by the sharding contract, only the
        # parallelism is lost, and the log says why.
        if threading.active_count() > 1:
            _LOGGER.warning(
                "process shard backend: %d other thread(s) alive at fork time; "
                "running %d shard(s) in-thread instead (results are identical)",
                threading.active_count() - 1,
                len(tasks),
            )
            return [fn(shard, payload) for shard, payload in tasks]
        global _FORK_FN
        context = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            previous = _FORK_FN
            _FORK_FN = fn
            try:
                with context.Pool(processes=min(self.num_workers, len(tasks))) as pool:
                    return pool.starmap(_fork_invoke, list(tasks))
            finally:
                _FORK_FN = previous

    # ------------------------------------------------------------------ #
    def map_partitioned(
        self,
        items: "Sequence[T]",
        keys: "Sequence[Hashable]",
        fn: "Callable[[int, list[T]], Sequence[R]]",
    ) -> "list[R]":
        """Partition ``items`` by stable key hash, run shards, scatter back.

        ``fn(shard, shard_items)`` must return one result per shard item, in
        shard-item order; the merged list is aligned with ``items``.  With
        one worker this degenerates to a single direct ``fn`` call.
        """
        if len(items) != len(keys):
            raise ConfigurationError(
                f"got {len(keys)} partition keys for {len(items)} work items"
            )
        if not items:
            return []
        if self.num_workers == 1:
            return list(fn(0, list(items)))
        shards = partition_indices(keys, self.num_workers)
        tasks = [
            (shard, [items[i] for i in indices])
            for shard, indices in enumerate(shards)
            if indices
        ]
        shard_results = self.run_shards(tasks, fn)
        results: "list[R | None]" = [None] * len(items)
        for (shard, shard_items), returned in zip(tasks, shard_results):
            indices = shards[shard]
            if len(returned) != len(indices):
                raise ConfigurationError(
                    f"shard {shard} returned {len(returned)} results "
                    f"for {len(indices)} work items"
                )
            for position, result in zip(indices, returned):
                results[position] = result
        return results  # type: ignore[return-value]
