"""Worker-partitioned execution of planning and evaluation requests.

:class:`ShardedExecutor` owns the fan-out mechanics shared by every sharded
entry point (:meth:`~repro.core.beam.BeamSearchPlanner.plan_paths_batch`,
the :class:`~repro.evaluation.protocol.IRSEvaluationProtocol` rollouts,
:func:`~repro.evaluation.nextitem.evaluate_next_item`): partition work items
across ``num_workers`` hash shards, run one shard function per non-empty
shard on the configured backend, and scatter results back into the
caller's original order.  The shard functions are pure with respect to
shared planner state — workers read the (fitted, frozen) backbone and write
only per-shard state — so every backend produces bit-identical results:

* ``serial`` — shards run one after another in the calling thread.  This
  is the parity reference and the ``num_workers=1`` fast path (no pool is
  ever created).
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy
  releases the GIL inside BLAS kernels, so independent shard batches
  genuinely overlap on multi-core machines.
* ``process`` — a fork-based :class:`multiprocessing.pool.Pool` created
  per dispatch.  Fork children inherit the fitted model without pickling
  it; only the (shard, payload) tuples and the results cross the process
  boundary.  Worker-side cache mutations die with the children — exactly
  the independent-shard semantics the cache design calls for — so shard
  functions return any counters the caller wants to merge.

Asynchronous boundary
---------------------
:meth:`ShardedExecutor.run_shards_async` and :meth:`ShardedExecutor.submit`
expose the same dispatch as :class:`concurrent.futures.Future` values.
:meth:`run_shards` is now a join-then-raise gather over
:meth:`run_shards_async`, so every synchronous client (the beam planner,
the evaluation protocol) routes through the futures API unchanged in
results, and asynchronous clients can overlap shard dispatches with other
work.  (The serving subsystem, :mod:`repro.serve`, sits a level higher: it
queues requests per shard and drains them into the planner, which fans its
replans out through this executor.)
Futures resolve per backend: ``serial`` tasks (and single-task dispatches)
run inline and come back already resolved; ``thread`` tasks run on a pool
that shuts down as its futures complete; the fork dispatch is inherently a
barrier (``starmap``), so ``process`` futures are resolved by the time the
call returns — identical results, no pending state to track.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Hashable, Sequence, TypeVar

from repro.obs.trace import current_sink
from repro.shard.config import (
    VALID_BACKENDS,
    resolve_num_workers,
    resolve_shard_backend,
)
from repro.shard.partition import partition_indices
from repro.utils.exceptions import ConfigurationError, StaleGenerationError

__all__ = ["ShardedExecutor"]

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

# The fork backend passes the shard function to children through process
# inheritance (a closure over a fitted model is not picklable, the forked
# address space already holds it).  The module global is the hand-off point;
# the lock serialises concurrent fork dispatches so one dispatch's function
# can never leak into another's children.
_FORK_FN: "Callable | None" = None
_FORK_LOCK = threading.Lock()


def _fork_invoke(shard: int, payload):
    return _FORK_FN(shard, payload)  # type: ignore[misc]


class ShardedExecutor:
    """Partition work across hash shards and run them on a pluggable backend."""

    def __init__(
        self, num_workers: "int | None" = None, backend: "str | None" = None
    ) -> None:
        self.num_workers = resolve_num_workers(num_workers)
        self.backend = resolve_shard_backend(backend, num_workers=self.num_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedExecutor(num_workers={self.num_workers}, backend='{self.backend}')"

    # ------------------------------------------------------------------ #
    def run_shards(
        self,
        tasks: "Sequence[tuple[int, T]]",
        fn: "Callable[[int, T], R]",
        generation_guard: "Callable[[], object] | None" = None,
    ) -> "list[R]":
        """Run ``fn(shard, payload)`` for every task, parallel per backend.

        Results come back in task order.  With one task (or the serial
        backend) no pool is created and ``fn`` runs in the calling thread.
        Implemented as a gather over :meth:`run_shards_async`, so the
        synchronous and futures-based entry points can never disagree.

        On a shard exception every other shard task is still awaited before
        the first error re-raises — the pre-futures ``with`` pool had
        join-before-propagate semantics, and callers rely on them: nothing
        from a failed dispatch may still be mutating shared caches or
        counters once ``run_shards`` returns control.

        ``generation_guard`` is the replicated-serving rung's torn-dispatch
        check: a zero-arg callable (in practice reading the backbone's
        ``fit_generation``) snapshotted before dispatch and re-read after
        the join.  A mismatch means the model changed while shards were in
        flight — some shard results would reflect the old weights and some
        the new — so the whole dispatch raises
        :class:`~repro.utils.exceptions.StaleGenerationError` instead of
        returning a torn result set.  The stale check takes precedence over
        a shard error: a mid-dispatch retrain is the likeliest cause of
        both.
        """
        expected = generation_guard() if generation_guard is not None else None
        futures = self.run_shards_async(tasks, fn)
        results: "list[R]" = []
        first_error: "BaseException | None" = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised after the join
                if first_error is None:
                    first_error = exc
        if generation_guard is not None:
            observed = generation_guard()
            if observed != expected:
                logger.warning(
                    "generation guard tripped mid-dispatch: %r -> %r across %d shard(s)",
                    expected,
                    observed,
                    len(tasks),
                )
                raise StaleGenerationError(
                    f"generation changed from {expected!r} to {observed!r} during a "
                    f"fused {len(tasks)}-shard dispatch; the micro-batch would mix "
                    f"generations, so no result is returned"
                )
        if first_error is not None:
            raise first_error
        return results

    def run_shards_async(
        self, tasks: "Sequence[tuple[int, T]]", fn: "Callable[[int, T], R]"
    ) -> "list[Future[R]]":
        """Dispatch every task and return one :class:`Future` per task.

        Futures are in task order.  ``serial`` tasks and single-task
        dispatches run inline in the calling thread and come back already
        resolved (an exception is captured into the future, surfacing at
        ``result()`` exactly like a pooled task's).  ``thread`` tasks return
        genuinely pending futures; the pool stops accepting work immediately
        but keeps running until its futures complete.  The fork ``process``
        dispatch is a synchronous barrier, so its futures are resolved on
        return.
        """
        if not tasks:
            return []
        if self.backend == "thread" and len(tasks) > 1:
            pool = ThreadPoolExecutor(max_workers=len(tasks))
            futures: "list[Future[R]]" = []
            try:
                for shard, payload in tasks:
                    futures.append(pool.submit(fn, shard, payload))
            except BaseException:
                # pool.submit itself failed mid-batch (e.g. thread
                # exhaustion): join what was already dispatched so the
                # join-before-propagate contract holds even here.
                for future in futures:
                    future.exception()
                raise
            finally:
                pool.shutdown(wait=False)
            return futures
        if self.backend == "process" and len(tasks) > 1:
            return self._resolved_fork_futures(tasks, fn)
        if self.backend not in VALID_BACKENDS:  # pragma: no cover - ctor validates
            raise ConfigurationError(f"unknown shard backend '{self.backend}'")
        return [self._inline_future(fn, shard, payload) for shard, payload in tasks]

    def submit(
        self, shard: int, payload: T, fn: "Callable[[int, T], R]"
    ) -> "Future[R]":
        """One-task future: ``fn(shard, payload)`` on this executor's backend.

        On the ``thread`` backend the task runs on its own worker thread (a
        single-task pool that shuts down with the future); the ``serial``
        backend and the fork barrier return an already-resolved future.
        """
        if self.backend == "thread":
            pool = ThreadPoolExecutor(max_workers=1)
            try:
                return pool.submit(fn, shard, payload)
            finally:
                pool.shutdown(wait=False)
        return self.run_shards_async([(shard, payload)], fn)[0]

    @staticmethod
    def _inline_future(
        fn: "Callable[[int, T], R]", shard: int, payload: T
    ) -> "Future[R]":
        future: "Future[R]" = Future()
        try:
            future.set_result(fn(shard, payload))
        except BaseException as exc:  # noqa: BLE001 - captured into the future
            future.set_exception(exc)
        return future

    def _resolved_fork_futures(
        self, tasks: "Sequence[tuple[int, T]]", fn: "Callable[[int, T], R]"
    ) -> "list[Future[R]]":
        futures: "list[Future[R]]" = [Future() for _ in tasks]
        try:
            results = self._run_fork(tasks, fn)
        except BaseException as exc:  # noqa: BLE001 - captured into the futures
            for future in futures:
                future.set_exception(exc)
        else:
            for future, result in zip(futures, results):
                future.set_result(result)
        return futures

    def _run_fork(
        self, tasks: "Sequence[tuple[int, T]]", fn: "Callable[[int, T], R]"
    ) -> "list[R]":
        # Forking while other threads are alive copies any lock one of them
        # holds mid-operation (a plan-cache RLock, the decode-stats lock)
        # into the children in the LOCKED state, with no owner to ever
        # release it — the children would deadlock on first use.  The
        # realistic path here is nesting (a process-backend planner inside a
        # thread-backend protocol), so when the process is not
        # single-threaded the dispatch degrades to in-thread execution:
        # results are bit-identical by the sharding contract, only the
        # parallelism is lost, and the log says why.
        if threading.active_count() > 1:
            logger.warning(
                "process shard backend: %d other thread(s) alive at fork time; "
                "running %d shard(s) in-thread instead (results are identical)",
                threading.active_count() - 1,
                len(tasks),
            )
            return [fn(shard, payload) for shard, payload in tasks]
        global _FORK_FN
        context = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            previous = _FORK_FN
            _FORK_FN = fn
            try:
                with context.Pool(processes=min(self.num_workers, len(tasks))) as pool:
                    return pool.starmap(_fork_invoke, list(tasks))
            finally:
                _FORK_FN = previous

    # ------------------------------------------------------------------ #
    def map_partitioned(
        self,
        items: "Sequence[T]",
        keys: "Sequence[Hashable]",
        fn: "Callable[[int, list[T]], Sequence[R]]",
        generation_guard: "Callable[[], object] | None" = None,
    ) -> "list[R]":
        """Partition ``items`` by stable key hash, run shards, scatter back.

        ``fn(shard, shard_items)`` must return one result per shard item, in
        shard-item order; the merged list is aligned with ``items``.  With
        one worker this degenerates to a single direct ``fn`` call.
        ``generation_guard`` is forwarded to :meth:`run_shards` (and applied
        to the single-worker fast path too), so a partitioned dispatch can
        never scatter back results computed under two model generations.
        """
        if len(items) != len(keys):
            raise ConfigurationError(
                f"got {len(keys)} partition keys for {len(items)} work items"
            )
        if not items:
            return []
        if self.num_workers == 1:
            expected = generation_guard() if generation_guard is not None else None
            results_inline = list(fn(0, list(items)))
            if generation_guard is not None:
                observed = generation_guard()
                if observed != expected:
                    logger.warning(
                        "generation guard tripped mid-dispatch: %r -> %r "
                        "(single-worker, %d item(s))",
                        expected,
                        observed,
                        len(items),
                    )
                    raise StaleGenerationError(
                        f"generation changed from {expected!r} to {observed!r} "
                        f"during a single-worker dispatch of {len(items)} item(s)"
                    )
            return results_inline
        # A traced serving drain above installed a batch sink: record the
        # partition step (scatter) and the result merge (gather) as
        # batch-wide spans.  One thread-local read when untraced.
        sink = current_sink()
        scatter_started = time.perf_counter() if sink is not None else 0.0
        shards = partition_indices(keys, self.num_workers)
        tasks = [
            (shard, [items[i] for i in indices])
            for shard, indices in enumerate(shards)
            if indices
        ]
        if sink is not None:
            sink.batch_span(
                "shard.scatter",
                scatter_started,
                time.perf_counter(),
                items=len(items),
                shards=len(tasks),
                backend=self.backend,
            )
        shard_results = self.run_shards(tasks, fn, generation_guard=generation_guard)
        gather_started = time.perf_counter() if sink is not None else 0.0
        results: "list[R | None]" = [None] * len(items)
        for (shard, shard_items), returned in zip(tasks, shard_results):
            indices = shards[shard]
            if len(returned) != len(indices):
                raise ConfigurationError(
                    f"shard {shard} returned {len(returned)} results "
                    f"for {len(indices)} work items"
                )
            for position, result in zip(indices, returned):
                results[position] = result
        if sink is not None:
            sink.batch_span(
                "shard.gather",
                gather_started,
                time.perf_counter(),
                items=len(items),
                shards=len(tasks),
                backend=self.backend,
            )
        return results  # type: ignore[return-value]
