"""Popularity recommender (POP baseline of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry

__all__ = ["Popularity"]


@model_registry.register("pop")
class Popularity(SequentialRecommender):
    """Recommend items by global occurrence count in the training data.

    History- and user-independent; it is the weakest baseline of Table III
    but its Rec2Inf adaptation is surprisingly competitive because the
    re-ranking step alone carries the path toward the objective.
    """

    name = "POP"

    def __init__(self) -> None:
        super().__init__()
        self._counts: np.ndarray | None = None

    def fit(self, split: DatasetSplit) -> "Popularity":
        self.corpus = split.corpus
        counts = np.zeros(split.corpus.vocab.size, dtype=np.float64)
        for sequence in split.train:
            for item in sequence.items:
                counts[item] += 1.0
        counts[0] = 0.0
        self._counts = counts
        return self

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self._counts is not None
        scores = self._counts.copy()
        scores[0] = -np.inf
        return scores
