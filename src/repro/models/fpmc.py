"""Factorized Personalized Markov Chains (Rendle et al., WWW 2010).

FPMC combines matrix factorisation (long-term user taste) with a factorised
first-order Markov chain (short-term sequential dynamics):

``score(u, last, i) = <V_u^UI, V_i^IU> + <V_last^LI, V_i^IL>``

It is trained with the S-BPR pairwise objective on (user, previous item,
positive next item, sampled negative) tuples drawn from the training
sub-sequences.  Not one of the paper's named baselines, but the canonical
bridge between BPR and the sequential neural models, and a useful extra
Rec2Inf backbone.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry
from repro.utils.rng import as_rng

__all__ = ["FPMC"]


@model_registry.register("fpmc")
class FPMC(SequentialRecommender):
    """Matrix factorisation + factorised Markov chain, trained with S-BPR."""

    name = "FPMC"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 8,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        samples_per_epoch: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.samples_per_epoch = samples_per_epoch
        self.seed = seed
        #: user -> next-item factors ``V^UI`` and its transpose pair ``V^IU``
        self.user_factors: np.ndarray | None = None
        self.item_user_factors: np.ndarray | None = None
        #: previous-item -> next-item factors ``V^LI`` / ``V^IL``
        self.prev_factors: np.ndarray | None = None
        self.item_prev_factors: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "FPMC":
        rng = as_rng(self.seed)
        corpus = split.corpus
        self.corpus = corpus
        num_users = corpus.num_users
        vocab_size = corpus.vocab.size
        dim = self.embedding_dim

        scale = 0.1
        self.user_factors = rng.normal(0.0, scale, size=(num_users, dim))
        self.item_user_factors = rng.normal(0.0, scale, size=(vocab_size, dim))
        self.prev_factors = rng.normal(0.0, scale, size=(vocab_size, dim))
        self.item_prev_factors = rng.normal(0.0, scale, size=(vocab_size, dim))

        transitions: list[tuple[int, int, int]] = []
        user_positives: dict[int, set[int]] = {}
        for sequence in split.train:
            user = sequence.user_index
            user_positives.setdefault(user, set()).update(sequence.items)
            for previous, current in zip(sequence.items[:-1], sequence.items[1:]):
                transitions.append((user, previous, current))
        if not transitions:
            return self

        samples = self.samples_per_epoch or len(transitions)
        lr, reg = self.learning_rate, self.regularization
        transition_array = np.asarray(transitions, dtype=np.int64)
        for _ in range(self.epochs):
            picks = rng.integers(0, len(transitions), size=samples)
            for index in picks:
                user, previous, positive = (int(x) for x in transition_array[index])
                negative = int(rng.integers(1, vocab_size))
                while negative in user_positives[user]:
                    negative = int(rng.integers(1, vocab_size))

                user_vec = self.user_factors[user]
                prev_vec = self.prev_factors[previous]
                pos_user = self.item_user_factors[positive]
                neg_user = self.item_user_factors[negative]
                pos_prev = self.item_prev_factors[positive]
                neg_prev = self.item_prev_factors[negative]

                x_uij = user_vec @ (pos_user - neg_user) + prev_vec @ (pos_prev - neg_prev)
                sigmoid = 1.0 / (1.0 + np.exp(x_uij))

                self.user_factors[user] += lr * (sigmoid * (pos_user - neg_user) - reg * user_vec)
                self.item_user_factors[positive] += lr * (sigmoid * user_vec - reg * pos_user)
                self.item_user_factors[negative] += lr * (-sigmoid * user_vec - reg * neg_user)
                self.prev_factors[previous] += lr * (sigmoid * (pos_prev - neg_prev) - reg * prev_vec)
                self.item_prev_factors[positive] += lr * (sigmoid * prev_vec - reg * pos_prev)
                self.item_prev_factors[negative] += lr * (-sigmoid * prev_vec - reg * neg_prev)
        return self

    # ------------------------------------------------------------------ #
    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.item_user_factors is not None and self.item_prev_factors is not None
        assert self.user_factors is not None and self.prev_factors is not None

        if user_index is not None and 0 <= user_index < self.user_factors.shape[0]:
            user_vec = self.user_factors[user_index]
        elif history:
            user_vec = self.item_user_factors[np.asarray(history, dtype=np.int64)].mean(axis=0)
        else:
            user_vec = np.zeros(self.embedding_dim)

        scores = self.item_user_factors @ user_vec
        if history:
            previous = int(history[-1])
            if 0 <= previous < self.prev_factors.shape[0]:
                scores = scores + self.item_prev_factors @ self.prev_factors[previous]
        scores = scores.astype(np.float64)
        scores[0] = -np.inf
        return scores
