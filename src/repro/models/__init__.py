"""Sequential recommender models.

These serve three roles in the paper's experiments:

* **Evaluator candidates** (§IV-B3): GRU4Rec, Caser, SASRec and BERT4Rec are
  trained on the next-item task; the best one becomes the IRS evaluator that
  supplies ``P(i | s)`` for the IoI / IoR / PPL metrics (Table II).
* **Rec2Inf backbones** (§III-C, Table III): POP, BPR, TransRec, GRU4Rec,
  Caser and SASRec are adapted into influential recommenders by greedy
  re-ranking toward the objective item.
* **Vanilla baselines** (Table III): the same models generating paths by
  repeatedly recommending their top item.

All models implement the :class:`~repro.models.base.SequentialRecommender`
interface (``fit`` on a :class:`~repro.data.splitting.DatasetSplit`,
``score_next`` over the item vocabulary) and are registered in
:data:`~repro.models.base.model_registry` under their lower-case names.
"""

from repro.models.base import (
    NeuralSequentialRecommender,
    SequentialRecommender,
    model_registry,
)
from repro.models.bert4rec import Bert4Rec
from repro.models.bpr import BPR
from repro.models.caser import Caser
from repro.models.fpmc import FPMC
from repro.models.gru4rec import GRU4Rec
from repro.models.itemknn import ItemKNN
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.models.sasrec import SASRec
from repro.models.transrec import TransRec

__all__ = [
    "BPR",
    "Bert4Rec",
    "Caser",
    "FPMC",
    "GRU4Rec",
    "ItemKNN",
    "MarkovChainRecommender",
    "NeuralSequentialRecommender",
    "Popularity",
    "SASRec",
    "SequentialRecommender",
    "TransRec",
    "model_registry",
]
