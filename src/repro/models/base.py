"""Common interface and training loop for sequential recommenders."""

from __future__ import annotations

import abc
import time
from typing import Sequence

import numpy as np

from repro.data.batching import SequenceBatch, iterate_batches
from repro.data.interactions import SequenceCorpus
from repro.data.padding import PAD_INDEX
from repro.data.splitting import DatasetSplit
from repro.nn.layers import Module
from repro.nn.optim import Adam, ReduceLROnPlateau, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.utils.batch import broadcast_user_indices, check_batch_lengths
from repro.utils.exceptions import NotFittedError
from repro.utils.logging import get_logger
from repro.utils.registry import Registry
from repro.utils.rng import as_rng

__all__ = ["SequentialRecommender", "NeuralSequentialRecommender", "model_registry"]

_LOGGER = get_logger("models")

#: Registry mapping lower-case model names (``"sasrec"``, ``"pop"``, ...) to classes.
model_registry: Registry["SequentialRecommender"] = Registry("recommender model")


class SequentialRecommender(abc.ABC):
    """Interface shared by every next-item recommender in the package.

    A fitted model scores every item in the vocabulary given a user's item
    history; the padding index always receives ``-inf``.  Higher score means
    "more likely to be consumed next".
    """

    #: short human-readable name used in result tables
    name: str = "base"

    def __init__(self) -> None:
        self.corpus: SequenceCorpus | None = None

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def fit(self, split: DatasetSplit) -> "SequentialRecommender":
        """Train on the training sub-sequences of ``split``."""

    @abc.abstractmethod
    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        """Return a score for every vocabulary index given ``history``."""

    def score_next_batch(
        self,
        histories: Sequence[Sequence[int]],
        user_indices: "Sequence[int | None] | None" = None,
    ) -> np.ndarray:
        """Score many histories at once, returning a ``(batch, vocab)`` array.

        The default implementation loops :meth:`score_next`; models with a
        batched forward (IRN) override it to fuse the whole batch into one
        network call.
        """
        users = broadcast_user_indices(len(histories), user_indices)
        if not histories:
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        return np.stack(
            [
                np.asarray(self.score_next(history, user), dtype=np.float64)
                for history, user in zip(histories, users)
            ]
        )

    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> SequenceCorpus:
        if self.corpus is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.corpus

    @property
    def vocab_size(self) -> int:
        """Size of the item vocabulary (including padding index 0)."""
        return self._require_fitted().vocab.size

    def probabilities(
        self, history: Sequence[int], user_index: int | None = None
    ) -> np.ndarray:
        """Softmax-normalised next-item distribution (padding has probability 0)."""
        scores = np.asarray(self.score_next(history, user_index), dtype=np.float64).copy()
        scores[PAD_INDEX] = -np.inf
        shifted = scores - np.max(scores[np.isfinite(scores)])
        exp = np.where(np.isfinite(shifted), np.exp(shifted), 0.0)
        total = exp.sum()
        return exp / total if total > 0 else np.full_like(exp, 1.0 / max(len(exp) - 1, 1))

    def log_probability(
        self, history: Sequence[int], item: int, user_index: int | None = None
    ) -> float:
        """``log P(item | history)`` under the model's softmax distribution."""
        probs = self.probabilities(history, user_index)
        return float(np.log(max(probs[item], 1e-12)))

    def rank_of(
        self, history: Sequence[int], item: int, user_index: int | None = None
    ) -> int:
        """1-based rank of ``item`` among all items (1 = top recommendation)."""
        scores = np.asarray(self.score_next(history, user_index), dtype=np.float64).copy()
        scores[PAD_INDEX] = -np.inf
        target = scores[item]
        return int(np.sum(scores > target)) + 1

    def rank_of_batch(
        self,
        histories: Sequence[Sequence[int]],
        items: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
    ) -> list[int]:
        """1-based ranks of ``items[b]`` given ``histories[b]``, batched.

        Shares one :meth:`score_next_batch` call across the whole batch and
        vectorises the rank computation (evaluation hot path for Tables II/IV).
        """
        check_batch_lengths(len(histories), items=items)
        if not histories:
            return []
        scores = self.score_next_batch(histories, user_indices)
        scores[:, PAD_INDEX] = -np.inf
        batch = np.arange(len(histories))
        targets = scores[batch, np.asarray(list(items), dtype=np.int64)]
        return [int(rank) for rank in (scores > targets[:, None]).sum(axis=1) + 1]

    def top_k(
        self,
        history: Sequence[int],
        k: int,
        user_index: int | None = None,
        exclude: Sequence[int] = (),
    ) -> list[int]:
        """Indices of the ``k`` highest-scoring items, excluding ``exclude``."""
        scores = np.asarray(self.score_next(history, user_index), dtype=np.float64).copy()
        scores[PAD_INDEX] = -np.inf
        for item in exclude:
            scores[item] = -np.inf
        k = min(k, np.sum(np.isfinite(scores)))
        order = np.argsort(-scores, kind="stable")
        return [int(i) for i in order[:k]]

    def recommend_next(
        self,
        history: Sequence[int],
        user_index: int | None = None,
        exclude: Sequence[int] = (),
    ) -> int:
        """Single top recommendation (used by the vanilla IRS adaptation)."""
        return self.top_k(history, 1, user_index=user_index, exclude=exclude)[0]


class NeuralSequentialRecommender(SequentialRecommender):
    """Shared mini-batch training loop for the autograd-based models.

    Subclasses implement :meth:`_build` (construct the network once the corpus
    is known), :meth:`_loss` (loss on one padded batch) and
    :meth:`score_next`.
    """

    def __init__(
        self,
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        weight_decay: float = 0.0,
        max_sequence_length: int = 50,
        grad_clip: float = 5.0,
        padding_scheme: str = "pre",
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.max_sequence_length = max_sequence_length
        self.grad_clip = grad_clip
        self.padding_scheme = padding_scheme
        self.seed = seed
        self.module: Module | None = None
        self.training_history: list[dict[str, float]] = []
        self._fit_generation = 0

    @property
    def fit_generation(self) -> int:
        """Monotonic counter bumped by every (re)train / weight load.

        Downstream caches keyed on this model's outputs (the beam planner's
        :class:`~repro.cache.memo.PlanCache`) compare it to detect retrains
        and invalidate themselves.
        """
        return self._fit_generation

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        """Construct and return the underlying network."""

    @abc.abstractmethod
    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        """Compute the training loss for one batch."""

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "NeuralSequentialRecommender":
        rng = as_rng(self.seed)
        self.corpus = split.corpus
        self.module = self._build(split.corpus, rng)
        optimizer = Adam(
            self.module.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
        )
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        self.training_history = []

        for epoch in range(self.epochs):
            start = time.time()
            self.module.train()
            epoch_loss = 0.0
            num_batches = 0
            for batch in iterate_batches(
                split.train,
                self.batch_size,
                shuffle=True,
                scheme=self.padding_scheme,
                length=None,
                seed=rng,
            ):
                batch = self._truncate(batch)
                optimizer.zero_grad()
                loss = self._loss(batch, rng)
                loss.backward()
                if self.grad_clip:
                    clip_grad_norm(self.module.parameters(), self.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            train_loss = epoch_loss / max(num_batches, 1)

            validation_loss = self._validation_loss(split, rng)
            scheduler.step(validation_loss if validation_loss is not None else train_loss)
            record = {
                "epoch": epoch + 1,
                "train_loss": train_loss,
                "validation_loss": validation_loss if validation_loss is not None else float("nan"),
                "lr": optimizer.lr,
                "seconds": time.time() - start,
            }
            self.training_history.append(record)
            _LOGGER.info(
                "%s epoch %d/%d train %.4f val %s (%.1fs)",
                self.name,
                epoch + 1,
                self.epochs,
                train_loss,
                f"{validation_loss:.4f}" if validation_loss is not None else "n/a",
                record["seconds"],
            )
        self.module.eval()
        self._fit_generation += 1
        return self

    def _truncate(self, batch: SequenceBatch) -> SequenceBatch:
        """Clip overly long batches to ``max_sequence_length`` (keep the most recent)."""
        if batch.max_length <= self.max_sequence_length:
            return batch
        if self.padding_scheme == "pre":
            items = batch.items[:, -self.max_sequence_length :]
        else:
            items = batch.items[:, : self.max_sequence_length]
        lengths = np.minimum(batch.lengths, self.max_sequence_length)
        return SequenceBatch(items=items, users=batch.users, lengths=lengths)

    def _validation_loss(self, split: DatasetSplit, rng: np.random.Generator) -> float | None:
        if not split.validation:
            return None
        self.module.eval()
        total, batches = 0.0, 0
        with no_grad():
            for batch in iterate_batches(
                split.validation,
                self.batch_size,
                shuffle=False,
                scheme=self.padding_scheme,
                seed=rng,
            ):
                batch = self._truncate(batch)
                total += self._loss(batch, rng).item()
                batches += 1
        self.module.train()
        return total / max(batches, 1)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_weights(self, path: str) -> None:
        """Save the trained network parameters to ``path`` (``.npz``).

        Only the weights are stored; re-creating the model requires the same
        constructor arguments and corpus (see :meth:`warm_start`).
        """
        from repro.nn.serialization import save_module

        if self.module is None:
            raise NotFittedError(f"{type(self).__name__} has no trained weights to save")
        save_module(self.module, path)

    def warm_start(self, split: DatasetSplit, path: str) -> "NeuralSequentialRecommender":
        """Rebuild the network for ``split`` and load weights saved earlier.

        This skips training entirely: the corpus must have the same
        vocabulary/user universe as the one the weights were trained on
        (mismatched shapes raise a descriptive error from the checkpoint
        loader).  Returns ``self`` so it chains like :meth:`fit`.
        """
        from repro.nn.serialization import load_module

        rng = as_rng(self.seed)
        self.corpus = split.corpus
        self.module = self._build(split.corpus, rng)
        load_module(self.module, path)
        self.module.eval()
        self.training_history = []
        self._fit_generation += 1
        return self
