"""SASRec: self-attentive sequential recommendation (Kang & McAuley, 2018).

Architecture: item embedding + learned positional embedding -> Transformer
encoder with a causal mask -> tied-weight softmax over items.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.models._sequence_utils import clip_history, shifted_inputs_and_targets
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Module
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder, causal_mask
from repro.utils.rng import spawn_rng

__all__ = ["SASRec"]


class _SASRecModule(Module):
    """Transformer encoder with causal masking and tied output embeddings."""

    def __init__(
        self,
        vocab_size: int,
        max_length: int,
        embedding_dim: int,
        num_heads: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 4)
        self.item_embedding = Embedding(vocab_size, embedding_dim, padding_idx=0, rng=rngs[0])
        self.position_embedding = Embedding(max_length, embedding_dim, rng=rngs[1])
        self.encoder = TransformerEncoder(
            num_layers, embedding_dim, num_heads, dropout=dropout, rng=rngs[2]
        )
        self.dropout = Dropout(dropout, rng=rngs[3])
        self.max_length = max_length

    def hidden_states(self, items: np.ndarray) -> Tensor:
        batch, length = items.shape
        positions = np.tile(np.arange(length) % self.max_length, (batch, 1))
        x = self.item_embedding(items) + self.position_embedding(positions)
        x = self.dropout(x)
        return self.encoder(x, mask=causal_mask(length, copy=False))

    def forward(self, items: np.ndarray) -> Tensor:
        hidden = self.hidden_states(items)
        return hidden.matmul(self.item_embedding.weight.transpose())


@model_registry.register("sasrec")
class SASRec(NeuralSequentialRecommender):
    """Self-attention based next-item recommender."""

    name = "SASRec"

    def __init__(
        self,
        embedding_dim: int = 32,
        num_heads: int = 2,
        num_layers: int = 2,
        dropout: float = 0.1,
        epochs: int = 8,
        batch_size: int = 64,
        learning_rate: float = 2e-3,
        max_sequence_length: int = 40,
        seed: int = 0,
    ) -> None:
        super().__init__(
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            seed=seed,
        )
        self.embedding_dim = embedding_dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.dropout = dropout

    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        return _SASRecModule(
            vocab_size=corpus.vocab.size,
            max_length=self.max_sequence_length + 1,
            embedding_dim=self.embedding_dim,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            dropout=self.dropout,
            rng=rng,
        )

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        inputs, targets = shifted_inputs_and_targets(batch.items)
        logits = self.module(inputs)
        return F.cross_entropy(logits, targets, ignore_index=0)

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        history = clip_history(history, self.max_sequence_length)
        if not history:
            history = [0]
        items = np.asarray([history], dtype=np.int64)
        with no_grad():
            logits = self.module(items)
        scores = logits.data[0, -1].copy()
        scores[0] = -np.inf
        return scores
