"""Caser: convolutional sequence embedding recommendation (Tang & Wang, 2018).

The last ``L`` items are embedded into an ``L x d`` "image"; horizontal
filters of heights {2, ..., L} capture union-level sequential patterns and
vertical filters capture point-level (weighted-sum) patterns.  The pooled
features, optionally concatenated with a user embedding, feed a two-layer
MLP that scores every item.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.data.padding import PAD_INDEX, pre_pad
from repro.models._sequence_utils import clip_history
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.nn import functional as F
from repro.nn.conv import Conv2d
from repro.nn.layers import Dropout, Embedding, Linear, Module, ModuleList
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.utils.rng import spawn_rng

__all__ = ["Caser"]


class _CaserModule(Module):
    """Convolutional scorer over the last ``window`` items."""

    def __init__(
        self,
        vocab_size: int,
        num_users: int,
        embedding_dim: int,
        window: int,
        num_horizontal: int,
        num_vertical: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 6)
        self.window = window
        self.embedding_dim = embedding_dim
        self.item_embedding = Embedding(vocab_size, embedding_dim, padding_idx=0, rng=rngs[0])
        self.user_embedding = Embedding(num_users, embedding_dim, rng=rngs[1])
        heights = [h for h in range(2, window + 1)]
        self.horizontal = ModuleList(
            [Conv2d(1, num_horizontal, (height, embedding_dim), rng=rngs[2]) for height in heights]
        )
        self.vertical = Conv2d(1, num_vertical, (window, 1), rng=rngs[3])
        feature_dim = num_horizontal * len(heights) + num_vertical * embedding_dim
        self.hidden = Linear(feature_dim, embedding_dim, rng=rngs[4])
        self.dropout = Dropout(dropout, rng=rngs[5])
        self.output = Linear(2 * embedding_dim, vocab_size, rng=rngs[4])

    def forward(self, windows: np.ndarray, users: np.ndarray) -> Tensor:
        batch = windows.shape[0]
        embedded = self.item_embedding(windows)  # (batch, window, d)
        image = embedded.reshape(batch, 1, self.window, self.embedding_dim)

        features = []
        for conv in self.horizontal:
            # (batch, filters, window-h+1, 1) -> max over the temporal axis
            activated = conv(image).relu()
            pooled = activated.max(axis=2)  # (batch, filters, 1)
            features.append(pooled.reshape(batch, -1))
        vertical = self.vertical(image).relu()  # (batch, filters, 1, d)
        features.append(vertical.reshape(batch, -1))

        convolution = concatenate(features, axis=1)
        hidden = self.dropout(self.hidden(convolution).relu())
        user_vectors = self.user_embedding(users)
        combined = concatenate([hidden, user_vectors], axis=1)
        return self.output(combined)


@model_registry.register("caser")
class Caser(NeuralSequentialRecommender):
    """CNN-based next-item recommender."""

    name = "Caser"

    def __init__(
        self,
        embedding_dim: int = 32,
        window: int = 5,
        num_horizontal: int = 8,
        num_vertical: int = 2,
        dropout: float = 0.1,
        targets_per_sequence: int = 6,
        epochs: int = 8,
        batch_size: int = 64,
        learning_rate: float = 3e-3,
        max_sequence_length: int = 40,
        seed: int = 0,
    ) -> None:
        super().__init__(
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            seed=seed,
        )
        self.embedding_dim = embedding_dim
        self.window = window
        self.num_horizontal = num_horizontal
        self.num_vertical = num_vertical
        self.dropout = dropout
        self.targets_per_sequence = targets_per_sequence

    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        return _CaserModule(
            vocab_size=corpus.vocab.size,
            num_users=corpus.num_users,
            embedding_dim=self.embedding_dim,
            window=self.window,
            num_horizontal=self.num_horizontal,
            num_vertical=self.num_vertical,
            dropout=self.dropout,
            rng=rng,
        )

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        windows, users, targets = self._training_windows(batch, rng)
        logits = self.module(windows, users)
        return F.cross_entropy(logits, targets, ignore_index=PAD_INDEX)

    def _training_windows(
        self, batch: SequenceBatch, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (window -> next item) training examples from a padded batch."""
        windows: list[list[int]] = []
        users: list[int] = []
        targets: list[int] = []
        for row, user in zip(batch.items, batch.users):
            items = [int(i) for i in row if i != PAD_INDEX]
            if len(items) < 2:
                continue
            candidate_positions = list(range(1, len(items)))
            if len(candidate_positions) > self.targets_per_sequence:
                chosen = rng.choice(
                    candidate_positions, size=self.targets_per_sequence, replace=False
                )
            else:
                chosen = candidate_positions
            for position in chosen:
                history = items[max(0, position - self.window) : position]
                windows.append(pre_pad(history, self.window))
                users.append(int(user))
                targets.append(items[position])
        if not windows:
            # Degenerate batch (all sequences length 1): emit one dummy example.
            windows.append([PAD_INDEX] * self.window)
            users.append(int(batch.users[0]))
            targets.append(PAD_INDEX)
        return (
            np.asarray(windows, dtype=np.int64),
            np.asarray(users, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        )

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        history = clip_history(history, self.window)
        window = np.asarray([pre_pad(history, self.window)], dtype=np.int64)
        user = np.asarray([user_index if user_index is not None else 0], dtype=np.int64)
        with no_grad():
            logits = self.module(window, user)
        scores = logits.data[0].copy()
        scores[PAD_INDEX] = -np.inf
        return scores
