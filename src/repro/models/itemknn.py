"""Item-kNN: cosine similarity over item co-occurrence profiles.

A non-parametric sequential baseline: each item is represented by the vector
of users (and, with ``window_cooccurrence=True``, nearby items) it co-occurs
with; scoring a history sums the cosine similarities of each candidate to the
most recent history items with an exponential recency decay.

Cheap, deterministic and surprisingly strong on dense corpora; it doubles as
an extra Rec2Inf backbone and as a fast evaluator candidate for tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry
from repro.utils.exceptions import ConfigurationError

__all__ = ["ItemKNN"]


@model_registry.register("itemknn")
class ItemKNN(SequentialRecommender):
    """Neighbourhood model on item co-occurrence vectors.

    Parameters
    ----------
    recency_window:
        Number of most recent history items contributing to the score.
    recency_decay:
        Multiplicative weight decay per step back in the history (1.0 means
        all window items count equally).
    window_cooccurrence:
        If True, item profiles also count items that appear within
        ``cooccurrence_radius`` positions in a training sequence; if False,
        only user-level co-occurrence is used.
    cooccurrence_radius:
        Radius of the within-sequence window (only with
        ``window_cooccurrence=True``).
    shrinkage:
        Additive shrinkage in the cosine denominator, damping similarities
        supported by few co-occurrences.
    """

    name = "ItemKNN"

    def __init__(
        self,
        recency_window: int = 5,
        recency_decay: float = 0.8,
        window_cooccurrence: bool = True,
        cooccurrence_radius: int = 3,
        shrinkage: float = 10.0,
    ) -> None:
        super().__init__()
        if recency_window <= 0:
            raise ConfigurationError("recency_window must be positive")
        if not 0.0 < recency_decay <= 1.0:
            raise ConfigurationError("recency_decay must lie in (0, 1]")
        if cooccurrence_radius <= 0:
            raise ConfigurationError("cooccurrence_radius must be positive")
        if shrinkage < 0:
            raise ConfigurationError("shrinkage must be non-negative")
        self.recency_window = recency_window
        self.recency_decay = recency_decay
        self.window_cooccurrence = window_cooccurrence
        self.cooccurrence_radius = cooccurrence_radius
        self.shrinkage = shrinkage
        self._similarity: np.ndarray | None = None
        self._popularity: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "ItemKNN":
        corpus = split.corpus
        self.corpus = corpus
        size = corpus.vocab.size

        cooccurrence = np.zeros((size, size), dtype=np.float64)
        popularity = np.zeros(size, dtype=np.float64)
        for sequence in split.train:
            items = list(sequence.items)
            unique = sorted(set(items))
            for item in items:
                popularity[item] += 1.0
            if self.window_cooccurrence:
                for position, item in enumerate(items):
                    start = max(0, position - self.cooccurrence_radius)
                    for other in items[start:position]:
                        if other != item:
                            cooccurrence[item, other] += 1.0
                            cooccurrence[other, item] += 1.0
            else:
                for first_index, first in enumerate(unique):
                    for second in unique[first_index + 1 :]:
                        cooccurrence[first, second] += 1.0
                        cooccurrence[second, first] += 1.0

        # Cosine-style normalisation with shrinkage: sim(i,j) = c_ij / (|i||j| + shrink)
        norms = np.sqrt(popularity)
        denominator = norms[:, None] * norms[None, :] + self.shrinkage
        denominator[denominator == 0] = 1.0
        similarity = cooccurrence / denominator
        np.fill_diagonal(similarity, 0.0)
        similarity[0, :] = 0.0
        similarity[:, 0] = 0.0

        self._similarity = similarity
        self._popularity = popularity
        return self

    # ------------------------------------------------------------------ #
    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self._similarity is not None and self._popularity is not None
        total_popularity = self._popularity.sum()
        fallback = (
            self._popularity / total_popularity if total_popularity > 0 else self._popularity
        )

        recent = [item for item in list(history)[-self.recency_window :] if item != 0]
        if not recent:
            scores = fallback.copy()
        else:
            scores = np.zeros_like(fallback)
            weight = 1.0
            for item in reversed(recent):
                scores += weight * self._similarity[item]
                weight *= self.recency_decay
            # Tiny popularity prior keeps the ranking total when a history
            # item has no neighbours at all.
            scores += 1e-6 * fallback
        scores = scores.astype(np.float64).copy()
        scores[0] = -np.inf
        return scores
