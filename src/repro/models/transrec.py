"""TransRec: translation-based sequential recommendation (He et al., 2017).

Each user is a translation vector ``t_u`` in the item embedding space; the
score of item ``j`` following item ``i`` for user ``u`` is

.. math::

    s(j \\mid u, i) = \\beta_j - \\lVert \\gamma_i + t_u - \\gamma_j \\rVert_2^2

Training uses the sequential BPR objective over consecutive item pairs.
Analytic gradients on NumPy (no autograd) for speed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry
from repro.utils.rng import as_rng

__all__ = ["TransRec"]


@model_registry.register("transrec")
class TransRec(SequentialRecommender):
    """Translation-based sequential recommender."""

    name = "TransRec"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 8,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.seed = seed
        self.item_embeddings: np.ndarray | None = None
        self.user_translations: np.ndarray | None = None
        self.global_translation: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None

    def fit(self, split: DatasetSplit) -> "TransRec":
        rng = as_rng(self.seed)
        corpus = split.corpus
        self.corpus = corpus
        vocab_size = corpus.vocab.size
        num_users = corpus.num_users

        self.item_embeddings = rng.normal(0.0, 0.1, size=(vocab_size, self.embedding_dim))
        self.user_translations = np.zeros((num_users, self.embedding_dim))
        self.global_translation = rng.normal(0.0, 0.1, size=self.embedding_dim)
        self.item_bias = np.zeros(vocab_size)

        transitions: list[tuple[int, int, int]] = []
        seen_by_user: dict[int, set[int]] = {}
        for sequence in split.train:
            seen_by_user.setdefault(sequence.user_index, set()).update(sequence.items)
            for previous, current in zip(sequence.items[:-1], sequence.items[1:]):
                transitions.append((sequence.user_index, previous, current))
        if not transitions:
            return self

        transitions_arr = np.asarray(transitions, dtype=np.int64)
        lr, reg = self.learning_rate, self.regularization
        for _ in range(self.epochs):
            order = rng.permutation(len(transitions_arr))
            for index in order:
                user, previous, positive = transitions_arr[index]
                negative = int(rng.integers(1, vocab_size))
                while negative in seen_by_user[user]:
                    negative = int(rng.integers(1, vocab_size))

                translation = self.user_translations[user] + self.global_translation
                anchor = self.item_embeddings[previous] + translation
                diff_pos = anchor - self.item_embeddings[positive]
                diff_neg = anchor - self.item_embeddings[negative]
                score_pos = self.item_bias[positive] - diff_pos @ diff_pos
                score_neg = self.item_bias[negative] - diff_neg @ diff_neg
                sigmoid = 1.0 / (1.0 + np.exp(score_pos - score_neg))

                # d(score_pos)/d(anchor) = -2*diff_pos ; d(score_neg)/d(anchor) = -2*diff_neg
                grad_anchor = sigmoid * (-2.0 * diff_pos + 2.0 * diff_neg)
                grad_pos_item = sigmoid * (2.0 * diff_pos)
                grad_neg_item = sigmoid * (-2.0 * diff_neg)

                self.item_embeddings[previous] += lr * (
                    grad_anchor - reg * self.item_embeddings[previous]
                )
                self.user_translations[user] += lr * (
                    grad_anchor - reg * self.user_translations[user]
                )
                self.global_translation += lr * (
                    grad_anchor - reg * self.global_translation
                )
                self.item_embeddings[positive] += lr * (
                    grad_pos_item - reg * self.item_embeddings[positive]
                )
                self.item_embeddings[negative] += lr * (
                    grad_neg_item - reg * self.item_embeddings[negative]
                )
                self.item_bias[positive] += lr * (sigmoid - reg * self.item_bias[positive])
                self.item_bias[negative] += lr * (-sigmoid - reg * self.item_bias[negative])
        return self

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.item_embeddings is not None
        assert self.item_bias is not None and self.global_translation is not None
        translation = self.global_translation.copy()
        if (
            user_index is not None
            and self.user_translations is not None
            and 0 <= user_index < self.user_translations.shape[0]
        ):
            translation = translation + self.user_translations[user_index]
        if history:
            anchor = self.item_embeddings[history[-1]] + translation
        else:
            anchor = translation
        differences = anchor[None, :] - self.item_embeddings
        scores = self.item_bias - np.sum(differences * differences, axis=1)
        scores[0] = -np.inf
        return scores
