"""Bayesian Personalized Ranking matrix factorisation (Rendle et al., 2012).

Trained with the classic BPR-Opt pairwise objective on (user, positive,
negative) triples sampled from the training sub-sequences.  Gradients are
analytic (two dot products), so this model runs on plain NumPy SGD rather
than the autograd engine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry
from repro.utils.rng import as_rng

__all__ = ["BPR"]


@model_registry.register("bpr")
class BPR(SequentialRecommender):
    """Matrix-factorisation recommender optimised for pairwise ranking."""

    name = "BPR"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 8,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        samples_per_epoch: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.samples_per_epoch = samples_per_epoch
        self.seed = seed
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "BPR":
        rng = as_rng(self.seed)
        corpus = split.corpus
        self.corpus = corpus
        num_users = corpus.num_users
        vocab_size = corpus.vocab.size

        scale = 0.1
        self.user_factors = rng.normal(0.0, scale, size=(num_users, self.embedding_dim))
        self.item_factors = rng.normal(0.0, scale, size=(vocab_size, self.embedding_dim))
        self.item_bias = np.zeros(vocab_size)

        user_positives: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_users
        positives_map: dict[int, set[int]] = {u: set() for u in range(num_users)}
        for sequence in split.train:
            positives_map[sequence.user_index].update(sequence.items)
        for user, positives in positives_map.items():
            user_positives[user] = np.asarray(sorted(positives), dtype=np.int64)

        eligible_users = [u for u in range(num_users) if len(user_positives[u]) > 0]
        total_interactions = sum(len(p) for p in user_positives)
        samples = self.samples_per_epoch or max(total_interactions, 1)

        lr, reg = self.learning_rate, self.regularization
        for _ in range(self.epochs):
            users = rng.choice(eligible_users, size=samples)
            for user in users:
                positives = user_positives[user]
                positive = int(positives[rng.integers(len(positives))])
                negative = int(rng.integers(1, vocab_size))
                while negative in positives_map[user]:
                    negative = int(rng.integers(1, vocab_size))

                user_vec = self.user_factors[user]
                pos_vec = self.item_factors[positive]
                neg_vec = self.item_factors[negative]
                x_uij = (
                    self.item_bias[positive]
                    - self.item_bias[negative]
                    + user_vec @ (pos_vec - neg_vec)
                )
                sigmoid = 1.0 / (1.0 + np.exp(x_uij))

                self.user_factors[user] += lr * (sigmoid * (pos_vec - neg_vec) - reg * user_vec)
                self.item_factors[positive] += lr * (sigmoid * user_vec - reg * pos_vec)
                self.item_factors[negative] += lr * (-sigmoid * user_vec - reg * neg_vec)
                self.item_bias[positive] += lr * (sigmoid - reg * self.item_bias[positive])
                self.item_bias[negative] += lr * (-sigmoid - reg * self.item_bias[negative])
        return self

    # ------------------------------------------------------------------ #
    def _user_vector(self, history: Sequence[int], user_index: int | None) -> np.ndarray:
        assert self.user_factors is not None and self.item_factors is not None
        if user_index is not None and 0 <= user_index < self.user_factors.shape[0]:
            return self.user_factors[user_index]
        if history:
            return self.item_factors[np.asarray(history, dtype=np.int64)].mean(axis=0)
        return np.zeros(self.embedding_dim)

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.item_factors is not None and self.item_bias is not None
        user_vec = self._user_vector(history, user_index)
        scores = self.item_factors @ user_vec + self.item_bias
        scores[0] = -np.inf
        return scores
