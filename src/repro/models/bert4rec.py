"""BERT4Rec: bidirectional self-attention with masked-item training (Sun et al., 2019).

A special ``[MASK]`` token (index ``vocab_size``) replaces randomly chosen
positions during training; the model reconstructs them from bidirectional
context.  At inference the mask token is appended after the history and the
model's distribution at that position scores the next item.  BERT4Rec is the
strongest evaluator candidate in Table II of the paper and is therefore the
default IRS evaluator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.data.padding import PAD_INDEX
from repro.models._sequence_utils import clip_history
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.nn import functional as F
from repro.nn.attention import NEG_INF
from repro.nn.layers import Dropout, Embedding, Module
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.utils.rng import spawn_rng

__all__ = ["Bert4Rec"]


class _Bert4RecModule(Module):
    """Bidirectional Transformer over item sequences with a [MASK] token."""

    def __init__(
        self,
        vocab_size: int,
        max_length: int,
        embedding_dim: int,
        num_heads: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 4)
        self.vocab_size = vocab_size
        self.mask_token = vocab_size  # one extra row in the embedding table
        self.item_embedding = Embedding(vocab_size + 1, embedding_dim, padding_idx=0, rng=rngs[0])
        self.position_embedding = Embedding(max_length, embedding_dim, rng=rngs[1])
        self.encoder = TransformerEncoder(
            num_layers, embedding_dim, num_heads, dropout=dropout, rng=rngs[2]
        )
        self.dropout = Dropout(dropout, rng=rngs[3])
        self.max_length = max_length

    def forward(self, items: np.ndarray) -> Tensor:
        batch, length = items.shape
        positions = np.tile(np.arange(length) % self.max_length, (batch, 1))
        x = self.item_embedding(items) + self.position_embedding(positions)
        x = self.dropout(x)
        # Padding positions must not be attended to by real positions.
        padding = items == PAD_INDEX
        mask = np.where(padding[:, None, None, :], NEG_INF, 0.0)
        hidden = self.encoder(x, mask=mask)
        # Tied output projection restricted to real items (exclude [MASK] row).
        weights = self.item_embedding.weight[np.arange(self.vocab_size)]
        return hidden.matmul(weights.transpose())


@model_registry.register("bert4rec")
class Bert4Rec(NeuralSequentialRecommender):
    """Bidirectional Transformer recommender trained with the cloze objective."""

    name = "Bert4Rec"

    def __init__(
        self,
        embedding_dim: int = 32,
        num_heads: int = 2,
        num_layers: int = 2,
        dropout: float = 0.1,
        mask_probability: float = 0.25,
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 2e-3,
        max_sequence_length: int = 40,
        seed: int = 0,
    ) -> None:
        super().__init__(
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            seed=seed,
        )
        self.embedding_dim = embedding_dim
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.dropout = dropout
        self.mask_probability = mask_probability

    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        return _Bert4RecModule(
            vocab_size=corpus.vocab.size,
            max_length=self.max_sequence_length + 1,
            embedding_dim=self.embedding_dim,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            dropout=self.dropout,
            rng=rng,
        )

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        items = batch.items.copy()
        real = items != PAD_INDEX
        # Cloze masking: always mask the final real position (matches how the
        # model is queried at inference) plus random interior positions.
        masked = (rng.random(items.shape) < self.mask_probability) & real
        last_positions = items.shape[1] - 1 - np.argmax(real[:, ::-1], axis=1)
        has_real = real.any(axis=1)
        masked[np.arange(items.shape[0])[has_real], last_positions[has_real]] = True

        targets = np.where(masked, batch.items, PAD_INDEX)
        corrupted = items.copy()
        corrupted[masked] = self.module.mask_token
        logits = self.module(corrupted)
        return F.cross_entropy(logits, targets, ignore_index=PAD_INDEX)

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        history = clip_history(history, self.max_sequence_length - 1)
        sequence = list(history) + [self.module.mask_token]
        items = np.asarray([sequence], dtype=np.int64)
        with no_grad():
            logits = self.module(items)
        scores = logits.data[0, -1].copy()
        scores[PAD_INDEX] = -np.inf
        return scores
