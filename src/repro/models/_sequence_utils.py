"""Shared helpers for sequence-model training targets."""

from __future__ import annotations

import numpy as np

from repro.data.padding import PAD_INDEX

__all__ = ["shifted_inputs_and_targets", "clip_history"]


def shifted_inputs_and_targets(items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build next-item training pairs from a padded batch.

    ``items`` has shape ``(batch, length)``.  Returns ``(inputs, targets)``
    where ``inputs = items[:, :-1]`` and ``targets = items[:, 1:]``; target
    positions whose *input* is padding are set to :data:`PAD_INDEX` so they
    are ignored by the loss (this avoids teaching the model to predict the
    first real item from a padding prefix).
    """
    inputs = items[:, :-1]
    targets = items[:, 1:].copy()
    targets[inputs == PAD_INDEX] = PAD_INDEX
    return inputs, targets


def clip_history(history, max_length: int) -> list[int]:
    """Keep only the ``max_length`` most recent items of a history."""
    history = list(history)
    if max_length > 0 and len(history) > max_length:
        return history[-max_length:]
    return history
