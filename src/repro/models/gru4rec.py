"""GRU4Rec: RNN-based sequential recommendation (Hidasi & Karatzoglou, 2018).

Architecture: item embedding -> single-layer GRU -> softmax over items.
Trained with next-item cross entropy on the training sub-sequences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.batching import SequenceBatch
from repro.data.interactions import SequenceCorpus
from repro.models._sequence_utils import clip_history, shifted_inputs_and_targets
from repro.models.base import NeuralSequentialRecommender, model_registry
from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Linear, Module
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import spawn_rng

__all__ = ["GRU4Rec"]


class _GRU4RecModule(Module):
    """Embedding + GRU + output projection."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        hidden_size: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        rngs = spawn_rng(rng, 3)
        self.item_embedding = Embedding(vocab_size, embedding_dim, padding_idx=0, rng=rngs[0])
        self.gru = GRU(embedding_dim, hidden_size, rng=rngs[1])
        self.dropout = Dropout(dropout, rng=rngs[2])
        self.output = Linear(hidden_size, vocab_size, rng=rngs[2])

    def forward(self, items: np.ndarray) -> Tensor:
        embedded = self.dropout(self.item_embedding(items))
        hidden_states, _ = self.gru(embedded)
        return self.output(hidden_states)


@model_registry.register("gru4rec")
class GRU4Rec(NeuralSequentialRecommender):
    """RNN-based next-item recommender."""

    name = "GRU4Rec"

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_size: int = 48,
        dropout: float = 0.1,
        epochs: int = 8,
        batch_size: int = 64,
        learning_rate: float = 5e-3,
        max_sequence_length: int = 40,
        seed: int = 0,
    ) -> None:
        super().__init__(
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            max_sequence_length=max_sequence_length,
            seed=seed,
        )
        self.embedding_dim = embedding_dim
        self.hidden_size = hidden_size
        self.dropout = dropout

    def _build(self, corpus: SequenceCorpus, rng: np.random.Generator) -> Module:
        return _GRU4RecModule(
            vocab_size=corpus.vocab.size,
            embedding_dim=self.embedding_dim,
            hidden_size=self.hidden_size,
            dropout=self.dropout,
            rng=rng,
        )

    def _loss(self, batch: SequenceBatch, rng: np.random.Generator) -> Tensor:
        inputs, targets = shifted_inputs_and_targets(batch.items)
        logits = self.module(inputs)
        return F.cross_entropy(logits, targets, ignore_index=0)

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self.module is not None
        history = clip_history(history, self.max_sequence_length)
        if not history:
            history = [0]
        items = np.asarray([history], dtype=np.int64)
        with no_grad():
            logits = self.module(items)
        scores = logits.data[0, -1].copy()
        scores[0] = -np.inf
        return scores
