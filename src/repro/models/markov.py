"""First-order Markov-chain recommender.

Not one of the paper's baselines, but a useful reference model: it captures
exactly the first-order sequential signal, trains instantly, and serves as a
deterministic evaluator in fast tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender, model_registry

__all__ = ["MarkovChainRecommender"]


@model_registry.register("markov")
class MarkovChainRecommender(SequentialRecommender):
    """Transition-count model ``P(next | last)`` with additive smoothing."""

    name = "Markov"

    def __init__(self, smoothing: float = 0.05) -> None:
        super().__init__()
        self.smoothing = smoothing
        self._transitions: np.ndarray | None = None
        self._popularity: np.ndarray | None = None

    def fit(self, split: DatasetSplit) -> "MarkovChainRecommender":
        self.corpus = split.corpus
        size = split.corpus.vocab.size
        transitions = np.zeros((size, size), dtype=np.float64)
        popularity = np.zeros(size, dtype=np.float64)
        for sequence in split.train:
            items = sequence.items
            for item in items:
                popularity[item] += 1.0
            for previous, current in zip(items[:-1], items[1:]):
                transitions[previous, current] += 1.0
        transitions[:, 0] = 0.0
        popularity[0] = 0.0
        self._transitions = transitions
        self._popularity = popularity
        return self

    def score_next(self, history: Sequence[int], user_index: int | None = None) -> np.ndarray:
        self._require_fitted()
        assert self._transitions is not None and self._popularity is not None
        popularity = self._popularity
        pop_norm = popularity / popularity.sum() if popularity.sum() > 0 else popularity
        if history:
            last = history[-1]
            row = self._transitions[last]
            row_sum = row.sum()
            if row_sum > 0:
                scores = (row + self.smoothing * pop_norm) / (row_sum + self.smoothing)
            else:
                scores = pop_norm.copy()
        else:
            scores = pop_norm.copy()
        scores = scores.astype(np.float64).copy()
        scores[0] = -np.inf
        return scores
