"""Online A/B harness: simulated cohorts against two tenants of one fleet.

The offline experiment driver (:mod:`repro.simulation.experiment`) calls
each framework's ``next_step`` directly.  This harness instead routes
every step of every session through a serving front-end's typed
``serve(request)`` surface — the same :class:`~repro.serve.loop.ServingLoop`,
:class:`~repro.replica.set.ReplicaSet` or
:class:`~repro.distributed.remote.RemoteReplicaSet` production traffic
uses — with each cohort's requests carrying its arm's tenant id.  What
comes back is both the experiment readout (interactive success uplift of
the treatment tenant over the control tenant, on identical simulated
users) and the serving readout (per-tenant p50/p95 latency against an
SLO), measured on the same requests.

Determinism contract: the simulated users draw from seeds derived only
from ``(seed, instance)`` — never the arm — so both cohorts face
identical users, and two runs of :func:`run_ab` against deterministic
tenants produce identical reports (the ``multi_tenant`` gate's
``ab_deterministic`` bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.serve.api import NextStepRequest
from repro.simulation.experiment import _profile_for_instance
from repro.simulation.metrics import SessionMetrics, aggregate_sessions
from repro.simulation.policies import ExcludeRejectedPolicy, ReplanningPolicy
from repro.simulation.session import InteractiveSession, SessionResult
from repro.simulation.user import SimulatedUser
from repro.utils.exceptions import ConfigurationError

__all__ = ["TenantArm", "ArmResult", "ABReport", "ServingTenantRecommender", "run_ab"]


class ServingTenantRecommender:
    """``next_step`` shim that answers through a serving front-end.

    Every call becomes one tenanted :class:`NextStepRequest` on the
    front-end's ``serve`` surface, so the session loop exercises
    admission, sharding, dispatch and (for remote fleets) the wire — and
    the response stamps double as the arm's latency sample stream.
    """

    def __init__(self, front_end, tenant: str) -> None:
        self.front_end = front_end
        self.tenant = tenant
        self.latencies_s: "list[float]" = []

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
    ) -> "int | None":
        response = self.front_end.serve(
            NextStepRequest(
                history=tuple(history),
                objective=int(objective),
                path_so_far=tuple(path_so_far),
                user_index=user_index,
                tenant=self.tenant,
            )
        ).result()
        self.latencies_s.append(response.latency_s)
        answer = response.answer
        return None if answer is None else int(answer)


@dataclass(frozen=True)
class TenantArm:
    """One cohort: a tenant id plus the label it reports under."""

    tenant: str
    label: "str | None" = None

    @property
    def name(self) -> str:
        return self.label or self.tenant


@dataclass(frozen=True)
class ArmResult:
    """One arm's experiment metrics and serving latencies."""

    arm: str
    tenant: str
    metrics: SessionMetrics
    requests: int
    latency_p50_ms: float
    latency_p95_ms: float
    slo_p95_ms: "float | None"

    @property
    def slo_met(self) -> "bool | None":
        if self.slo_p95_ms is None:
            return None
        return self.latency_p95_ms <= self.slo_p95_ms

    def as_row(self) -> dict:
        row = self.metrics.as_row(self.arm)
        row["tenant"] = self.tenant
        row["requests"] = self.requests
        row["p50_ms"] = round(self.latency_p50_ms, 3)
        row["p95_ms"] = round(self.latency_p95_ms, 3)
        if self.slo_p95_ms is not None:
            row["slo_p95_ms"] = self.slo_p95_ms
            row["slo_met"] = bool(self.slo_met)
        return row


@dataclass(frozen=True)
class ABReport:
    """The two arms plus the uplift of treatment over control."""

    control: ArmResult
    treatment: ArmResult

    @property
    def uplift(self) -> float:
        """Interactive-success-rate delta (treatment minus control)."""
        return (
            self.treatment.metrics.interactive_success_rate
            - self.control.metrics.interactive_success_rate
        )

    def rows(self) -> "list[dict]":
        return [self.control.as_row(), self.treatment.as_row()]

    def summary(self) -> dict:
        """The flat dict the CLI prints and the bench fingerprints."""
        return {
            "control": self.control.as_row(),
            "treatment": self.treatment.as_row(),
            "uplift": round(self.uplift, 4),
        }


def _percentile_ms(latencies_s: "list[float]", q: float) -> float:
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s, dtype=np.float64), q) * 1000.0)


def run_ab(
    front_end,
    control: "TenantArm | str",
    treatment: "TenantArm | str",
    instances: Sequence,
    evaluator,
    *,
    policy: "ReplanningPolicy | None" = None,
    max_steps: int = 12,
    patience: "int | None" = 3,
    use_corpus_traits: bool = True,
    seed: int = 0,
    slo_p95_ms: "float | None" = None,
    keep_sessions: bool = False,
) -> "ABReport | tuple[ABReport, dict[str, list[SessionResult]]]":
    """Drive two simulated cohorts through one serving fleet and compare.

    Parameters mirror
    :func:`~repro.simulation.experiment.run_interactive_experiment`; the
    difference is the first argument — a serving front-end with the typed
    ``serve`` surface — and that each arm is a *tenant* of that fleet
    rather than a model held in hand.
    """
    if not instances:
        raise ConfigurationError("run_ab needs at least one evaluation instance")
    control = TenantArm(control) if isinstance(control, str) else control
    treatment = TenantArm(treatment) if isinstance(treatment, str) else treatment
    if control.tenant == treatment.tenant:
        raise ConfigurationError(
            f"control and treatment must be different tenants (both {control.tenant!r})"
        )
    policy = policy or ExcludeRejectedPolicy()
    corpus = evaluator.model.corpus
    traits = corpus.user_traits if (use_corpus_traits and corpus is not None) else None

    results: "list[ArmResult]" = []
    all_sessions: "dict[str, list[SessionResult]]" = {}
    for arm in (control, treatment):
        shim = ServingTenantRecommender(front_end, arm.tenant)
        sessions: "list[SessionResult]" = []
        for instance_number, instance in enumerate(instances):
            profile = _profile_for_instance(instance, traits, patience)
            user = SimulatedUser(
                evaluator,
                profile=profile,
                # Arm-independent seeds: both cohorts face identical users.
                seed=seed * 100003 + instance_number,
            )
            session = InteractiveSession(shim, user, policy=policy, max_steps=max_steps)
            sessions.append(
                session.run(
                    instance.history, instance.objective, user_index=instance.user_index
                )
            )
        results.append(
            ArmResult(
                arm=arm.name,
                tenant=arm.tenant,
                metrics=aggregate_sessions(sessions),
                requests=len(shim.latencies_s),
                latency_p50_ms=_percentile_ms(shim.latencies_s, 50.0),
                latency_p95_ms=_percentile_ms(shim.latencies_s, 95.0),
                slo_p95_ms=slo_p95_ms,
            )
        )
        if keep_sessions:
            all_sessions[arm.name] = sessions

    report = ABReport(control=results[0], treatment=results[1])
    if keep_sessions:
        return report, all_sessions
    return report
