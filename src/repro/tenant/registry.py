"""The tenant registry: model zoo, admission scopes and batch grouping.

A :class:`TenantRegistry` binds tenant ids to served models
(:class:`TenantBinding` = adapter + optional per-tenant admission +
per-tenant latency metrics).  A :class:`~repro.serve.loop.ServingLoop`
constructed with a registry becomes a multi-tenant surface:

* **admission isolation** — a binding may carry its own
  :class:`~repro.serve.admission.AdmissionController` (scope
  ``tenant-<name>``, the same mechanism the distributed layer uses for
  ``worker-<i>`` scopes) bounding that tenant's *in-flight* requests
  fleet-wide; a noisy tenant's rejects land on its own counters and its
  own callers, never on a neighbour's;
* **batch grouping** — a drained micro-batch may mix tenants; the
  registry splits it per tenant, reads each tenant's model generation
  ONCE before planning (the torn-batch discipline, now per tenant), and
  scopes a tenant's planning failure to that tenant's futures only;
* **routing** — untenanted requests entering a tenanted loop are assigned
  deterministically by context-key hash, so the REPRO_TENANTS tier-1 leg
  exercises grouping on unmodified workloads.

:meth:`TenantRegistry.uniform` builds the degenerate registry (every
tenant shares one planner, no per-tenant admission) that leg uses;
real multi-tenant setups declare one model per tenant via :meth:`add`.
"""

from __future__ import annotations

import threading

from repro.obs.registry import MetricGroup, get_registry
from repro.obs.trace import BatchSink, use_sink
from repro.serve.admission import AdmissionController
from repro.shard.partition import stable_hash
from repro.tenant.adapters import KindAdapter, adapt
from repro.utils.exceptions import ConfigurationError, ServingError

__all__ = ["TenantBinding", "TenantRegistry"]

_LATENCY_COUNTERS = ("served", "failed", "wait_sum_s", "latency_sum_s")
_LATENCY_GAUGES = ("wait_max_s", "latency_max_s")


class TenantBinding:
    """One tenant: its adapter, admission scope and latency accounting."""

    def __init__(
        self,
        name: str,
        adapter: KindAdapter,
        max_inflight: "int | None" = None,
        admission_policy: "str | None" = None,
    ) -> None:
        self.name = name
        self.adapter = adapter
        registry = get_registry()
        #: registry namespace of this tenant's counters (auto-indexed, so
        #: replicated loops wrapping per-replica registries never collide)
        self.metrics_scope = registry.scope(f"serve.tenant.{name}")
        self._latency = MetricGroup(
            registry,
            f"{self.metrics_scope}.latency",
            counters=_LATENCY_COUNTERS,
            gauges=_LATENCY_GAUGES,
        )
        #: per-tenant admission: ``None`` = unbounded (the tenant rides the
        #: loop's own queue bounds only).  When set, it bounds the tenant's
        #: in-flight requests (queued + mid-drain) across every shard.
        self.admission: "AdmissionController | None" = None
        if max_inflight is not None or admission_policy is not None:
            self.admission = AdmissionController(
                max_queue_depth=max_inflight,
                policy=admission_policy,
                drain_deadline=0.0,
                scope=f"tenant-{name}",
                metrics_scope=f"{self.metrics_scope}.admission",
            )
        self._cond = threading.Condition()
        self._inflight = 0

    # ------------------------------------------------------------------ #
    def admit(self, shard: int) -> None:
        """Count one request against the tenant's in-flight bound.

        Raises :class:`~repro.utils.exceptions.QueueFullError` at the bound
        under ``reject``; blocks until a release under ``block``.  No-op
        for unbounded tenants.
        """
        if self.admission is None:
            return
        with self._cond:
            if self._inflight >= self.admission.max_queue_depth:
                # Raises under reject; returning means block-and-recheck
                # (timed waits guard against lost notifies on shutdown).
                self.admission.on_full(-1, self._inflight)
                self.admission.on_blocked()
                while self._inflight >= self.admission.max_queue_depth:
                    self._cond.wait(0.05)
            self._inflight += 1
        self.admission.on_admitted()

    def release(self) -> None:
        """One admitted request resolved (called as its future completes)."""
        if self.admission is None:
            return
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    # ------------------------------------------------------------------ #
    def observe(
        self,
        served: int,
        failed: int,
        wait_sum: float,
        wait_max: float,
        latency_sum: float,
        latency_max: float,
    ) -> None:
        """Fold one drained batch's per-tenant latency into the registry."""
        self._latency.record(
            add={
                "served": served,
                "failed": failed,
                "wait_sum_s": wait_sum,
                "latency_sum_s": latency_sum,
            },
            max_={"wait_max_s": wait_max, "latency_max_s": latency_max},
        )

    def stats(self) -> dict:
        """This tenant's served/latency/admission counters (atomic read)."""
        values = self._latency.values()
        served = values.get("served", 0)
        report = {
            "tenant": self.name,
            "kinds": list(self.adapter.kinds),
            "served": served,
            "failed": values.get("failed", 0),
            "latency": {
                "mean_ms": (
                    round(1000.0 * values.get("latency_sum_s", 0.0) / served, 3)
                    if served
                    else 0.0
                ),
                "max_ms": round(1000.0 * values.get("latency_max_s", 0.0), 3),
            },
        }
        if self.admission is not None:
            report["admission"] = self.admission.counters()
            report["max_inflight"] = self.admission.max_queue_depth
        return report


class TenantRegistry:
    """Tenant id -> :class:`TenantBinding`, plus batch grouping."""

    def __init__(self) -> None:
        self._bindings: "dict[str, TenantBinding]" = {}
        self._order: "list[str]" = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        model,
        max_inflight: "int | None" = None,
        admission_policy: "str | None" = None,
    ) -> TenantBinding:
        """Bind ``name`` to ``model`` (adapted via
        :func:`~repro.tenant.adapters.adapt`); optionally bound its
        in-flight depth with its own admission scope."""
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"tenant name must be a non-empty string, got {name!r}")
        if name in self._bindings:
            raise ConfigurationError(f"tenant {name!r} is already registered")
        binding = TenantBinding(
            name,
            adapt(model),
            max_inflight=max_inflight,
            admission_policy=admission_policy,
        )
        self._bindings[name] = binding
        self._order.append(name)
        return binding

    @classmethod
    def uniform(cls, planner, count: int, prefix: str = "tenant") -> "TenantRegistry":
        """``count`` tenants sharing one planner, no per-tenant bounds —
        the synthesized registry of the ``REPRO_TENANTS`` tier-1 leg."""
        if not isinstance(count, int) or count < 1:
            raise ConfigurationError(f"tenant count must be a positive integer, got {count!r}")
        registry = cls()
        for index in range(count):
            registry.add(f"{prefix}-{index}", planner)
        return registry

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> "tuple[str, ...]":
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._bindings

    def get(self, name: "str | None") -> TenantBinding:
        if name not in self._bindings:
            raise ServingError(
                f"unknown tenant {name!r}; registered tenants: "
                f"{', '.join(self._order) or '(none)'}"
            )
        return self._bindings[name]

    def bindings(self) -> "tuple[TenantBinding, ...]":
        return tuple(self._bindings[name] for name in self._order)

    def pin_generation(self, generation: int) -> None:
        """Stamp every versionable tenant model with the fleet generation.

        Replica hosts (in-process and forked workers) call this with the
        generation their fleet serves, so each tenant's answers carry the
        same ``served_generation`` tag the refit protocol bumps.  Models
        without a ``pin_generation`` hook (stateless graphs, recommenders
        reporting their own ``fit_generation``) are left alone.
        """
        for binding in self.bindings():
            pin = getattr(binding.adapter.model(), "pin_generation", None)
            if callable(pin):
                pin(serving_generation=generation)

    def assign(self, routing_key) -> str:
        """Deterministic tenant for an untenanted request (stable hash of
        its context key — identical across interpreters and reruns)."""
        return self._order[stable_hash(routing_key) % len(self._order)]

    def resolve(self, request) -> TenantBinding:
        """Binding for one envelope, assigning a tenant if it has none."""
        if request.tenant is None:
            request.tenant = self.assign(request.routing_key())
        return self.get(request.tenant)

    # ------------------------------------------------------------------ #
    # Batch grouping
    # ------------------------------------------------------------------ #
    def plan_batch(self, batch) -> "tuple[list, dict, dict]":
        """Answer one mixed-tenant micro-batch.

        Splits the batch per tenant (preserving submission order within
        each group), reads each tenant's ``serving_generation`` BEFORE its
        planning call, and confines a tenant's planning failure to its own
        requests.  Returns ``(answers, generations, failures)`` where
        ``answers[i]`` aligns with ``batch[i]``, ``generations`` maps
        tenant -> the generation stamped on its answers, and ``failures``
        maps batch index -> the exception to deliver on that future.
        """
        groups: "dict[str, list[int]]" = {}
        for index, request in enumerate(batch):
            groups.setdefault(request.tenant, []).append(index)
        answers: "list" = [None] * len(batch)
        generations: "dict[str, int | None]" = {}
        failures: "dict[int, BaseException]" = {}
        for tenant, indices in groups.items():
            binding = self.get(tenant)
            generations[tenant] = binding.adapter.serving_generation
            # Scope the trace sink to this tenant's slice of the batch:
            # batch-level spans emitted below the adapter (cache decisions,
            # beam depths, shard scatter/gather) land only on this tenant's
            # traces, never a drain neighbour's.
            sink = BatchSink([batch[index].trace for index in indices])
            try:
                with use_sink(sink if sink else None):
                    group_answers = binding.adapter.plan_for_requests(
                        [batch[index].plan_tuple() for index in indices]
                    )
            except BaseException as exc:  # noqa: BLE001 - delivered via the futures
                for index in indices:
                    failures[index] = exc
                continue
            for index, answer in zip(indices, group_answers):
                answers[index] = answer
        return answers, generations, failures

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Per-tenant counters, keyed by tenant id."""
        return {name: self._bindings[name].stats() for name in self._order}
