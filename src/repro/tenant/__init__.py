"""Multi-tenant serving: the model zoo behind one typed request API.

A :class:`~repro.tenant.registry.TenantRegistry` binds tenant ids to
served models — beam planners, :mod:`repro.models` recommenders,
knowledge-graph models — each behind a kind adapter
(:mod:`repro.tenant.adapters`) speaking the positional serving protocol,
with optional per-tenant admission scopes and per-tenant latency metrics.
The serving front-ends accept a registry and become multi-tenant surfaces;
:mod:`repro.tenant.ab` drives simulated user cohorts against two tenants
through one fleet and reports uplift and per-tenant latency SLOs.
"""

from repro.tenant.adapters import (
    KGAdapter,
    KindAdapter,
    PlannerAdapter,
    RecommenderAdapter,
    adapt,
)
from repro.tenant.registry import TenantBinding, TenantRegistry

__all__ = [
    "KindAdapter",
    "PlannerAdapter",
    "RecommenderAdapter",
    "KGAdapter",
    "adapt",
    "TenantBinding",
    "TenantRegistry",
]
