"""Kind adapters: one positional serving protocol over the whole model zoo.

The serving loop drains micro-batches of positional 6-tuples
(``kind, history, objective, path_so_far, user_index, max_length`` — see
:meth:`repro.serve.request.ServeRequest.plan_tuple`).  A tenant may bind
any model in the repo behind that protocol:

* :class:`PlannerAdapter` — a fitted
  :class:`~repro.core.beam.BeamSearchPlanner` (or the sharded executor
  wrapping one): serves ``next_step`` and ``plan_paths`` by delegating the
  whole batch to ``plan_for_requests``, so the wave-dedup and plan-cache
  machinery (and its bit-exactness contract) apply unchanged.
* :class:`RecommenderAdapter` — any
  :class:`~repro.models.base.SequentialRecommender`: serves ``rank``
  (``top_k`` with ``k`` from the objective slot and the exclusion set from
  the path slot) and ``next_step`` (objective-blind top-1 over unseen
  items — the A/B control arm).
* :class:`KGAdapter` — the knowledge-graph models (:mod:`repro.kg`):
  serves ``kg_path`` (shortest item path source→target) and, when built
  from a fitted :class:`~repro.kg.kg2inf.Kg2Inf`, ``next_step``.

:func:`adapt` sniffs a model's surface and picks the adapter, so a
:class:`~repro.tenant.registry.TenantRegistry` can be declared in terms of
plain models.

A batch is answered strictly in submission order; an unsupported kind
raises :class:`~repro.utils.exceptions.ServingError` for the *whole*
sub-batch (the registry scopes the failure to the offending tenant, so a
neighbour tenant's futures in the same drain still resolve).
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.exceptions import ConfigurationError, ServingError

__all__ = [
    "KindAdapter",
    "PlannerAdapter",
    "RecommenderAdapter",
    "KGAdapter",
    "adapt",
]


class KindAdapter:
    """Base adapter: per-tuple dispatch with a supported-kind gate."""

    #: the request kinds this adapter can answer
    kinds: "tuple[str, ...]" = ()

    @property
    def serving_generation(self) -> "int | None":
        """The model generation answers are computed at (``None`` when the
        underlying model does not version itself)."""
        return None

    def model(self):
        """The underlying model object (for refit plumbing and tests)."""
        raise NotImplementedError

    def _check_kinds(self, requests: Sequence[tuple]) -> None:
        for request in requests:
            kind = request[0]
            if kind not in self.kinds:
                raise ServingError(
                    f"{type(self).__name__} cannot serve {kind!r} requests "
                    f"(supported kinds: {', '.join(self.kinds)})"
                )

    def plan_for_requests(self, requests: Sequence[tuple]) -> list:
        """Answer one micro-batch of positional tuples, in order."""
        self._check_kinds(requests)
        return [self._answer(*request) for request in requests]

    def _answer(self, kind, history, objective, path_so_far, user_index, max_length):
        raise NotImplementedError


class PlannerAdapter(KindAdapter):
    """A beam planner behind the protocol — delegates the batch wholesale."""

    kinds = ("next_step", "plan_paths")

    def __init__(self, planner) -> None:
        if not hasattr(planner, "plan_for_requests"):
            raise ConfigurationError(
                "PlannerAdapter needs a planner with plan_for_requests() "
                "(e.g. a fitted BeamSearchPlanner)"
            )
        self.planner = planner

    @property
    def serving_generation(self) -> "int | None":
        return getattr(self.planner, "serving_generation", None)

    def model(self):
        return self.planner

    def plan_for_requests(self, requests: Sequence[tuple]) -> list:
        self._check_kinds(requests)
        # Whole-batch delegation (not per-tuple dispatch): the planner's
        # wave dedup and serving cache see the same batch shape as the
        # single-tenant loop, which is what keeps tenant-mode answers
        # bit-identical to the direct call.
        return self.planner.plan_for_requests(list(requests))


class RecommenderAdapter(KindAdapter):
    """Any sequential recommender behind the protocol.

    ``rank`` is the native workload (``top_k``).  ``next_step`` recommends
    the best *unseen* item with no knowledge of the objective — the
    objective-blind control arm the A/B harness measures IRS uplift
    against.
    """

    kinds = ("rank", "next_step")

    def __init__(self, recommender) -> None:
        if not hasattr(recommender, "top_k"):
            raise ConfigurationError(
                "RecommenderAdapter needs a recommender with top_k() "
                "(any repro.models SequentialRecommender)"
            )
        self.recommender = recommender

    @property
    def serving_generation(self) -> "int | None":
        generation = getattr(self.recommender, "fit_generation", None)
        return int(generation) if generation is not None else None

    def model(self):
        return self.recommender

    def _answer(self, kind, history, objective, path_so_far, user_index, max_length):
        if kind == "rank":
            return [
                int(item)
                for item in self.recommender.top_k(
                    list(history),
                    int(objective),
                    user_index=user_index,
                    exclude=list(path_so_far),
                )
            ]
        sequence = tuple(history) + tuple(path_so_far)
        ranked = self.recommender.top_k(
            list(sequence),
            1,
            user_index=user_index,
            exclude=[item for item in sequence if item != 0],
        )
        return int(ranked[0]) if ranked else None


class KGAdapter(KindAdapter):
    """The knowledge-graph models behind the protocol.

    Built from a fitted :class:`~repro.kg.kg2inf.Kg2Inf` it serves both
    kinds; built from a bare :class:`~repro.kg.graph.ItemKnowledgeGraph`
    it serves ``kg_path`` only.
    """

    def __init__(self, graph=None, planner=None) -> None:
        if graph is None and planner is not None:
            graph = getattr(planner, "graph", None)
        if graph is None or not hasattr(graph, "shortest_item_path"):
            raise ConfigurationError(
                "KGAdapter needs an ItemKnowledgeGraph (pass graph=..., or a "
                "fitted Kg2Inf whose .graph is built)"
            )
        self.graph = graph
        self.planner = planner
        self.kinds = ("kg_path", "next_step") if planner is not None else ("kg_path",)

    def model(self):
        return self.planner if self.planner is not None else self.graph

    def _answer(self, kind, history, objective, path_so_far, user_index, max_length):
        if kind == "kg_path":
            return [
                int(item)
                for item in self.graph.shortest_item_path(int(history[-1]), int(objective))
            ]
        step = self.planner.next_step(history, objective, path_so_far, user_index)
        return None if step is None else int(step)


def adapt(model) -> KindAdapter:
    """Wrap ``model`` in the adapter matching its surface.

    Accepts an already-built :class:`KindAdapter` unchanged; otherwise
    sniffs, in order: ``plan_for_requests`` (beam planner / sharded
    executor), ``shortest_item_path`` (bare knowledge graph),
    ``next_step`` + ``graph`` (Kg2Inf), ``top_k`` (sequential
    recommender).
    """
    if isinstance(model, KindAdapter):
        return model
    if hasattr(model, "plan_for_requests"):
        return PlannerAdapter(model)
    if hasattr(model, "shortest_item_path"):
        return KGAdapter(graph=model)
    if hasattr(model, "next_step") and getattr(model, "graph", None) is not None:
        return KGAdapter(planner=model)
    if hasattr(model, "top_k"):
        return RecommenderAdapter(model)
    raise ConfigurationError(
        f"cannot adapt {type(model).__name__!r} for tenant serving: expected a "
        "planner (plan_for_requests), a recommender (top_k), or a knowledge-"
        "graph model (shortest_item_path / a fitted Kg2Inf)"
    )
