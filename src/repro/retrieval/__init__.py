"""Two-stage retrieval: candidate generation in front of exact beam scoring.

Production recommender stacks never score the full catalogue per step —
a cheap first stage shortlists a few hundred candidates, and the expensive
model ranks *exactly* within the shortlist.  This package provides that
first stage for the IRN beam planner:

* :class:`~repro.retrieval.base.CandidateGenerator` — the protocol: fit on
  a corpus, then map ``(history, objective, user)`` to a per-context
  candidate index set (or ``None`` to fall back to the full vocabulary).
* :class:`~repro.retrieval.ann.EmbeddingANNGenerator` — cosine shortlist
  over :mod:`repro.embeddings` vectors with an IVF-style coarse index
  (exact brute force below a size threshold).
* :class:`~repro.retrieval.cooccurrence.CooccurrenceNeighborGenerator` —
  sparse co-occurrence neighbour expansion from the recent history and the
  objective.
* :class:`~repro.retrieval.base.FullVocabGenerator` — the identity
  generator; drives the pruned machinery with full coverage, which the
  scorer short-circuits to the exact path (the ``full_vocab_parity``
  contract bit).
* :mod:`~repro.retrieval.metrics` — overlap@k and plan-regret, the
  first-class approximation metrics of the scale bench.

Exactness contract: scoring over a candidate set yields logits *identical*
to slicing full-vocabulary scores at those candidates; pruning only
restricts which items may be proposed.  ``shard.topk``'s column-sharded
exact top-k remains the full-vocabulary oracle.
"""

from repro.retrieval.ann import EmbeddingANNGenerator
from repro.retrieval.base import (
    CandidateGenerator,
    FullVocabGenerator,
    retrieval_registry,
)
from repro.retrieval.config import make_generator, resolve_retrieval_spec
from repro.retrieval.cooccurrence import CooccurrenceNeighborGenerator
from repro.retrieval.metrics import overlap_at_k, path_score, plan_regret

__all__ = [
    "CandidateGenerator",
    "CooccurrenceNeighborGenerator",
    "EmbeddingANNGenerator",
    "FullVocabGenerator",
    "make_generator",
    "overlap_at_k",
    "path_score",
    "plan_regret",
    "resolve_retrieval_spec",
    "retrieval_registry",
]
