"""Resolving retrieval specs from CLI flags / environment / bench configs.

``--retrieval`` on ``repro-irs serve-sim`` (and the bench's generator
construction) speaks short names: ``none`` (exact planning, the default),
``full`` (full-vocabulary candidate sets — the parity oracle), ``ann``
and ``cooccurrence``.  The spec and shortlist-size knobs are rows of the
declarative resolver table in :mod:`repro.config`
(:func:`resolve_retrieval_spec` validates eagerly with a
:class:`~repro.utils.exceptions.ConfigurationError` naming the known
specs); :func:`make_generator` instantiates through the registry.
"""

from __future__ import annotations

from repro.config import RETRIEVAL_SPECS, resolve_candidate_k, resolve_retrieval_spec
from repro.retrieval.base import CandidateGenerator, retrieval_registry

__all__ = [
    "resolve_retrieval_spec",
    "resolve_candidate_k",
    "make_generator",
    "RETRIEVAL_SPECS",
]


def make_generator(
    spec: "str | None", num_candidates: int = 256, **kwargs
) -> "CandidateGenerator | None":
    """Build the generator for ``spec`` (``None``/``"none"`` -> no pruning)."""
    spec = resolve_retrieval_spec(spec)
    if spec == "none":
        return None
    return retrieval_registry.create(spec, num_candidates=num_candidates, **kwargs)
