"""Resolving retrieval specs from CLI flags / environment / bench configs.

``--retrieval`` on ``repro-irs serve-sim`` (and the bench's generator
construction) speaks short names: ``none`` (exact planning, the default),
``full`` (full-vocabulary candidate sets — the parity oracle), ``ann``
and ``cooccurrence``.  :func:`resolve_retrieval_spec` validates eagerly
with a :class:`~repro.utils.exceptions.ConfigurationError` naming the
known specs; :func:`make_generator` instantiates through the registry.
"""

from __future__ import annotations

from repro.retrieval.base import CandidateGenerator, retrieval_registry
from repro.utils.exceptions import ConfigurationError

__all__ = ["resolve_retrieval_spec", "make_generator", "RETRIEVAL_SPECS"]

RETRIEVAL_SPECS = ("none", "full", "ann", "cooccurrence")


def resolve_retrieval_spec(value: "str | None") -> str:
    """Normalise and validate a retrieval spec string (``None`` -> ``none``)."""
    spec = (value or "none").strip().lower()
    if spec not in RETRIEVAL_SPECS:
        raise ConfigurationError(
            f"unknown retrieval spec '{value}'; known: {', '.join(RETRIEVAL_SPECS)}"
        )
    return spec


def make_generator(
    spec: "str | None", num_candidates: int = 256, **kwargs
) -> "CandidateGenerator | None":
    """Build the generator for ``spec`` (``None``/``"none"`` -> no pruning)."""
    spec = resolve_retrieval_spec(spec)
    if spec == "none":
        return None
    return retrieval_registry.create(spec, num_candidates=num_candidates, **kwargs)
