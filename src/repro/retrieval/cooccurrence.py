"""Sparse co-occurrence neighbour-expansion candidate generation.

Fitting aggregates within-window co-occurrence counts into a scipy-free
CSR structure (shared counting front-end with
:mod:`repro.embeddings.cooccurrence` — no dense ``(V, V)`` is ever built)
and keeps, for every item, its ``neighbors_per_item`` strongest neighbours
in (count desc, index asc) order.

A query seeds a frontier with the recent history and the objective, then
expands it hop by hop through the stored neighbour lists, scoring each
touched item by its summed co-occurrence weight with the frontier.  The
final candidate set is the stable top ``num_candidates`` by (weight desc,
index asc) — deterministic for a fixed fit.  Contexts whose seeds have no
recorded neighbours return ``None`` (full-vocabulary fallback) rather than
an arbitrary shortlist.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.cooccurrence import _accumulate_pair_codes
from repro.retrieval.base import CandidateGenerator, retrieval_registry
from repro.shard.topk import stable_topk
from repro.utils.exceptions import ConfigurationError

__all__ = ["CooccurrenceNeighborGenerator"]


@retrieval_registry.register("cooccurrence")
class CooccurrenceNeighborGenerator(CandidateGenerator):
    """Top co-occurrence neighbours of the recent history and objective."""

    name = "cooccurrence"

    def __init__(
        self,
        num_candidates: int = 256,
        window: int = 3,
        neighbors_per_item: int = 32,
        expansion_hops: int = 2,
        history_window: int = 8,
    ) -> None:
        super().__init__(num_candidates=num_candidates)
        if window < 1 or neighbors_per_item < 1:
            raise ConfigurationError("window and neighbors_per_item must be >= 1")
        if expansion_hops < 1 or history_window < 1:
            raise ConfigurationError("expansion_hops and history_window must be >= 1")
        self.window = window
        self.neighbors_per_item = neighbors_per_item
        self.expansion_hops = expansion_hops
        self.history_window = history_window
        self._neighbors: "np.ndarray | None" = None  # (V, m) item indices, 0-padded
        self._weights: "np.ndarray | None" = None  # (V, m) co-occurrence counts

    def _config_extras(self) -> tuple:
        return (
            self.window,
            self.neighbors_per_item,
            self.expansion_hops,
            self.history_window,
        )

    def _fit(self, corpus, vocab_size: int) -> None:
        codes, counts = _accumulate_pair_codes(corpus, self.window, vocab_size)
        if codes.size == 0:
            raise ConfigurationError("corpus has no co-occurrences")
        rows = codes // vocab_size
        cols = codes % vocab_size
        m = self.neighbors_per_item
        # Keep each row's strongest m neighbours: sort all nonzeros by
        # (row asc, count desc, col asc) and take the first m per row.
        order = np.lexsort((cols, -counts, rows))
        sorted_rows = rows[order]
        sorted_cols = cols[order]
        sorted_counts = counts[order]
        row_start_count = np.bincount(sorted_rows, minlength=vocab_size)
        row_starts = np.zeros(vocab_size, dtype=np.int64)
        np.cumsum(row_start_count[:-1], out=row_starts[1:])
        within = np.arange(sorted_rows.size, dtype=np.int64) - row_starts[sorted_rows]
        keep = within < m
        neighbors = np.zeros((vocab_size, m), dtype=np.int64)
        weights = np.zeros((vocab_size, m), dtype=np.float64)
        neighbors[sorted_rows[keep], within[keep]] = sorted_cols[keep]
        weights[sorted_rows[keep], within[keep]] = sorted_counts[keep]
        self._neighbors = neighbors
        self._weights = weights

    def _candidates(self, history, objective, user_index):
        assert self._neighbors is not None and self._weights is not None
        vocab = self._neighbors.shape[0]
        recent = [int(item) for item in history[-self.history_window :]]
        seeds = {item for item in recent if 1 <= item < vocab}
        seeds.add(int(objective))
        frontier = np.fromiter(sorted(seeds), dtype=np.int64)

        scores = {}
        for hop in range(self.expansion_hops):
            hop_weight = 1.0 / (hop + 1)  # later hops count less
            neighbor_ids = self._neighbors[frontier].ravel()
            neighbor_weights = self._weights[frontier].ravel()
            live = neighbor_weights > 0
            neighbor_ids = neighbor_ids[live]
            neighbor_weights = neighbor_weights[live] * hop_weight
            if neighbor_ids.size == 0:
                break
            unique, inverse = np.unique(neighbor_ids, return_inverse=True)
            summed = np.bincount(
                inverse, weights=neighbor_weights, minlength=unique.size
            )
            next_frontier: "list[int]" = []
            for item, weight in zip(unique, summed):
                item = int(item)
                if item not in scores:
                    next_frontier.append(item)
                scores[item] = scores.get(item, 0.0) + float(weight)
            if len(scores) >= self.num_candidates:
                break
            frontier = np.asarray(next_frontier, dtype=np.int64)
            if frontier.size == 0:
                break

        if not scores:
            return None  # cold seeds: fall back to the full vocabulary
        items = np.fromiter(scores.keys(), dtype=np.int64)
        weights = np.fromiter(scores.values(), dtype=np.float64)
        item_order = np.argsort(items, kind="stable")
        items, weights = items[item_order], weights[item_order]
        k = min(self.num_candidates, items.size)
        # (weight desc, position asc) over index-sorted items == index-asc ties.
        top, _ = stable_topk(weights[None, :], k)
        return items[top[0]]
