"""Embedding ANN candidate generation: cosine shortlist with a coarse index.

The generator embeds every item with one of the :mod:`repro.embeddings`
models (PPMI+SVD by default — deterministic and, with the sparse solver,
fit-able at ``V = 10**6``; item2vec is available where its training cost is
acceptable), L2-normalises the vectors, and shortlists by cosine
similarity to a query vector built from the recent history and the
objective.

Small vocabularies use exact brute force over all item vectors.  Past
``coarse_threshold`` items an IVF-style coarse index takes over: a seeded
lightweight k-means (Lloyd iterations over chunked assignments) partitions
items into ``~sqrt(V)`` clusters, a query probes the ``nprobe`` nearest
centroids, and the shortlist is the exact cosine top-k *within the probed
members* — the classic two-level trade: recall is controlled by
``nprobe``, and the bench reports the resulting overlap@k/regret rather
than hiding it.

All selection uses :func:`repro.shard.topk.stable_topk`'s (value desc,
index asc) order, so candidate sets are deterministic for a fixed fit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.cooccurrence import CooccurrenceEmbedding
from repro.embeddings.item2vec import Item2Vec
from repro.retrieval.base import CandidateGenerator, retrieval_registry
from repro.shard.topk import stable_topk
from repro.utils.exceptions import ConfigurationError

__all__ = ["EmbeddingANNGenerator"]

_ASSIGN_CHUNK_ROWS = 1 << 14


def _normalize_rows(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        unit = np.where(norms > 0, vectors / norms, 0.0)
    return np.ascontiguousarray(unit, dtype=np.float64)


def _kmeans(
    vectors: np.ndarray, num_clusters: int, iterations: int, seed: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Seeded Lloyd k-means; returns (centroids, assignment)."""
    count = vectors.shape[0]
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(count, size=num_clusters, replace=False)].copy()
    assignment = np.zeros(count, dtype=np.int64)
    for _ in range(max(1, iterations)):
        for start in range(0, count, _ASSIGN_CHUNK_ROWS):
            chunk = vectors[start : start + _ASSIGN_CHUNK_ROWS]
            # Unit-norm rows: nearest-euclidean == highest dot product.
            assignment[start : start + chunk.shape[0]] = np.argmax(
                chunk @ centroids.T, axis=1
            )
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignment, vectors)
        counts = np.bincount(assignment, minlength=num_clusters).astype(np.float64)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
        centroids = _normalize_rows(centroids)
    return centroids, assignment


@retrieval_registry.register("ann")
class EmbeddingANNGenerator(CandidateGenerator):
    """Cosine shortlist over item-embedding vectors (IVF above a threshold)."""

    name = "ann"

    def __init__(
        self,
        num_candidates: int = 256,
        embedding: str = "cooccurrence",
        embedding_dim: int = 32,
        window: int = 3,
        nprobe: int = 8,
        coarse_threshold: int = 2048,
        num_clusters: "int | None" = None,
        kmeans_iterations: int = 4,
        history_window: int = 8,
        seed: int = 0,
        embedding_model=None,
    ) -> None:
        super().__init__(num_candidates=num_candidates)
        if embedding not in ("cooccurrence", "item2vec"):
            raise ConfigurationError(
                f"unknown embedding '{embedding}'; expected cooccurrence or item2vec"
            )
        if nprobe < 1 or history_window < 1:
            raise ConfigurationError("nprobe and history_window must be >= 1")
        self.embedding = embedding
        self.embedding_dim = embedding_dim
        self.window = window
        self.nprobe = nprobe
        self.coarse_threshold = coarse_threshold
        self.num_clusters = num_clusters
        self.kmeans_iterations = kmeans_iterations
        self.history_window = history_window
        self.seed = seed
        self._embedding_model = embedding_model
        self._vectors: "np.ndarray | None" = None
        self._centroids: "np.ndarray | None" = None
        self._cluster_members: "np.ndarray | None" = None
        self._cluster_indptr: "np.ndarray | None" = None

    def _config_extras(self) -> tuple:
        return (
            self.embedding,
            self.embedding_dim,
            self.window,
            self.nprobe,
            self.coarse_threshold,
            self.num_clusters,
            self.kmeans_iterations,
            self.history_window,
            self.seed,
        )

    # -- fitting -----------------------------------------------------------

    def _build_embedding(self):
        if self._embedding_model is not None:
            return self._embedding_model
        if self.embedding == "item2vec":
            return Item2Vec(embedding_dim=self.embedding_dim, window=self.window)
        return CooccurrenceEmbedding(
            embedding_dim=self.embedding_dim,
            window=self.window,
            solver="auto",
            seed=self.seed,
        )

    def _fit(self, corpus, vocab_size: int) -> None:
        model = self._build_embedding()
        try:
            vectors = model.vectors
        except Exception:
            vectors = model.fit(corpus).vectors
        if vectors.shape[0] != vocab_size:
            raise ConfigurationError(
                f"embedding rows ({vectors.shape[0]}) != vocab size ({vocab_size})"
            )
        self._vectors = _normalize_rows(np.asarray(vectors, dtype=np.float64))
        self._centroids = None
        self._cluster_members = None
        self._cluster_indptr = None
        num_items = vocab_size - 1
        if num_items > self.coarse_threshold:
            clusters = self.num_clusters or max(1, int(np.sqrt(num_items)))
            clusters = min(clusters, num_items)
            centroids, assignment = _kmeans(
                self._vectors[1:], clusters, self.kmeans_iterations, self.seed
            )
            order = np.argsort(assignment, kind="stable")
            self._centroids = centroids
            self._cluster_members = order.astype(np.int64) + 1  # back to item indices
            counts = np.bincount(assignment, minlength=clusters)
            indptr = np.zeros(clusters + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._cluster_indptr = indptr

    # -- querying ----------------------------------------------------------

    def _query_vector(
        self, history: Sequence[int], objective: int
    ) -> "np.ndarray | None":
        assert self._vectors is not None
        vocab = self._vectors.shape[0]
        recent = [int(item) for item in history[-self.history_window :]]
        anchors = [item for item in recent if 1 <= item < vocab]
        anchors.append(objective)
        query = self._vectors[anchors].mean(axis=0)
        norm = np.linalg.norm(query)
        if norm == 0:
            return None
        return query / norm

    def _probe_members(self, query: np.ndarray) -> np.ndarray:
        assert (
            self._centroids is not None
            and self._cluster_members is not None
            and self._cluster_indptr is not None
        )
        similarities = (self._centroids @ query)[None, :]
        nprobe = min(self.nprobe, self._centroids.shape[0])
        probe_order, _ = stable_topk(similarities, self._centroids.shape[0])
        member_chunks: "list[np.ndarray]" = []
        gathered = 0
        for rank, cluster in enumerate(probe_order[0]):
            if rank >= nprobe and gathered >= self.num_candidates:
                break
            lo, hi = self._cluster_indptr[cluster], self._cluster_indptr[cluster + 1]
            members = self._cluster_members[lo:hi]
            if members.size:
                member_chunks.append(members)
                gathered += members.size
        if not member_chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(member_chunks)

    def _candidates(self, history, objective, user_index):
        assert self._vectors is not None
        query = self._query_vector(history, objective)
        if query is None:
            return None  # nothing to anchor on: full-vocabulary fallback
        if self._centroids is None:
            members = np.arange(1, self._vectors.shape[0], dtype=np.int64)
        else:
            members = self._probe_members(query)
            if members.size == 0:
                return None
        similarities = (self._vectors[members] @ query)[None, :]
        k = min(self.num_candidates, members.size)
        top, _ = stable_topk(similarities, k)
        return members[top[0]]
