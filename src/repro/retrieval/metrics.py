"""First-class approximation metrics for candidate-pruned planning.

Candidate pruning is approximate by construction; these metrics make the
approximation *measured* instead of silent:

* :func:`overlap_at_k` — how much of the exact top-k (under
  :func:`repro.shard.topk.stable_topk`'s deterministic order) the
  candidate set covers.
* :func:`path_score` — a path's planner score (length-normalised sum of
  per-step log-probabilities plus the objective bonus) computed under
  EXACT full-vocabulary scoring, whatever planner produced the path.
* :func:`plan_regret` — exact-plan score minus pruned-plan score, both
  under :func:`path_score`.  Note beam search is itself heuristic, so a
  pruned plan can occasionally *beat* the exact planner's plan (negative
  regret); the bench reports the distribution rather than clamping it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.influence_path import mask_session_items
from repro.shard.topk import stable_topk

__all__ = ["overlap_at_k", "path_score", "plan_regret"]


def overlap_at_k(
    exact_scores: np.ndarray, candidate_items: "np.ndarray | None", k: int
) -> float:
    """Fraction of the exact top-``k`` covered by ``candidate_items``.

    ``exact_scores`` is one full-vocabulary score row (``-inf`` allowed for
    masked items); the reference top-k uses the planner's deterministic
    (value desc, index asc) order, so tie-heavy vocabularies score the
    same set the exact planner would expand.  ``None`` candidates mean a
    full-vocabulary fallback — overlap 1.0 by definition.
    """
    row = np.asarray(exact_scores, dtype=np.float64)
    if row.ndim != 1:
        raise ValueError(f"expected one score row, got shape {row.shape}")
    if candidate_items is None:
        return 1.0
    k = min(int(k), row.size)
    if k < 1:
        return 1.0
    top, top_values = stable_topk(row[None, :], k)
    finite = np.isfinite(top_values[0])
    reference = top[0][finite]
    if reference.size == 0:
        return 1.0
    members = np.isin(reference, np.asarray(candidate_items, dtype=np.int64))
    return float(members.sum() / reference.size)


def _log_softmax_rows(scores: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax with ``-inf`` masking (mirrors the planner's)."""
    finite = np.isfinite(scores)
    any_finite = finite.any(axis=1)
    row_max = np.max(np.where(finite, scores, -np.inf), axis=1, initial=-np.inf)
    with np.errstate(divide="ignore", invalid="ignore"):
        shifted = scores - np.where(any_finite, row_max, 0.0)[:, None]
        exp = np.where(finite, np.exp(shifted), 0.0)
        log_norm = np.log(exp.sum(axis=1))
        return np.where(finite, shifted - log_norm[:, None], -np.inf)


def path_score(
    backbone,
    history: Sequence[int],
    objective: int,
    path: Sequence[int],
    user_index: "int | None" = None,
    objective_bonus: float = 1.0,
) -> float:
    """Planner score of ``path`` under exact full-vocabulary scoring.

    Replays the path step by step: each step's log-probability is the
    masked log-softmax over the backbone's EXACT scores at that prefix
    (one fused batched call covers all prefixes), summed, length-
    normalised, plus ``objective_bonus`` if the path reaches the
    objective.  Because scoring is exact regardless of how the path was
    planned, pruned and exact plans are directly comparable.  Empty paths
    score ``-inf``.
    """
    path = [int(item) for item in path]
    if not path:
        return float("-inf")
    history = [int(item) for item in history]
    objective = int(objective)
    prefixes = [history + path[:step] for step in range(len(path))]
    objectives = [objective] * len(path)
    scores = np.asarray(
        backbone.score_with_objective_batch(
            prefixes, objectives, [user_index] * len(path)
        ),
        dtype=np.float64,
    ).copy()
    mask_session_items(scores, prefixes, objectives)
    log_probs = _log_softmax_rows(scores)
    total = float(log_probs[np.arange(len(path)), path].sum())
    reached = objective in path
    return total / len(path) + (objective_bonus if reached else 0.0)


def plan_regret(
    backbone,
    history: Sequence[int],
    objective: int,
    exact_path: Sequence[int],
    pruned_path: Sequence[int],
    user_index: "int | None" = None,
    objective_bonus: float = 1.0,
) -> float:
    """Exact-plan score minus pruned-plan score (both scored exactly).

    ``nan`` when either plan is empty (no comparable score exists).
    """
    if not len(exact_path) or not len(pruned_path):
        return float("nan")
    exact = path_score(
        backbone, history, objective, exact_path, user_index, objective_bonus
    )
    pruned = path_score(
        backbone, history, objective, pruned_path, user_index, objective_bonus
    )
    return exact - pruned
