"""The candidate-generator protocol behind two-stage retrieval.

A generator is fitted once on a corpus and then queried per planning
context.  :meth:`CandidateGenerator.candidates` returns a sorted, unique
``int64`` index array that ALWAYS contains the objective (a candidate set
that cannot reach the objective would make the planner structurally unable
to complete a path), or ``None`` to signal a full-vocabulary fallback —
e.g. when the context gives the generator nothing to anchor on.  Planners
count fallbacks in the ``core.retrieval`` metric scope.

Cache-key discipline: :meth:`retrieval_key` is a hashable tuple combining
the generator's configuration with its ``fit_generation``; the beam
planner mixes it into every plan/step cache key, so pruned plans can never
alias exact plans (or plans pruned under a different generator fit).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError, NotFittedError
from repro.utils.registry import Registry

__all__ = ["CandidateGenerator", "FullVocabGenerator", "retrieval_registry"]

#: name -> generator class, for CLI / bench construction by short name.
retrieval_registry: "Registry[CandidateGenerator]" = Registry("candidate generator")


class CandidateGenerator(abc.ABC):
    """Base class: fit on a corpus, emit per-context candidate sets."""

    name = "candidates"

    def __init__(self, num_candidates: int = 256) -> None:
        if num_candidates < 1:
            raise ConfigurationError(
                f"num_candidates must be >= 1, got {num_candidates}"
            )
        self.num_candidates = int(num_candidates)
        self.vocab_size: int | None = None
        self.fit_generation = 0

    # -- fitting -----------------------------------------------------------

    def fit(self, corpus) -> "CandidateGenerator":
        """Fit on any corpus-like object (``vocab.size`` + ``user_sequences``)."""
        vocab_size = int(corpus.vocab.size)
        if vocab_size < 2:
            raise ConfigurationError("corpus has no real items")
        self._fit(corpus, vocab_size)
        self.vocab_size = vocab_size
        self.fit_generation += 1
        return self

    @abc.abstractmethod
    def _fit(self, corpus, vocab_size: int) -> None:
        """Subclass hook: build the retrieval index."""

    @property
    def is_fitted(self) -> bool:
        return self.vocab_size is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted first")

    # -- querying ----------------------------------------------------------

    def candidates(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None" = None,
    ) -> "np.ndarray | None":
        """Sorted unique candidate indices for one context, or ``None``.

        ``None`` means "no shortlist for this context" — the caller falls
        back to full-vocabulary scoring.  When an array is returned it is
        guaranteed sorted, unique, within ``[1, vocab_size)`` and to
        contain ``objective``.
        """
        self._require_fitted()
        assert self.vocab_size is not None
        objective = int(objective)
        if not 1 <= objective < self.vocab_size:
            raise ConfigurationError(
                f"objective {objective} outside [1, {self.vocab_size})"
            )
        raw = self._candidates(history, objective, user_index)
        if raw is None:
            return None
        cands = np.asarray(raw, dtype=np.int64).ravel()
        cands = cands[(cands >= 1) & (cands < self.vocab_size)]
        return np.unique(np.append(cands, objective))

    @abc.abstractmethod
    def _candidates(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None",
    ) -> "np.ndarray | None":
        """Subclass hook: raw candidate indices (any order, dupes allowed)."""

    # -- cache keys --------------------------------------------------------

    def config_key(self) -> tuple:
        """Hashable configuration identity (stable across refits)."""
        return (self.name, self.num_candidates) + self._config_extras()

    def _config_extras(self) -> tuple:
        """Subclass hook: extra hashable config fields for the cache key."""
        return ()

    def retrieval_key(self) -> tuple:
        """Config + fit-generation identity mixed into planner cache keys."""
        return (self.config_key(), self.fit_generation)


@retrieval_registry.register("full")
class FullVocabGenerator(CandidateGenerator):
    """The identity generator: every real item is always a candidate.

    Exists for the ``full_vocab_parity`` contract: driving the pruned
    planning machinery with full coverage must produce plans bit-identical
    to exact planning (the scorer short-circuits full-coverage candidate
    sets to the unrestricted projection).
    """

    name = "full"

    def __init__(self, num_candidates: int = 1) -> None:
        # num_candidates is irrelevant here; accept and ignore the knob so
        # the registry can construct every generator uniformly.
        super().__init__(num_candidates=max(1, num_candidates))

    def _fit(self, corpus, vocab_size: int) -> None:
        self._all_items = np.arange(1, vocab_size, dtype=np.int64)

    def _candidates(self, history, objective, user_index):
        return self._all_items
