"""Knowledge-graph influence paths: Pf2Inf vs. Kg2Inf vs. IRN.

Run with::

    python examples/knowledge_graph_paths.py

The paper's path-finding baseline (Pf2Inf) works on a bare item co-occurrence
graph and its future work suggests a knowledge-graph extension.  This example
builds the item/genre knowledge graph, runs the subgraph-expansion
recommender (Kg2Inf) next to Pf2Inf-Dijkstra and IRN on the same evaluation
instances, and prints the offline IRS metrics plus a beyond-accuracy path
quality report (genre smoothness, diversity, novelty, coverage).
"""

from __future__ import annotations

from repro.analysis import framework_path_report
from repro.core import IRN, Pf2Inf
from repro.data import build_corpus, split_corpus, synthetic_movielens
from repro.evaluation import IRSEvaluationProtocol, IRSEvaluator
from repro.experiments import format_table
from repro.kg import ItemKnowledgeGraph, Kg2Inf
from repro.models import MarkovChainRecommender


def main() -> None:
    # 1. Data and the shared evaluation protocol.
    dataset = synthetic_movielens(scale=0.5, seed=0)
    corpus = build_corpus(dataset, min_interactions=5)
    split = split_corpus(corpus, l_min=10, l_max=25, seed=0)
    print("Corpus:", corpus.statistics().as_row())

    evaluator = IRSEvaluator(MarkovChainRecommender().fit(split))
    protocol = IRSEvaluationProtocol(split, evaluator, max_length=15, max_instances=40, seed=1)

    # 2. The knowledge graph and the three frameworks under comparison.
    graph = ItemKnowledgeGraph().build(corpus, sequences=[seq.items for seq in split.train])
    print(
        f"Knowledge graph: {graph.num_item_nodes} item nodes, "
        f"{graph.num_genre_nodes} genre nodes, {graph.graph.number_of_edges()} edges"
    )
    frameworks = {
        "Pf2Inf Dijkstra": Pf2Inf(method="dijkstra").fit(split),
        "Kg2Inf": Kg2Inf(graph=graph, smoothness_weight=0.5).fit(split),
        "IRN": IRN(embedding_dim=24, num_layers=2, num_heads=2, epochs=8, seed=0).fit(split),
    }

    # 3. Offline IRS metrics (the Table III protocol).
    rows = [protocol.evaluate(framework, name=name).as_row() for name, framework in frameworks.items()]
    print("\nOffline IRS metrics:")
    print(format_table(rows))

    # 4. Beyond-accuracy path quality.
    records = {name: protocol.generate_records(framework) for name, framework in frameworks.items()}
    print("\nPath quality report:")
    print(format_table(framework_path_report(records, corpus)))

    # 5. One concrete Kg2Inf path with the genres it walks through.
    instance = protocol.instances[0]
    path = frameworks["Kg2Inf"].generate_path(
        list(instance.history), instance.objective, max_length=15
    )
    print(
        f"\nKg2Inf path toward {corpus.vocab.item(instance.objective)} "
        f"{corpus.item_genres(instance.objective)}:"
    )
    for step, item in enumerate(path, start=1):
        marker = " <-- objective" if item == instance.objective else ""
        print(f"  step {step:2d}: {corpus.vocab.item(item)} {corpus.item_genres(item)}{marker}")


if __name__ == "__main__":
    main()
