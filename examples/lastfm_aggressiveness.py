"""Lastfm scenario: how aggressive should the influential recommender be?

Reproduces the Figure 7 analysis on the Lastfm-like corpus: sweep the
candidate-set size k of a Rec2Inf baseline and the objective mask weight w_t
of IRN, reporting the success rate and smoothness (log PPL) at every level.
This is the analysis an application owner would run to pick an operating
point on the reach-vs-smoothness trade-off.

Run with::

    python examples/lastfm_aggressiveness.py            # few-minute run
    python examples/lastfm_aggressiveness.py --fast     # smoke run (seconds)
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentConfig, ExperimentPipeline, format_table
from repro.experiments.figures import figure7_aggressiveness, figure8_impressionability_distribution


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run the seconds-scale smoke profile")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (
        ExperimentConfig.fast("lastfm", seed=args.seed)
        if args.fast
        else ExperimentConfig.default("lastfm", seed=args.seed)
    )
    pipeline = ExperimentPipeline(config)
    print("Pipeline:", pipeline.summary())

    sweep = figure7_aggressiveness(pipeline)
    for name, rows in sweep.items():
        print()
        print(format_table(rows, title=f"Aggressiveness sweep (Figure 7) - {name}"))

    distribution = figure8_impressionability_distribution(pipeline)
    print(
        "\nLearned impressionability r_u: "
        f"mean={distribution['mean']:.3f} std={distribution['std']:.3f}"
    )
    if "correlation_with_ground_truth" in distribution:
        print(
            "Correlation with the synthetic generator's latent impressionability: "
            f"{distribution['correlation_with_ground_truth']:.3f}"
        )


if __name__ == "__main__":
    main()
