"""Quickstart: train IRN on a small synthetic corpus and generate influence paths.

Run with::

    python examples/quickstart.py

It takes well under a minute on a laptop CPU: the script builds a small
MovieLens-like synthetic corpus, trains the Influential Recommender Network,
and then walks one user from their current interests toward a randomly chosen
objective item, printing the influence path with genre annotations.
"""

from __future__ import annotations

from repro.core import IRN
from repro.data import build_corpus, split_corpus, synthetic_movielens
from repro.evaluation import IRSEvaluator, sample_objectives
from repro.models import MarkovChainRecommender


def main() -> None:
    # 1. Data: a small MovieLens-flavoured synthetic corpus (§IV-A).
    dataset = synthetic_movielens(scale=0.5, seed=0)
    corpus = build_corpus(dataset, min_interactions=5)
    split = split_corpus(corpus, l_min=10, l_max=25, seed=0)
    print("Corpus:", corpus.statistics().as_row())

    # 2. Model: the Influential Recommender Network (§III-D).
    irn = IRN(
        embedding_dim=24,
        num_layers=2,
        num_heads=2,
        epochs=8,
        item2vec_init=True,
        max_sequence_length=26,
        seed=0,
    )
    irn.fit(split)

    # 3. A cheap evaluator to report how plausible each step is (§IV-B3).
    evaluator = IRSEvaluator(MarkovChainRecommender().fit(split))

    # 4. Generate an influence path for the first few test users (Algorithm 1).
    instances = sample_objectives(split, seed=1, max_instances=3)
    for instance in instances:
        history = list(instance.history)[-20:]
        path = irn.generate_path(
            history, instance.objective, user_index=instance.user_index, max_length=15
        )
        reached = "reached" if instance.objective in path else "not reached"
        print(f"\nUser {corpus.user_ids[instance.user_index]}"
              f"  objective={corpus.vocab.item(instance.objective)}"
              f" {corpus.item_genres(instance.objective)}  ({reached})")
        print(f"  last history item: {corpus.vocab.item(history[-1])} {corpus.item_genres(history[-1])}")
        for step, item in enumerate(path, start=1):
            probability = evaluator.probability(item, history + path[: step - 1])
            marker = " <-- objective" if item == instance.objective else ""
            print(
                f"  step {step:2d}: {corpus.vocab.item(item)} "
                f"{corpus.item_genres(item)}  P(accept)={probability:.3f}{marker}"
            )


if __name__ == "__main__":
    main()
