"""Leading a user toward a whole category instead of a single item.

Run with::

    python examples/category_objective.py

The paper's future work proposes objectives beyond a single item (a
collection, a category, a topic).  This example trains IRN on a Lastfm-like
synthetic corpus and steers listeners toward an entire *genre*: at every step
the concrete target is the genre member closest to what the user has just
consumed, and success means reaching any member of the genre.
"""

from __future__ import annotations

import numpy as np

from repro.core import IRN, CategoryObjective, ItemDistance, generate_path_to_set
from repro.core.objectives import set_success_rate
from repro.data import build_corpus, split_corpus, synthetic_lastfm
from repro.evaluation import sample_objectives


def main() -> None:
    # 1. Data: a Lastfm-flavoured corpus (listening sessions, music genres).
    dataset = synthetic_lastfm(scale=0.6, seed=0)
    corpus = build_corpus(dataset, min_interactions=5, merge_consecutive=True)
    split = split_corpus(corpus, l_min=8, l_max=20, seed=0)
    print("Corpus:", corpus.statistics().as_row())
    print("Genres:", ", ".join(corpus.genre_names))

    # 2. Model and item distances.
    irn = IRN(embedding_dim=24, num_layers=2, num_heads=2, epochs=8, seed=0).fit(split)
    distance = ItemDistance.from_genres(corpus)

    # 3. Steer every test user toward each genre; report per-genre success.
    instances = sample_objectives(split, seed=3, max_instances=40)
    print(f"\n{'genre':<16} {'members':>8} {'SR15':>8} {'mean path':>10}")
    for genre in corpus.genre_names:
        objective = CategoryObjective(genre, min_interactions=3)
        records = [
            generate_path_to_set(
                irn,
                instance.history,
                objective,
                corpus,
                distance=distance,
                user_index=instance.user_index,
                max_length=15,
            )
            for instance in instances
        ]
        success = set_success_rate(records)
        mean_length = float(np.mean([len(record.path) for record in records]))
        print(f"{genre:<16} {len(objective.members(corpus)):>8} {success:>8.3f} {mean_length:>10.1f}")

    # 4. Show one concrete path with its per-step resolved targets.
    genre = corpus.genre_names[0]
    objective = CategoryObjective(genre, min_interactions=3)
    instance = instances[0]
    record = generate_path_to_set(
        irn,
        instance.history,
        objective,
        corpus,
        distance=distance,
        user_index=instance.user_index,
        max_length=15,
    )
    print(f"\nPath toward the '{genre}' category ({'reached' if record.reached else 'not reached'}):")
    for step, (item, target) in enumerate(zip(record.path, record.resolved_targets), start=1):
        marker = " <-- member reached" if item in record.members else ""
        print(
            f"  step {step:2d}: {corpus.vocab.item(item)} {corpus.item_genres(item)} "
            f"(steering toward {corpus.vocab.item(target)}){marker}"
        )


if __name__ == "__main__":
    main()
