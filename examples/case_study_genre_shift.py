"""Case study: watch IRN shift a user's genre step by step (Table VII).

For a handful of test users, print the influence path IRN generates toward a
random objective item together with each item's genres and the evaluator's
acceptance probability — the qualitative "Action -> ... -> Comedy" story of
Table VII in the paper.

Run with::

    python examples/case_study_genre_shift.py --fast
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentConfig, ExperimentPipeline, format_table
from repro.experiments.tables import table7_case_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run the seconds-scale smoke profile")
    parser.add_argument("--users", type=int, default=3, help="number of case studies to print")
    parser.add_argument("--dataset", choices=["movielens", "lastfm"], default="movielens")
    args = parser.parse_args()

    config = (
        ExperimentConfig.fast(args.dataset) if args.fast else ExperimentConfig.default(args.dataset)
    )
    pipeline = ExperimentPipeline(config)
    print("Pipeline:", pipeline.summary())

    for index in range(args.users):
        rows = table7_case_study(pipeline, instance_index=index)
        print()
        print(format_table(rows, title=f"Influence path case study #{index + 1}"))


if __name__ == "__main__":
    main()
