"""MovieLens scenario: compare IRS frameworks on the MovieLens-like corpus.

Reproduces a scaled-down slice of Table III: Pf2Inf (Dijkstra), the vanilla
and Rec2Inf adaptations of a sequential recommender, and IRN, all evaluated
with the same protocol (random objectives, maximum path length M=20, metrics
SR / IoI / IoR / log PPL from a trained evaluator).

Run with::

    python examples/movielens_comparison.py            # few-minute run
    python examples/movielens_comparison.py --fast     # smoke run (seconds)
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentConfig, ExperimentPipeline, format_table, tables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="run the seconds-scale smoke profile")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (
        ExperimentConfig.fast("movielens", seed=args.seed)
        if args.fast
        else ExperimentConfig.default("movielens", seed=args.seed)
    )
    pipeline = ExperimentPipeline(config)
    print("Pipeline:", pipeline.summary())

    print()
    print(format_table(tables.table2_evaluator_selection(pipeline), title="Evaluator selection (Table II)"))
    print()
    print(format_table(tables.table3_main_comparison(pipeline), title="Main comparison (Table III)"))
    print()
    print(format_table(tables.table5_mask_ablation(pipeline), title="PIM ablation (Table V)"))


if __name__ == "__main__":
    main()
