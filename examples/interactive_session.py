"""Interactive influence sessions: users who can say "no".

Run with::

    python examples/interactive_session.py

The paper assumes the user passively accepts every recommended item; its
conclusion lists stepwise user dynamics as future work.  This example runs
that loop: a simulated user (driven by an IRS evaluator and a per-user
impressionability profile) accepts or rejects every recommendation, and the
recommender replans around rejections.  Two frameworks face the same users:
IRN and the Rec2Inf adaptation of a Markov-chain backbone.
"""

from __future__ import annotations

from repro.core import IRN, Rec2Inf
from repro.data import build_corpus, split_corpus, synthetic_movielens
from repro.evaluation import IRSEvaluator, sample_objectives
from repro.experiments import format_table
from repro.models import MarkovChainRecommender
from repro.simulation import (
    AggressivenessBackoffPolicy,
    ExcludeRejectedPolicy,
    run_interactive_experiment,
)


def main() -> None:
    # 1. Data and models (small synthetic corpus, quick training).
    dataset = synthetic_movielens(scale=0.5, seed=0)
    corpus = build_corpus(dataset, min_interactions=5)
    split = split_corpus(corpus, l_min=10, l_max=25, seed=0)
    print("Corpus:", corpus.statistics().as_row())

    evaluator = IRSEvaluator(MarkovChainRecommender().fit(split))
    irn = IRN(embedding_dim=24, num_layers=2, num_heads=2, epochs=8, seed=0).fit(split)
    rec2inf = Rec2Inf(MarkovChainRecommender(), candidate_k=20).fit(split)
    frameworks = {"IRN": irn, "Rec2Inf Markov": rec2inf}

    # 2. The same simulated users face every framework.
    instances = sample_objectives(split, seed=2, max_instances=30)

    print("\n--- exclude-rejected policy (replan around rejections) ---")
    comparison = run_interactive_experiment(
        frameworks,
        instances,
        evaluator,
        policy=ExcludeRejectedPolicy(),
        max_steps=15,
        patience=3,
        seed=0,
    )
    print(format_table(comparison.rows()))

    print("\n--- backoff policy (lower aggressiveness after a rejection) ---")
    comparison = run_interactive_experiment(
        frameworks,
        instances,
        evaluator,
        policy=AggressivenessBackoffPolicy(backoff=0.5),
        max_steps=15,
        patience=3,
        seed=0,
    )
    print(format_table(comparison.rows()))

    # 3. Zoom into one session to see the accept/reject dynamics.
    from repro.simulation import InteractiveSession, SimulatedUser

    instance = instances[0]
    user = SimulatedUser(evaluator, seed=7)
    session = InteractiveSession(irn, user, max_steps=15).run(
        instance.history, instance.objective, user_index=instance.user_index
    )
    print(
        f"\nOne IRN session (objective {corpus.vocab.item(instance.objective)}, "
        f"{'reached' if session.reached else 'not reached'}):"
    )
    for step in session.steps:
        verdict = "accepted" if step.accepted else "rejected"
        print(
            f"  step {step.step + 1:2d}: {corpus.vocab.item(step.item)} "
            f"P(accept)={step.acceptance_probability:.3f}  -> {verdict}"
        )


if __name__ == "__main__":
    main()
