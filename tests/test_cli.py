"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.utils.exceptions import ConfigurationError


class TestParser:
    def test_requires_artefact(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table6"])
        assert args.dataset == "movielens"
        assert args.profile == "default"

    def test_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_table6_runs_without_training(self, capsys):
        assert main(["table6", "--profile", "fast"]) == 0
        out = capsys.readouterr().out
        assert "w_t" in out

    def test_table1_fast_profile(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        code = main(
            ["table1", "--profile", "fast", "--scale", "0.2", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        assert "interactions" in output.read_text()

    def test_figure8_fast_profile(self, capsys):
        assert main(["figure8", "--profile", "fast", "--scale", "0.2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "mean=" in out

    def test_ablation_decoding_fast_profile(self, capsys):
        assert main(["ablation-decoding", "--profile", "fast", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "greedy (Algorithm 1)" in out
        assert "beam search" in out

    def test_extension_category_fast_profile(self, capsys):
        assert main(["ext-category", "--profile", "fast", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "category:" in out

    def test_new_artefacts_listed_in_parser(self):
        parser = build_parser()
        for artefact in ["ablation-embedding", "ext-interactive", "ext-kg", "ext-quality"]:
            args = parser.parse_args([artefact])
            assert args.artefact == artefact


class TestScalingFlags:
    """Satellite of the sharding PR: the scaling knobs are CLI-visible and
    validated with clear ConfigurationError messages."""

    def test_flags_parsed_with_defaults(self):
        args = build_parser().parse_args(["table6"])
        assert args.num_workers is None
        assert args.shard_backend is None
        assert args.vocab_shards is None
        assert args.rollout_chunk_size is None

    def test_table6_accepts_scaling_flags(self, capsys):
        code = main(
            [
                "table6",
                "--profile",
                "fast",
                "--num-workers",
                "2",
                "--shard-backend",
                "serial",
                "--vocab-shards",
                "3",
                "--rollout-chunk-size",
                "16",
            ]
        )
        assert code == 0
        assert "w_t" in capsys.readouterr().out

    def test_invalid_num_workers_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="num_workers"):
            main(["table6", "--profile", "fast", "--num-workers", "0"])
        with pytest.raises(ConfigurationError, match="num_workers"):
            main(["table6", "--profile", "fast", "--num-workers", "two"])

    def test_invalid_backend_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="shard_backend"):
            main(["table6", "--profile", "fast", "--shard-backend", "quantum"])

    def test_invalid_vocab_shards_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="vocab_shards"):
            main(["table6", "--profile", "fast", "--vocab-shards", "-1"])

    def test_invalid_rollout_chunk_size_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="rollout-chunk-size"):
            main(["table6", "--profile", "fast", "--rollout-chunk-size", "0"])
        with pytest.raises(ConfigurationError, match="rollout-chunk-size"):
            main(["table6", "--profile", "fast", "--rollout-chunk-size", "many"])

    def test_env_defaults_apply_when_flags_omitted(self, monkeypatch):
        from repro.cli import _resolve_shard_args

        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "serial")
        args = build_parser().parse_args(["table6"])
        num_workers, backend, vocab_shards, chunk = _resolve_shard_args(args)
        assert num_workers == 2
        assert backend == "serial"
        assert vocab_shards == 1
        assert chunk is None


class TestBenchSubcommand:
    def test_bench_listed_in_parser(self):
        args = build_parser().parse_args(["bench"])
        assert args.artefact == "bench"

    def test_bench_fast_profile_reports_cache_hit_rates(self, capsys, tmp_path):
        import json

        output = tmp_path / "BENCH_path_planning.json"
        assert main(["bench", "--profile", "fast", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "forwards/sec" in out
        assert "tokens of work" in out
        report = json.loads(output.read_text())
        assert report["irs_stepwise_replanning"]["token_work_reduction"] >= 2.0
        assert "cache_counters" in report["irs_stepwise_replanning"]

    def test_bench_sections_subset(self, capsys, tmp_path):
        """Satellite of the serving PR: --sections runs only the named bench
        sections (the full bench is slow; CI targets the section under test)."""
        import json

        output = tmp_path / "bench_subset.json"
        code = main(
            [
                "bench",
                "--profile",
                "fast",
                "--sections",
                "nextitem_evaluation",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert report["sections"] == ["nextitem_evaluation"]
        assert "nextitem_evaluation" in report
        assert "beam_planning" not in report
        assert "async_serving" not in report

    def test_bench_unknown_section_raises(self):
        with pytest.raises(ConfigurationError, match="unknown bench section"):
            main(["bench", "--profile", "fast", "--sections", "quantum_planning"])

    def test_bench_cprofile_writes_pstats_dump(self, capsys, tmp_path):
        """Tensor-engine PR satellite: --cprofile profiles the bench run and
        drops a pstats dump next to the JSON report for ``pstats``/snakeviz."""
        import json
        import pstats

        output = tmp_path / "bench_profiled.json"
        code = main(
            [
                "bench",
                "--profile",
                "fast",
                "--sections",
                "tensor_ops",
                "--cprofile",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "cProfile stats written to" in capsys.readouterr().err
        report = json.loads(output.read_text())
        assert "tensor_ops" in report
        stats_path = tmp_path / "bench_profiled.json.pstats"
        assert stats_path.exists()
        stats = pstats.Stats(str(stats_path))  # loadable, non-empty profile
        assert stats.total_calls > 0


class TestServeSimSubcommand:
    """Satellite of the serving PR: the serve-sim CLI surface."""

    def test_serve_sim_listed_in_parser_with_flag_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.artefact == "serve-sim"
        assert args.arrival_rate is None
        assert args.duration is None
        assert args.max_queue_depth is None
        assert args.drain_deadline is None
        assert args.admission_policy is None

    def test_serve_sim_fast_profile_reports_latency(self, capsys, tmp_path):
        import json

        output = tmp_path / "serve_report.json"
        code = main(
            [
                "serve-sim",
                "--profile",
                "fast",
                "--arrival-rate",
                "300",
                "--duration",
                "0.3",
                "--num-workers",
                "2",
                # Pin the plain latency sim: the REPRO_TENANTS=2 tier-1 leg
                # would otherwise flip serve-sim into the A/B harness.
                "--tenants",
                "1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "async serving sim" in out
        assert "p99" in out
        report = json.loads(output.read_text())
        assert report["arrival_rate"] == 300.0
        assert report["admitted_requests"] + report["rejected_requests"] == report[
            "offered_requests"
        ]
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["sharding"]["num_workers"] == 2
        assert report["sharding"]["num_queues"] == 2

    def test_invalid_arrival_rate_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            main(["serve-sim", "--profile", "fast", "--arrival-rate", "0"])
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            main(["serve-sim", "--profile", "fast", "--arrival-rate", "fast"])

    def test_invalid_queue_knobs_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="max_queue_depth"):
            main(["serve-sim", "--profile", "fast", "--max-queue-depth", "0"])
        with pytest.raises(ConfigurationError, match="drain_deadline"):
            main(["serve-sim", "--profile", "fast", "--drain-deadline", "-1"])
        with pytest.raises(ConfigurationError, match="admission_policy"):
            main(["serve-sim", "--profile", "fast", "--admission-policy", "drop"])

    def test_env_defaults_apply_when_serve_flags_omitted(self, monkeypatch):
        from repro.cli import _resolve_serve_args

        monkeypatch.setenv("REPRO_ARRIVAL_RATE", "77")
        monkeypatch.setenv("REPRO_MAX_QUEUE_DEPTH", "9")
        monkeypatch.setenv("REPRO_ADMISSION_POLICY", "reject")
        monkeypatch.setenv("REPRO_DRAIN_DEADLINE", "0.01")
        monkeypatch.setenv("REPRO_SERVE_DURATION", "0.5")
        args = build_parser().parse_args(["serve-sim"])
        serve = _resolve_serve_args(args)
        assert serve == {
            "arrival_rate": 77.0,
            "duration": 0.5,
            "max_queue_depth": 9,
            "drain_deadline": 0.01,
            "admission_policy": "reject",
        }


class TestReplicationFlags:
    """Satellite of the replication PR: serve-sim grows --replicas /
    --refit-at / --dispatch-policy, with cross-flag validation that exits
    nonzero on bad combos instead of silently accepting them."""

    def test_flags_parsed_with_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.replicas is None
        assert args.refit_at is None
        assert args.dispatch_policy is None

    def test_invalid_replica_knobs_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            main(["serve-sim", "--profile", "fast", "--replicas", "0"])
        with pytest.raises(ConfigurationError, match="num_replicas"):
            main(["serve-sim", "--profile", "fast", "--replicas", "two"])
        with pytest.raises(ConfigurationError, match="refit_at"):
            main(["serve-sim", "--profile", "fast", "--refit-at", "-1"])
        with pytest.raises(ConfigurationError, match="refit_at"):
            main(["serve-sim", "--profile", "fast", "--refit-at", "soon"])
        with pytest.raises(ConfigurationError, match="dispatch_policy"):
            main(["serve-sim", "--profile", "fast", "--dispatch-policy", "fastest"])

    def test_refit_at_must_fall_inside_duration(self):
        with pytest.raises(ConfigurationError, match="strictly inside"):
            main(["serve-sim", "--profile", "fast", "--duration", "1", "--refit-at", "1"])
        with pytest.raises(ConfigurationError, match="strictly inside"):
            main(["serve-sim", "--profile", "fast", "--duration", "1", "--refit-at", "2.5"])

    def test_run_wrapper_exits_nonzero_with_clear_error(self, capsys):
        from repro.cli import run

        assert run(["serve-sim", "--profile", "fast", "--replicas", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "num_replicas" in err
        # A valid invocation still routes through main() unchanged.
        assert run(["table6", "--profile", "fast"]) == 0

    def test_replicated_serve_sim_fast_profile(self, capsys, tmp_path):
        import json

        output = tmp_path / "replica_report.json"
        code = main(
            [
                "serve-sim",
                "--profile",
                "fast",
                "--arrival-rate",
                "200",
                "--duration",
                "0.4",
                "--replicas",
                "2",
                "--tenants",
                "1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "async serving sim" in out
        assert "replicas: 2" in out
        report = json.loads(output.read_text())
        assert report["replication"]["num_replicas"] == 2
        assert report["replication"]["enabled"] is True
        assert report["errored_requests"] == 0
        assert report["no_pause"] is True
        assert report["fit_generation"] == 1
        assert report["dispatch"]["policy"] == "least_loaded"
        assert set(report["generations_served"]) == {"1"}

    def test_env_defaults_apply_when_replica_flags_omitted(self, monkeypatch):
        from repro.cli import _resolve_replica_args

        monkeypatch.setenv("REPRO_REPLICAS", "3")
        monkeypatch.setenv("REPRO_REFIT_AT", "0.25")
        monkeypatch.setenv("REPRO_DISPATCH_POLICY", "round_robin")
        args = build_parser().parse_args(["serve-sim"])
        replication = _resolve_replica_args(args, duration=2.0)
        assert replication == {
            "num_replicas": 3,
            "refit_at": 0.25,
            "dispatch_policy": "round_robin",
        }
        with pytest.raises(ConfigurationError, match="strictly inside"):
            _resolve_replica_args(args, duration=0.2)


class TestProfileResolution:
    """Satellite of the retrieval PR: --profile is validated eagerly, with
    the bench profile names (smoke/default/scale) accepted by the bench and
    serving commands and rejected — with a clear error — by the paper
    artefacts."""

    def test_bench_unknown_profile_raises_before_training(self):
        with pytest.raises(ConfigurationError, match="smoke, default, scale"):
            main(["bench", "--profile", "quantum"])

    def test_bench_accepts_bench_profile_names(self):
        from repro.cli import _resolve_bench_profile

        assert _resolve_bench_profile("fast") == "smoke"
        assert _resolve_bench_profile("smoke") == "smoke"
        assert _resolve_bench_profile("default") == "default"
        assert _resolve_bench_profile("scale") == "scale"

    def test_paper_artefacts_reject_bench_only_profiles(self):
        for profile in ("scale", "smoke", "quantum"):
            with pytest.raises(ConfigurationError, match="paper artefacts"):
                main(["table6", "--profile", profile])

    def test_run_exits_2_on_unknown_profile(self, capsys):
        from repro.cli import run

        assert run(["bench", "--profile", "quantum"]) == 2
        assert "known profiles" in capsys.readouterr().err


class TestServeSimRetrievalFlags:
    """Satellite of the retrieval PR: serve-sim plugs a candidate generator
    into the serving planner via --retrieval / --candidate-k."""

    def test_flags_parsed_with_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.retrieval is None
        assert args.candidate_k is None

    def test_unknown_retrieval_spec_raises(self):
        with pytest.raises(ConfigurationError, match="unknown retrieval spec"):
            main(["serve-sim", "--profile", "fast", "--retrieval", "quantum"])

    def test_candidate_k_requires_retrieval(self):
        with pytest.raises(ConfigurationError, match="requires --retrieval"):
            main(["serve-sim", "--profile", "fast", "--candidate-k", "64"])

    def test_invalid_candidate_k_raises(self):
        with pytest.raises(ConfigurationError, match="candidate-k"):
            main(
                [
                    "serve-sim",
                    "--profile",
                    "fast",
                    "--retrieval",
                    "cooccurrence",
                    "--candidate-k",
                    "many",
                ]
            )
        with pytest.raises(ConfigurationError, match="num_candidates"):
            main(
                [
                    "serve-sim",
                    "--profile",
                    "fast",
                    "--retrieval",
                    "cooccurrence",
                    "--candidate-k",
                    "0",
                ]
            )

    def test_serve_sim_with_cooccurrence_retrieval(self, capsys, tmp_path):
        import json

        output = tmp_path / "serve_retrieval.json"
        code = main(
            [
                "serve-sim",
                "--profile",
                "fast",
                "--arrival-rate",
                "100",
                "--duration",
                "0.3",
                "--retrieval",
                "cooccurrence",
                "--candidate-k",
                "16",
                "--tenants",
                "1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "retrieval: cooccurrence shortlists (k=16)" in out
        report = json.loads(output.read_text())
        assert report["retrieval"]["spec"] == "cooccurrence"
        assert report["retrieval"]["candidate_k"] == 16
        metrics = report["retrieval"]["metrics"]
        assert metrics["generator"] == "cooccurrence"
        assert metrics["requests"] > 0
        assert metrics["fallbacks"] <= metrics["requests"]

    def test_serve_sim_ab_harness_reports_uplift_and_slo(self, capsys, tmp_path):
        import json

        output = tmp_path / "ab_report.json"
        code = main(
            [
                "serve-sim",
                "--profile",
                "fast",
                "--tenants",
                "2",
                "--cohort-sessions",
                "6",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant control" in out
        assert "tenant treatment" in out
        assert "uplift (treatment - control interactive SR)" in out
        assert "SLO" in out
        report = json.loads(output.read_text())
        assert report["harness"] == "ab"
        assert report["tenants"] == 2
        assert report["cohort_sessions"] == 6
        summary = report["ab"]
        assert set(summary) == {"control", "treatment", "uplift"}
        for arm in ("control", "treatment"):
            assert summary[arm]["requests"] > 0
            assert summary[arm]["p50_ms"] <= summary[arm]["p95_ms"]
        assert set(report["fleet_tenants"]) == {"control", "treatment"}

    def test_serve_sim_rejects_more_than_two_tenants(self):
        with pytest.raises(ConfigurationError, match="exactly 2 tenants"):
            main(["serve-sim", "--profile", "fast", "--tenants", "3"])
        with pytest.raises(ConfigurationError, match="tenants"):
            main(["serve-sim", "--profile", "fast", "--tenants", "0"])

    def test_serve_sim_without_retrieval_reports_exact_spec(self, capsys, tmp_path):
        import json

        output = tmp_path / "serve_exact.json"
        code = main(
            [
                "serve-sim",
                "--profile",
                "fast",
                "--arrival-rate",
                "100",
                "--duration",
                "0.3",
                "--tenants",
                "1",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert report["retrieval"] == {"spec": "none", "candidate_k": 256}
