"""Unit and property tests for dataset splitting (§IV-A2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.splitting import UserSequence, cut_subsequences, split_corpus
from repro.utils.exceptions import ConfigurationError


class TestCutSubsequences:
    def test_lengths_within_bounds(self, rng):
        items = list(range(1, 101))
        pieces = cut_subsequences(items, l_min=10, l_max=20, rng=rng)
        assert all(10 <= len(piece) <= 30 for piece in pieces)  # last piece may absorb a fragment

    def test_pieces_are_contiguous_and_cover_everything(self, rng):
        items = list(range(1, 57))
        pieces = cut_subsequences(items, l_min=5, l_max=9, rng=rng)
        reassembled = [item for piece in pieces for item in piece]
        assert reassembled == items

    def test_short_history_is_single_piece(self, rng):
        assert cut_subsequences([1, 2, 3], l_min=10, l_max=20, rng=rng) == [[1, 2, 3]]

    def test_invalid_bounds_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            cut_subsequences([1, 2, 3], l_min=1, l_max=0, rng=rng)
        with pytest.raises(ConfigurationError):
            cut_subsequences([1, 2, 3], l_min=5, l_max=4, rng=rng)

    @given(st.integers(min_value=2, max_value=120), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_cover_and_bounds(self, n_items, seed):
        rng = np.random.default_rng(seed)
        items = list(range(1, n_items + 1))
        pieces = cut_subsequences(items, l_min=4, l_max=9, rng=rng)
        assert [item for piece in pieces for item in piece] == items
        if n_items > 4:
            assert all(len(piece) >= 4 for piece in pieces[:-1] or pieces)


class TestSplitCorpus:
    def test_one_test_instance_per_eligible_user(self, tiny_corpus):
        split = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=0)
        eligible = sum(1 for seq in tiny_corpus.user_sequences if len(seq) >= 3)
        assert len(split.test) == eligible

    def test_test_target_is_last_item_of_history(self, tiny_corpus):
        split = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=0)
        by_user = {i: seq for i, seq in enumerate(tiny_corpus.user_sequences)}
        for instance in split.test:
            full = by_user[instance.user_index]
            assert instance.target == full[-1]
            assert list(instance.history) == full[:-1]

    def test_training_sequences_do_not_contain_test_targets_at_end(self, tiny_corpus):
        """Training sub-sequences are cut from the history (without the held-out item)."""
        split = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=0)
        targets = {(t.user_index, t.target) for t in split.test}
        for sequence in split.train:
            full = tiny_corpus.user_sequences[sequence.user_index]
            # the held-out target is the very last event of the full history
            reconstructed = list(sequence.items)
            assert reconstructed != full  # never the complete history

    def test_validation_fraction_respected(self, tiny_corpus):
        split = split_corpus(tiny_corpus, l_min=5, l_max=10, validation_fraction=0.2, seed=0)
        total = len(split.train) + len(split.validation)
        assert len(split.validation) == pytest.approx(0.2 * total, abs=1)

    def test_objective_is_last_item_of_each_training_sequence(self, tiny_corpus):
        split = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=0)
        for sequence in split.train[:50]:
            assert sequence.objective == sequence.items[-1]
            assert len(sequence) == len(sequence.items)

    def test_deterministic_given_seed(self, tiny_corpus):
        split_a = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=3)
        split_b = split_corpus(tiny_corpus, l_min=5, l_max=10, seed=3)
        assert [s.items for s in split_a.train] == [s.items for s in split_b.train]

    def test_summary_counts(self, tiny_split):
        summary = tiny_split.summary()
        assert summary["train_sequences"] == len(tiny_split.train)
        assert summary["test_instances"] == len(tiny_split.test)

    def test_invalid_validation_fraction(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            split_corpus(tiny_corpus, validation_fraction=1.5)


class TestUserSequence:
    def test_objective_property(self):
        sequence = UserSequence(user_index=3, items=(5, 6, 7))
        assert sequence.objective == 7
        assert len(sequence) == 3
