"""Unit tests for the §IV-A1 preprocessing steps."""

import pytest

from repro.data.interactions import Interaction, InteractionDataset
from repro.data.preprocessing import (
    build_corpus,
    filter_min_interactions,
    group_by_user,
    merge_consecutive_duplicates,
)
from repro.utils.exceptions import DataError


def _dataset(records, genres=None):
    return InteractionDataset(
        name="test",
        interactions=[Interaction(u, i, t) for u, i, t in records],
        item_genres=genres or {},
    )


class TestGrouping:
    def test_orders_by_timestamp_within_user(self):
        dataset = _dataset([("u", "b", 2.0), ("u", "a", 1.0), ("v", "c", 0.0)])
        grouped = group_by_user(dataset)
        assert [item for _, item in grouped["u"]] == ["a", "b"]
        assert [item for _, item in grouped["v"]] == ["c"]


class TestMergeConsecutive:
    def test_merges_runs_only(self):
        assert merge_consecutive_duplicates(["a", "a", "b", "a", "a", "a"]) == ["a", "b", "a"]

    def test_empty_input(self):
        assert merge_consecutive_duplicates([]) == []


class TestFiltering:
    def test_drops_rare_users_and_items_iteratively(self):
        user_items = {
            "keep": ["x", "y", "x", "y", "x"],
            "rare_user": ["x"],
            "only_rare_items": ["z", "w", "z", "w", "z"],
        }
        filtered = filter_min_interactions(user_items, min_interactions=3)
        assert "rare_user" not in filtered
        assert "keep" in filtered
        # z appears 3 times so survives; w only twice and is removed, which
        # drops only_rare_items below the threshold on the second pass.
        assert all(
            item not in {"w"} for items in filtered.values() for item in items
        )

    def test_zero_threshold_is_identity(self):
        user_items = {"u": ["a"]}
        assert filter_min_interactions(user_items, 0) == user_items

    def test_raises_when_everything_removed(self):
        with pytest.raises(DataError):
            filter_min_interactions({"u": ["a"], "v": ["b"]}, min_interactions=5)


class TestBuildCorpus:
    def test_builds_sequences_with_genres(self):
        records = []
        for user in ("u1", "u2", "u3"):
            for step, item in enumerate(["a", "b", "c", "d", "e"]):
                records.append((user, item, float(step)))
        corpus = build_corpus(_dataset(records, genres={"a": ("G1",), "b": ("G1", "G2")}), min_interactions=3)
        assert corpus.num_users == 3
        assert corpus.num_items == 5
        assert corpus.genre_names == ["G1", "G2"]
        first_item = corpus.vocab.index("a")
        assert corpus.item_genres(first_item) == ("G1",)

    def test_merge_consecutive_option(self):
        records = [("u%d" % k, item, float(t)) for k in range(3) for t, item in enumerate(["a", "a", "b", "b", "c"])]
        merged = build_corpus(_dataset(records), min_interactions=2, merge_consecutive=True)
        plain = build_corpus(_dataset(records), min_interactions=2, merge_consecutive=False)
        assert merged.statistics().num_interactions < plain.statistics().num_interactions

    def test_min_interactions_filter_applied(self):
        records = []
        for user in ("u1", "u2", "u3", "u4", "u5"):
            for step, item in enumerate(["a", "b", "c", "d", "e"]):
                records.append((user, item, float(step)))
        records.append(("loner", "rare", 0.0))
        corpus = build_corpus(_dataset(records), min_interactions=5)
        assert "loner" not in corpus.user_ids
        assert "rare" not in corpus.vocab

    def test_user_traits_carried_over(self, tiny_dataset):
        corpus = build_corpus(tiny_dataset, min_interactions=3)
        assert corpus.user_traits is not None
        assert len(corpus.user_traits) == corpus.num_users

    def test_deterministic_item_numbering(self):
        records = []
        for user in ("b_user", "a_user"):
            for step, item in enumerate(["x", "y", "z"]):
                records.append((user, item, float(step)))
        corpus1 = build_corpus(_dataset(records), min_interactions=2)
        corpus2 = build_corpus(_dataset(list(reversed(records))), min_interactions=2)
        assert corpus1.vocab.encode(["x", "y", "z"]) == corpus2.vocab.encode(["x", "y", "z"])
