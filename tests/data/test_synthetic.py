"""Unit tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.data.preprocessing import build_corpus
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.utils.exceptions import ConfigurationError


def _config(**overrides):
    defaults = dict(
        name="synthetic-test",
        num_users=30,
        num_items=50,
        num_genres=5,
        min_sequence_length=12,
        max_sequence_length=20,
        seed=7,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestSyntheticConfig:
    def test_default_genre_names_generated(self):
        config = _config()
        assert len(config.genre_names) == 5

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(num_users=0)
        with pytest.raises(ConfigurationError):
            _config(num_genres=100)  # more genres than items
        with pytest.raises(ConfigurationError):
            _config(min_sequence_length=10, max_sequence_length=5)
        with pytest.raises(ConfigurationError):
            _config(genre_names=["only-one"])


class TestGenerator:
    def test_counts_and_lengths(self):
        config = _config()
        dataset = generate_synthetic_dataset(config)
        assert len(dataset.users) == 30
        per_user = {}
        for interaction in dataset.interactions:
            per_user.setdefault(interaction.user, []).append(interaction)
        for events in per_user.values():
            assert 12 <= len(events) <= 20

    def test_timestamps_are_increasing_per_user(self):
        dataset = generate_synthetic_dataset(_config())
        per_user = {}
        for interaction in dataset.interactions:
            per_user.setdefault(interaction.user, []).append(interaction.timestamp)
        for timestamps in per_user.values():
            assert timestamps == sorted(timestamps)

    def test_every_item_has_genres(self):
        config = _config()
        dataset = generate_synthetic_dataset(config)
        assert len(dataset.item_genres) == config.num_items
        for genres in dataset.item_genres.values():
            assert 1 <= len(genres) <= 2
            assert all(g in config.genre_names for g in genres)

    def test_user_traits_are_probabilities(self):
        dataset = generate_synthetic_dataset(_config())
        traits = np.array(list(dataset.user_traits.values()))
        assert traits.shape == (30,)
        assert np.all((traits > 0) & (traits < 1))

    def test_deterministic_given_seed(self):
        a = generate_synthetic_dataset(_config(seed=3))
        b = generate_synthetic_dataset(_config(seed=3))
        assert [i.item for i in a.interactions] == [i.item for i in b.interactions]

    def test_different_seeds_differ(self):
        a = generate_synthetic_dataset(_config(seed=1))
        b = generate_synthetic_dataset(_config(seed=2))
        assert [i.item for i in a.interactions] != [i.item for i in b.interactions]

    def test_no_immediate_repeats(self):
        dataset = generate_synthetic_dataset(_config())
        per_user = {}
        for interaction in dataset.interactions:
            per_user.setdefault(interaction.user, []).append(interaction.item)
        for items in per_user.values():
            assert all(a != b for a, b in zip(items[:-1], items[1:]))

    def test_popularity_is_skewed(self):
        """A few items should account for a disproportionate share of interactions."""
        corpus = build_corpus(generate_synthetic_dataset(_config(num_users=80)), min_interactions=1)
        counts = np.sort(corpus.item_popularity())[::-1]
        top_decile = counts[: max(1, len(counts) // 10)].sum()
        assert top_decile / counts.sum() > 0.2

    def test_sequential_genre_coherence(self):
        """Consecutive items share a genre far more often than random pairs would."""
        config = _config(num_users=60)
        dataset = generate_synthetic_dataset(config)
        corpus = build_corpus(dataset, min_interactions=1)
        matrix = corpus.item_genre_matrix
        same_genre = []
        rng = np.random.default_rng(0)
        random_same = []
        for sequence in corpus.user_sequences:
            for a, b in zip(sequence[:-1], sequence[1:]):
                same_genre.append(bool((matrix[a] & matrix[b]).any()))
                c, d = rng.integers(1, corpus.vocab.size, size=2)
                random_same.append(bool((matrix[c] & matrix[d]).any()))
        assert np.mean(same_genre) > np.mean(random_same) + 0.1
