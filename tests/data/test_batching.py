"""Unit tests for mini-batch iteration."""

import numpy as np
import pytest

from repro.data.batching import iterate_batches, sequences_to_batch
from repro.data.padding import PAD_INDEX
from repro.data.splitting import UserSequence
from repro.utils.exceptions import ConfigurationError


def _sequences():
    return [
        UserSequence(0, (1, 2, 3)),
        UserSequence(1, (4, 5)),
        UserSequence(2, (6, 7, 8, 9)),
        UserSequence(0, (2, 3)),
        UserSequence(3, (1, 9, 8, 7, 6)),
    ]


class TestSequencesToBatch:
    def test_shapes_and_metadata(self):
        batch = sequences_to_batch(_sequences())
        assert batch.items.shape == (5, 5)
        assert batch.batch_size == 5
        assert batch.max_length == 5
        assert batch.users.tolist() == [0, 1, 2, 0, 3]
        assert batch.lengths.tolist() == [3, 2, 4, 2, 5]

    def test_pre_padding_places_objective_last(self):
        batch = sequences_to_batch(_sequences(), scheme="pre")
        for row, sequence in zip(batch.items, _sequences()):
            assert row[-1] == sequence.objective

    def test_post_padding_places_first_item_first(self):
        batch = sequences_to_batch(_sequences(), scheme="post")
        for row, sequence in zip(batch.items, _sequences()):
            assert row[0] == sequence.items[0]

    def test_padding_mask(self):
        batch = sequences_to_batch(_sequences())
        mask = batch.padding_mask()
        assert mask.sum() == sum(len(s) for s in _sequences())
        assert mask.dtype == bool

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            sequences_to_batch([])

    def test_explicit_length(self):
        batch = sequences_to_batch(_sequences(), length=8)
        assert batch.max_length == 8


class TestIterateBatches:
    def test_covers_all_sequences_exactly_once(self):
        sequences = _sequences()
        seen = 0
        for batch in iterate_batches(sequences, batch_size=2, shuffle=True, seed=0):
            seen += batch.batch_size
            assert batch.batch_size <= 2
        assert seen == len(sequences)

    def test_no_shuffle_preserves_order(self):
        sequences = _sequences()
        batches = list(iterate_batches(sequences, batch_size=3, shuffle=False))
        assert batches[0].users.tolist() == [0, 1, 2]
        assert batches[1].users.tolist() == [0, 3]

    def test_shuffle_is_seed_deterministic(self):
        sequences = _sequences()
        users_a = [b.users.tolist() for b in iterate_batches(sequences, 2, seed=5)]
        users_b = [b.users.tolist() for b in iterate_batches(sequences, 2, seed=5)]
        assert users_a == users_b

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            list(iterate_batches(_sequences(), batch_size=0))

    def test_padding_value_is_reserved_index(self):
        for batch in iterate_batches(_sequences(), batch_size=5, shuffle=False):
            padded_positions = ~batch.padding_mask()
            assert np.all(batch.items[padded_positions] == PAD_INDEX)
