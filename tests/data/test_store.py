"""Tests for the memory-mapped interaction store and streaming corpus."""

import numpy as np
import pytest

from repro.data.store import InteractionStore
from repro.data.streaming import (
    StreamingSyntheticConfig,
    build_streaming_store,
    iter_streaming_sequences,
)
from repro.data.vocab import PAD_TOKEN, RangeVocabulary
from repro.embeddings.cooccurrence import CooccurrenceEmbedding
from repro.utils.exceptions import ConfigurationError, DataError


def _write_store(tmp_path, sequences, vocab_size=10):
    return InteractionStore.write(str(tmp_path / "store"), sequences, vocab_size)


class TestInteractionStore:
    def test_round_trip(self, tmp_path):
        sequences = [[1, 2, 3], [4, 5], [], [9, 9, 1, 2]]
        store = _write_store(tmp_path, sequences)
        assert store.num_users == 4
        assert store.num_events == 9
        assert store.vocab_size == 10
        for position, expected in enumerate(sequences):
            assert store.sequence(position).tolist() == expected

    def test_open_reads_back_written_store(self, tmp_path):
        sequences = [[1, 2], [3]]
        written = _write_store(tmp_path, sequences)
        reopened = InteractionStore.open(written.path)
        assert reopened.num_users == written.num_users
        assert [s.tolist() for s in reopened.iter_sequences()] == sequences

    def test_accepts_generator_input(self, tmp_path):
        store = _write_store(tmp_path, (np.array([i + 1, i + 2]) for i in range(5)))
        assert store.num_users == 5
        assert store.sequence(4).tolist() == [5, 6]

    def test_rejects_out_of_range_items(self, tmp_path):
        with pytest.raises(DataError):
            _write_store(tmp_path, [[1, 2], [0, 3]])
        with pytest.raises(DataError):
            _write_store(tmp_path, [[1, 10]])

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(DataError):
            InteractionStore.open(str(tmp_path / "missing"))

    def test_item_popularity(self, tmp_path):
        store = _write_store(tmp_path, [[1, 2, 2], [2, 3]])
        popularity = store.item_popularity()
        assert popularity.tolist() == [0, 1, 3, 1, 0, 0, 0, 0, 0, 0]

    def test_write_survives_chunked_flushes(self, tmp_path):
        import repro.data.store as store_mod

        sequences = [list(range(1, 8)) for _ in range(10)]
        original = store_mod._WRITE_CHUNK_EVENTS
        try:
            store_mod._WRITE_CHUNK_EVENTS = 5
            store = _write_store(tmp_path, sequences)
        finally:
            store_mod._WRITE_CHUNK_EVENTS = original
        assert [s.tolist() for s in store.iter_sequences()] == sequences

    def test_corpus_facade_feeds_embedding_fit(self, tmp_path):
        store = _write_store(tmp_path, [[1, 2, 3, 1, 2], [4, 5, 4, 5]] * 4)
        corpus = store.as_corpus()
        assert corpus.vocab.size == 10
        assert len(corpus.user_sequences) == 8
        model = CooccurrenceEmbedding(embedding_dim=4, solver="dense").fit(corpus)
        assert model.vectors.shape == (10, 4)
        assert model.similarity(1, 2) > model.similarity(1, 5)


class TestRangeVocabulary:
    def test_identity_mapping(self):
        vocab = RangeVocabulary(5)
        assert vocab.size == 6
        assert vocab.num_items == 5
        assert vocab.index(3) == 3
        assert vocab.item(3) == 3
        assert vocab.item(0) == PAD_TOKEN
        assert vocab.encode([1, 5]) == [1, 5]
        assert list(vocab.item_indices()) == [1, 2, 3, 4, 5]
        assert 5 in vocab and 6 not in vocab and PAD_TOKEN not in vocab

    def test_rejects_unknown_and_additions(self):
        vocab = RangeVocabulary(3)
        with pytest.raises(DataError):
            vocab.index(0)
        with pytest.raises(DataError):
            vocab.index("i1")
        with pytest.raises(DataError):
            vocab.item(4)
        with pytest.raises(DataError):
            vocab.add("new-item")


class TestStreamingSynthetic:
    def test_deterministic_for_fixed_seed(self):
        config = StreamingSyntheticConfig(num_items=500, num_users=40, seed=3)
        first = [s.copy() for s in iter_streaming_sequences(config)]
        second = [s.copy() for s in iter_streaming_sequences(config)]
        assert len(first) == 40
        for a, b in zip(first, second):
            assert (a == b).all()

    def test_items_in_range_and_lengths_bounded(self):
        config = StreamingSyntheticConfig(
            num_items=300, num_users=50, min_events=4, max_events=9, seed=1
        )
        for sequence in iter_streaming_sequences(config):
            assert 4 <= sequence.size <= 9
            assert sequence.min() >= 1
            assert sequence.max() <= 300

    def test_chunking_does_not_change_the_stream(self):
        base = StreamingSyntheticConfig(num_items=200, num_users=30, seed=5, chunk_users=30)
        # Different chunk sizes draw in a different order, so only the
        # single-chunk config is the reference; re-running it must agree.
        again = [s.copy() for s in iter_streaming_sequences(base)]
        reference = [s.copy() for s in iter_streaming_sequences(base)]
        for a, b in zip(reference, again):
            assert (a == b).all()

    def test_build_streaming_store_round_trip(self, tmp_path):
        config = StreamingSyntheticConfig(num_items=400, num_users=25, seed=2)
        store = build_streaming_store(config, str(tmp_path / "scale"))
        assert store.num_users == 25
        assert store.vocab_size == 401
        streamed = [s.tolist() for s in iter_streaming_sequences(config)]
        stored = [s.tolist() for s in store.iter_sequences()]
        assert stored == streamed
        popularity = store.item_popularity()
        assert popularity[0] == 0
        assert popularity.sum() == store.num_events

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingSyntheticConfig(num_items=0)
        with pytest.raises(ConfigurationError):
            StreamingSyntheticConfig(min_events=5, max_events=3)
        with pytest.raises(ConfigurationError):
            StreamingSyntheticConfig(genre_switch_prob=1.5)
