"""Unit and property tests for the item vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.data.vocab import PAD_TOKEN, Vocabulary
from repro.utils.exceptions import DataError


class TestVocabulary:
    def test_padding_occupies_index_zero(self):
        vocab = Vocabulary()
        assert vocab.size == 1
        assert vocab.num_items == 0
        assert vocab.item(0) == PAD_TOKEN

    def test_add_assigns_contiguous_indices(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 1
        assert vocab.add("b") == 2
        assert vocab.add("a") == 1  # idempotent
        assert vocab.size == 3

    def test_constructor_accepts_iterable(self):
        vocab = Vocabulary(["x", "y", "x"])
        assert vocab.num_items == 2

    def test_index_of_unknown_item_raises(self):
        with pytest.raises(DataError):
            Vocabulary().index("missing")

    def test_item_out_of_range_raises(self):
        with pytest.raises(DataError):
            Vocabulary(["a"]).item(5)

    def test_pad_token_cannot_be_added(self):
        with pytest.raises(DataError):
            Vocabulary().add(PAD_TOKEN)

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab and "missing" not in vocab
        assert list(vocab) == [PAD_TOKEN, "a", "b"]
        assert len(vocab) == 3

    def test_item_indices_excludes_padding(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert list(vocab.item_indices()) == [1, 2, 3]

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=30))
    def test_encode_decode_round_trip(self, items):
        vocab = Vocabulary(items)
        encoded = vocab.encode(items)
        assert vocab.decode(encoded) == items
        assert all(index >= 1 for index in encoded)

    @given(st.lists(st.integers(), min_size=1, max_size=50, unique=True))
    def test_size_matches_unique_items(self, items):
        vocab = Vocabulary(items)
        assert vocab.num_items == len(items)
        assert vocab.size == len(items) + 1
