"""Unit tests for the dataset containers."""

import numpy as np
import pytest

from repro.data.interactions import DatasetStatistics, Interaction, InteractionDataset, SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.utils.exceptions import DataError


def _toy_corpus() -> SequenceCorpus:
    vocab = Vocabulary(["a", "b", "c", "d"])
    genres = np.zeros((vocab.size, 2), dtype=bool)
    genres[1, 0] = True
    genres[2, 1] = True
    genres[3, :] = True
    return SequenceCorpus(
        name="toy",
        vocab=vocab,
        user_ids=["u1", "u2"],
        user_sequences=[[1, 2, 3], [2, 3, 4, 1]],
        genre_names=["g0", "g1"],
        item_genre_matrix=genres,
        user_traits=np.array([0.2, 0.8]),
    )


class TestInteractionDataset:
    def test_requires_interactions(self):
        with pytest.raises(DataError):
            InteractionDataset(name="empty", interactions=[])

    def test_users_and_items_in_first_appearance_order(self):
        dataset = InteractionDataset(
            name="d",
            interactions=[
                Interaction("u2", "b", 1.0),
                Interaction("u1", "a", 2.0),
                Interaction("u2", "a", 3.0),
            ],
        )
        assert dataset.users == ["u2", "u1"]
        assert dataset.items == ["b", "a"]
        assert len(dataset) == 3


class TestSequenceCorpus:
    def test_validates_sequence_indices(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(DataError):
            SequenceCorpus("bad", vocab, ["u"], [[5]])
        with pytest.raises(DataError):
            SequenceCorpus("bad", vocab, ["u"], [[0]])
        with pytest.raises(DataError):
            SequenceCorpus("bad", vocab, ["u"], [[]])

    def test_user_and_sequence_count_must_match(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(DataError):
            SequenceCorpus("bad", vocab, ["u1", "u2"], [[1]])

    def test_statistics_match_manual_computation(self):
        corpus = _toy_corpus()
        stats = corpus.statistics()
        assert stats.num_users == 2
        assert stats.num_items == 4
        assert stats.num_interactions == 7
        assert stats.density == pytest.approx(7 / 8)
        assert stats.avg_items_per_user == pytest.approx(3.5)

    def test_statistics_as_row_keys(self):
        row = _toy_corpus().statistics().as_row()
        assert set(row) == {
            "dataset",
            "users",
            "items",
            "interactions",
            "density",
            "avg_items_per_user",
        }

    def test_item_popularity_counts(self):
        counts = _toy_corpus().item_popularity()
        assert counts[0] == 0
        assert counts[1] == 2  # "a" appears twice
        assert counts.sum() == 7

    def test_item_genres_lookup(self):
        corpus = _toy_corpus()
        assert corpus.item_genres(3) == ("g0", "g1")
        assert corpus.item_genres(1) == ("g0",)

    def test_item_genres_without_metadata(self):
        vocab = Vocabulary(["a"])
        corpus = SequenceCorpus("plain", vocab, ["u"], [[1]])
        assert corpus.item_genres(1) == ()

    def test_genre_matrix_shape_validated(self):
        vocab = Vocabulary(["a", "b"])
        with pytest.raises(DataError):
            SequenceCorpus(
                "bad", vocab, ["u"], [[1]], genre_names=["g"], item_genre_matrix=np.zeros((2, 1))
            )

    def test_subset_users_preserves_vocab_and_traits(self):
        corpus = _toy_corpus()
        subset = corpus.subset_users([1])
        assert subset.num_users == 1
        assert subset.user_ids == ["u2"]
        assert subset.vocab is corpus.vocab
        assert np.allclose(subset.user_traits, [0.8])


class TestDatasetStatistics:
    def test_dataclass_round_trip(self):
        stats = DatasetStatistics("x", 10, 20, 100, 0.5, 10.0)
        assert stats.as_row()["interactions"] == 100
