"""Unit and property tests for pre-/post-padding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.padding import PAD_INDEX, pad_batch, pad_sequence, post_pad, pre_pad
from repro.utils.exceptions import DataError

sequences = st.lists(st.integers(min_value=1, max_value=500), min_size=0, max_size=40)
lengths = st.integers(min_value=1, max_value=50)


class TestPrePad:
    def test_pads_on_the_left(self):
        assert pre_pad([1, 2, 3], 5) == [PAD_INDEX, PAD_INDEX, 1, 2, 3]

    def test_truncates_keeping_most_recent(self):
        assert pre_pad([1, 2, 3, 4, 5], 3) == [3, 4, 5]

    def test_objective_stays_at_fixed_last_position(self):
        """The §III-D5 motivation: the last item keeps the final slot."""
        for sequence in ([7], [1, 7], [1, 2, 3, 7], list(range(1, 30)) + [7]):
            assert pre_pad(sequence, 10)[-1] == 7

    def test_rejects_non_positive_length(self):
        with pytest.raises(DataError):
            pre_pad([1], 0)


class TestPostPad:
    def test_pads_on_the_right(self):
        assert post_pad([1, 2], 4) == [1, 2, PAD_INDEX, PAD_INDEX]

    def test_truncates_keeping_first_items(self):
        assert post_pad([1, 2, 3, 4], 2) == [1, 2]

    def test_last_item_position_varies_with_length(self):
        """Contrast with pre-padding: the last real item moves around."""
        positions = {post_pad(list(range(1, n + 1)), 10).index(n) for n in (1, 3, 5)}
        assert len(positions) > 1


class TestDispatchAndBatch:
    def test_pad_sequence_dispatch(self):
        assert pad_sequence([1], 3, scheme="pre") == [0, 0, 1]
        assert pad_sequence([1], 3, scheme="post") == [1, 0, 0]
        with pytest.raises(DataError):
            pad_sequence([1], 3, scheme="middle")

    def test_pad_batch_defaults_to_longest(self):
        batch = pad_batch([[1], [1, 2, 3]])
        assert batch.shape == (2, 3)
        assert batch.dtype == np.int64

    def test_pad_batch_empty_rejected(self):
        with pytest.raises(DataError):
            pad_batch([])

    def test_pad_batch_fixed_length(self):
        batch = pad_batch([[1, 2], [3]], length=4, scheme="post")
        assert batch.shape == (2, 4)
        assert batch[1].tolist() == [3, 0, 0, 0]


class TestPaddingProperties:
    @given(sequences, lengths)
    def test_output_length_is_exact(self, sequence, length):
        assert len(pre_pad(sequence, length)) == length
        assert len(post_pad(sequence, length)) == length

    @given(sequences, lengths)
    def test_real_items_preserved_in_order(self, sequence, length):
        padded = pre_pad(sequence, length)
        real = [item for item in padded if item != PAD_INDEX]
        assert real == sequence[-length:] if len(sequence) >= length else real == sequence

    @given(sequences, lengths)
    def test_pre_padding_keeps_suffix_post_keeps_prefix(self, sequence, length):
        pre = pre_pad(sequence, length)
        post = post_pad(sequence, length)
        keep = min(len(sequence), length)
        if keep:
            assert pre[-keep:] == sequence[-keep:]
            assert post[:keep] == sequence[:keep]

    @given(sequences, lengths)
    def test_padding_count_is_complementary(self, sequence, length):
        padded = pre_pad(sequence, length)
        num_pads = sum(1 for item in padded if item == PAD_INDEX)
        expected_pads = max(0, length - len(sequence)) + sum(
            1 for item in sequence[-length:] if item == PAD_INDEX
        )
        assert num_pads == expected_pads
