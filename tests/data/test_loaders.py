"""Unit tests for the MovieLens-1M / Lastfm file parsers and synthetic presets."""

import pytest

from repro.data.lastfm import LASTFM_GENRES, load_lastfm, synthetic_lastfm
from repro.data.movielens import MOVIELENS_GENRES, load_movielens_1m, synthetic_movielens
from repro.data.preprocessing import build_corpus
from repro.utils.exceptions import DataError


class TestMovielensLoader:
    def test_parses_ratings_and_movies(self, tmp_path):
        (tmp_path / "ratings.dat").write_text(
            "1::10::5::978300760\n1::11::3::978302109\n2::10::4::978301968\n",
            encoding="latin-1",
        )
        (tmp_path / "movies.dat").write_text(
            "10::GoldenEye (1995)::Action|Adventure|Thriller\n11::Toy Story (1995)::Animation\n",
            encoding="latin-1",
        )
        dataset = load_movielens_1m(str(tmp_path))
        assert len(dataset) == 3
        assert dataset.item_genres["m10"] == ("Action", "Adventure", "Thriller")
        assert dataset.interactions[0].rating == 5.0

    def test_missing_ratings_file(self, tmp_path):
        with pytest.raises(DataError):
            load_movielens_1m(str(tmp_path))

    def test_malformed_line_rejected(self, tmp_path):
        (tmp_path / "ratings.dat").write_text("1::10::5\n", encoding="latin-1")
        with pytest.raises(DataError):
            load_movielens_1m(str(tmp_path))

    def test_works_without_movies_file(self, tmp_path):
        (tmp_path / "ratings.dat").write_text("1::10::5::978300760\n", encoding="latin-1")
        dataset = load_movielens_1m(str(tmp_path))
        assert dataset.item_genres == {}


class TestLastfmLoader:
    def test_parses_tagging_events_and_skips_header(self, tmp_path):
        (tmp_path / "user_taggedartists-timestamps.dat").write_text(
            "userID\tartistID\ttagID\ttimestamp\n2\t52\t13\t1238536800000\n2\t53\t14\t1238536800500\n",
            encoding="utf-8",
        )
        dataset = load_lastfm(str(tmp_path))
        assert len(dataset) == 2
        assert dataset.interactions[0].item == "a52"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_lastfm(str(tmp_path))

    def test_malformed_line(self, tmp_path):
        (tmp_path / "user_taggedartists-timestamps.dat").write_text("2\t52\n", encoding="utf-8")
        with pytest.raises(DataError):
            load_lastfm(str(tmp_path))


class TestSyntheticPresets:
    def test_movielens_preset_has_18_genres(self):
        dataset = synthetic_movielens(scale=0.2, seed=0)
        genres = {g for gs in dataset.item_genres.values() for g in gs}
        assert genres.issubset(set(MOVIELENS_GENRES))
        assert len(MOVIELENS_GENRES) == 18

    def test_lastfm_preset_is_sparser_than_movielens(self):
        movielens = build_corpus(synthetic_movielens(scale=0.3, seed=0), min_interactions=3)
        lastfm = build_corpus(synthetic_lastfm(scale=0.3, seed=0), min_interactions=3)
        assert lastfm.statistics().avg_items_per_user < movielens.statistics().avg_items_per_user
        assert set(lastfm.genre_names).issubset(set(LASTFM_GENRES))

    def test_scale_changes_size(self):
        small = synthetic_movielens(scale=0.2, seed=0)
        large = synthetic_movielens(scale=0.4, seed=0)
        assert len(large.users) > len(small.users)

    def test_invalid_scale(self):
        with pytest.raises(DataError):
            synthetic_movielens(scale=0.0)
        with pytest.raises(DataError):
            synthetic_lastfm(scale=-1.0)
