"""Integration tests for the ablation and extension experiment runners.

Like the other pipeline integration tests these use the fast profile and
check structure and basic sanity, not paper-level orderings (which need the
default profile and live in ``benchmarks/``).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ablations, extensions
from repro.experiments.reporting import format_table


def _sr_key(pipeline) -> str:
    return f"SR{pipeline.config.max_path_length}"


class TestAblations:
    def test_embedding_init_rows(self, fast_pipeline):
        rows = ablations.ablation_embedding_init(fast_pipeline)
        assert [row["variant"] for row in rows] == ["random init", "item2vec init"]
        for row in rows:
            assert 0.0 <= row[_sr_key(fast_pipeline)] <= 1.0
            assert np.isfinite(row["log(PPL)"])

    def test_padding_scheme_rows(self, fast_pipeline):
        rows = ablations.ablation_padding_scheme(fast_pipeline)
        assert [row["variant"] for row in rows] == ["pre-padding", "post-padding"]
        assert format_table(rows)  # renders without error

    def test_decoding_rows(self, fast_pipeline):
        rows = ablations.ablation_decoding(fast_pipeline, beam_width=2, branch_factor=2)
        assert rows[0]["variant"] == "greedy (Algorithm 1)"
        assert rows[1]["variant"].startswith("beam search")
        sr = _sr_key(fast_pipeline)
        # Beam search plans toward the objective, so it should not be worse
        # than greedy by more than noise on the tiny profile.
        assert rows[1][sr] >= rows[0][sr] - 0.25


class TestExtensions:
    def test_interactive_comparison_rows(self, fast_pipeline):
        rows = extensions.extension_interactive_comparison(fast_pipeline, max_steps=6)
        assert any(row["framework"] == "IRN" for row in rows)
        for row in rows:
            assert 0.0 <= row["interactive_SR"] <= 1.0
            assert 0.0 <= row["acceptance_rate"] <= 1.0
            assert 0.0 <= row["abandonment_rate"] <= 1.0

    def test_kg_comparison_rows(self, fast_pipeline):
        rows = extensions.extension_kg_comparison(fast_pipeline)
        frameworks = {row["framework"] for row in rows}
        assert "Kg2Inf (subgraph expansion)" in frameworks
        assert "IRN" in frameworks
        sr = _sr_key(fast_pipeline)
        for row in rows:
            assert 0.0 <= row[sr] <= 1.0

    def test_category_objectives_rows(self, fast_pipeline):
        rows = extensions.extension_category_objectives(fast_pipeline, max_genres=2)
        assert 1 <= len(rows) <= 2
        sr = _sr_key(fast_pipeline)
        for row in rows:
            assert row["members"] >= 1
            assert 0.0 <= row[sr] <= 1.0
            assert row["mean_path_length"] <= fast_pipeline.config.max_path_length

    def test_path_quality_report_rows(self, fast_pipeline):
        rows = extensions.extension_path_quality_report(fast_pipeline)
        assert any(row["framework"] == "IRN" for row in rows)
        for row in rows:
            assert 0.0 <= row["reach_rate"] <= 1.0
            assert 0.0 <= row["coverage"] <= 1.0
