"""Integration tests: the fast-profile pipeline drives every table and figure.

These are the heaviest tests in the suite (a few seconds each thanks to the
session-scoped pipeline); they verify that the experiment harness runs end to
end and produces structurally valid artefacts, not that the numbers match the
paper (that is what ``benchmarks/`` and EXPERIMENTS.md are for).
"""

import numpy as np

from repro.core.pim import MaskType
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table


class TestPipelineComponents:
    def test_summary_fields(self, fast_pipeline):
        summary = fast_pipeline.summary()
        assert summary["users"] > 0 and summary["items"] > 0
        assert summary["train_sequences"] > 0

    def test_split_cached(self, fast_pipeline):
        assert fast_pipeline.split is fast_pipeline.split

    def test_evaluator_selection(self, fast_pipeline):
        selection = fast_pipeline.evaluator_selection
        assert selection.best_name() in selection.scores
        assert fast_pipeline.evaluator.name == selection.best_name()

    def test_baselines_fitted_once(self, fast_pipeline):
        baselines = fast_pipeline.baselines
        assert baselines is fast_pipeline.baselines
        assert all(model.corpus is not None for model in baselines.values())

    def test_irn_cached_per_mask_type(self, fast_pipeline):
        irn_a = fast_pipeline.irn(mask_type=MaskType.PERSONALIZED)
        irn_b = fast_pipeline.irn(mask_type=MaskType.PERSONALIZED)
        assert irn_a is irn_b

    def test_frameworks_for_comparison_cover_all_groups(self, fast_pipeline):
        frameworks = fast_pipeline.frameworks_for_comparison()
        labels = set(frameworks)
        assert "IRN" in labels
        assert any(label.startswith("Pf2Inf") for label in labels)
        assert any(label.startswith("Vanilla") for label in labels)
        assert any(label.startswith("Rec2Inf") for label in labels)


class TestTables:
    def test_table1(self):
        config = ExperimentConfig.fast("movielens")
        config.scale = 0.2
        rows = tables.table1_dataset_statistics([config, config.with_dataset("lastfm")])
        assert len(rows) == 2
        assert all(row["users"] > 0 for row in rows)

    def test_table2(self, fast_pipeline):
        rows = tables.table2_evaluator_selection(fast_pipeline)
        assert sum(row["selected"] for row in rows) == 1

    def test_table3_structure(self, fast_pipeline):
        rows = tables.table3_main_comparison(fast_pipeline)
        frameworks = {row["framework"] for row in rows}
        assert "IRN" in frameworks
        max_length = fast_pipeline.config.max_path_length
        for row in rows:
            assert 0.0 <= row[f"SR{max_length}"] <= 1.0
        # renders without crashing
        assert "IRN" in format_table(rows)

    def test_table4_groups(self, fast_pipeline):
        rows = tables.table4_next_item(fast_pipeline)
        groups = {row["group"] for row in rows}
        assert groups == {"Next-item RS", "IRS"}
        assert any(row["method"] == "IRN" for row in rows)

    def test_table5_has_three_mask_types(self, fast_pipeline):
        rows = tables.table5_mask_ablation(fast_pipeline)
        assert len(rows) == 3

    def test_table6_includes_repro_column(self, fast_pipeline):
        rows = tables.table6_hyperparameters(fast_pipeline)
        assert all("this_repro" in row for row in rows)
        assert tables.table6_hyperparameters(None)

    def test_table7_case_study_rows(self, fast_pipeline):
        rows = tables.table7_case_study(fast_pipeline)
        assert rows[0]["role"].startswith("history")
        assert len(rows) >= 2


class TestFigures:
    def test_figure6_monotone_in_length(self, fast_pipeline):
        curves = figures.figure6_success_vs_length(fast_pipeline, lengths=(3, 8))
        assert "IRN" in curves
        for series in curves.values():
            assert series[3] <= series[8] + 1e-9

    def test_figure7_structure(self, fast_pipeline):
        sweep = figures.figure7_aggressiveness(
            fast_pipeline, rec2inf_levels=(3, 10), irn_levels=(0.0, 1.0)
        )
        assert len(sweep) == 2
        for rows in sweep.values():
            assert len(rows) == 2

    def test_figure8_distribution(self, fast_pipeline):
        data = figures.figure8_impressionability_distribution(fast_pipeline, bins=5)
        assert len(data["factors"]) == fast_pipeline.split.corpus.num_users
        assert sum(data["histogram_counts"]) == len(data["factors"])
        assert np.isfinite(data["mean"])

    def test_figure9_series(self, fast_pipeline):
        evolution = figures.figure9_stepwise_evolution(fast_pipeline)
        assert "IRN" in evolution
        for series in evolution.values():
            assert len(series["objective"]) == len(series["item"])
