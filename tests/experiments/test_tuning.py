"""Tests for the hyper-parameter grid search (§IV-D6)."""

from __future__ import annotations

import pytest

from repro.experiments.tuning import GridSearchResult, grid_search, irn_grid_search
from repro.models.bpr import BPR
from repro.models.itemknn import ItemKNN
from repro.utils.exceptions import ConfigurationError


class TestGridSearchValidation:
    def test_empty_grid_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            grid_search(BPR, tiny_split, {})

    def test_empty_values_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            grid_search(BPR, tiny_split, {"embedding_dim": []})

    def test_unknown_metric_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            grid_search(BPR, tiny_split, {"embedding_dim": [4]}, metric="accuracy")

    def test_invalid_budget_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            grid_search(BPR, tiny_split, {"embedding_dim": [4]}, max_combinations=0)

    def test_validation_loss_requires_neural_model(self, tiny_split):
        with pytest.raises(ConfigurationError):
            grid_search(
                ItemKNN,
                tiny_split,
                {"recency_window": [3]},
                metric="validation_loss",
            )

    def test_best_of_empty_result_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = GridSearchResult(metric="mrr").best


class TestGridSearchBehaviour:
    def test_evaluates_every_combination(self, tiny_split):
        result = grid_search(
            ItemKNN,
            tiny_split,
            {"recency_window": (2, 4), "recency_decay": (0.6, 1.0)},
            metric="mrr",
            max_instances=10,
        )
        assert len(result.candidates) == 4
        swept = {tuple(sorted(candidate.parameters.items())) for candidate in result.candidates}
        assert len(swept) == 4

    def test_max_combinations_caps_the_sweep(self, tiny_split):
        result = grid_search(
            ItemKNN,
            tiny_split,
            {"recency_window": (2, 3, 4, 5)},
            metric="hr",
            max_combinations=2,
            max_instances=10,
        )
        assert len(result.candidates) == 2

    def test_best_maximises_mrr(self, tiny_split):
        result = grid_search(
            BPR,
            tiny_split,
            {"embedding_dim": (4, 8)},
            metric="mrr",
            base_parameters={"epochs": 1, "seed": 0},
            max_instances=10,
        )
        best_score = max(candidate.score for candidate in result.candidates)
        assert result.best.score == pytest.approx(best_score)
        assert result.best_parameters["embedding_dim"] in {4, 8}

    def test_rows_are_sorted_best_first(self, tiny_split):
        result = grid_search(
            ItemKNN,
            tiny_split,
            {"recency_window": (2, 3, 5)},
            metric="mrr",
            max_instances=10,
        )
        rows = result.rows()
        scores = [row["mrr"] for row in rows]
        assert scores == sorted(scores, reverse=True)
        assert set(rows[0]) == {"recency_window", "mrr"}

    def test_irn_grid_search_selects_by_validation_loss(self, tiny_split):
        result = irn_grid_search(
            tiny_split,
            grid={"embedding_dim": (8,), "num_layers": (1,), "objective_weight": (0.5, 1.0)},
            base_parameters={"epochs": 1, "num_heads": 1, "max_sequence_length": 16, "seed": 0},
        )
        assert result.metric == "validation_loss"
        assert len(result.candidates) == 2
        best_score = min(candidate.score for candidate in result.candidates)
        assert result.best.score == pytest.approx(best_score)
