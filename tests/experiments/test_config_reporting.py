"""Unit tests for experiment configuration and plain-text reporting."""

import pytest

from repro.experiments.config import PAPER_HYPERPARAMETERS, ExperimentConfig
from repro.experiments.reporting import format_series, format_table
from repro.utils.exceptions import ConfigurationError


class TestExperimentConfig:
    def test_default_profiles(self):
        assert ExperimentConfig.default("movielens").dataset == "movielens"
        assert ExperimentConfig.default("lastfm").dataset == "lastfm"

    def test_fast_profile_is_smaller(self):
        default = ExperimentConfig.default()
        fast = ExperimentConfig.fast()
        assert fast.scale < default.scale
        assert fast.irn_epochs < default.irn_epochs
        assert fast.use_markov_evaluator

    def test_paper_profile_matches_table6(self):
        movielens = ExperimentConfig.paper("movielens")
        lastfm = ExperimentConfig.paper("lastfm")
        assert movielens.l_max == 60 and lastfm.l_max == 50
        assert movielens.irn_layers == 6 and lastfm.irn_layers == 5
        assert movielens.candidate_k == 50

    def test_invalid_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="netflix")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale=0)

    def test_with_dataset_copies(self):
        config = ExperimentConfig.fast("movielens")
        other = config.with_dataset("lastfm")
        assert other.dataset == "lastfm"
        assert other.scale == config.scale
        assert config.dataset == "movielens"

    def test_load_split_end_to_end(self):
        config = ExperimentConfig.fast("lastfm")
        config.scale = 0.2
        split = config.load_split()
        assert split.corpus.name == "lastfm-synthetic"
        assert split.train and split.test

    def test_paper_hyperparameter_table_structure(self):
        names = {row["name"] for row in PAPER_HYPERPARAMETERS}
        assert {"l_max", "lr", "d", "L", "w_t", "h"}.issubset(names)


class TestReporting:
    def test_format_table_alignment_and_columns(self):
        rows = [
            {"framework": "IRN", "SR20": 0.25},
            {"framework": "Rec2Inf POP", "SR20": 0.1, "extra": "x"},
        ]
        text = format_table(rows, title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "framework" in lines[1] and "SR20" in lines[1] and "extra" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title + header + rule + rows

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="Nothing")

    def test_format_series(self):
        text = format_series({"IRN": [0.1, 0.2], "POP": [0.05]}, x_label="M")
        assert "M" in text.splitlines()[0]
        assert len(text.splitlines()) == 2 + 2

    def test_format_series_empty(self):
        assert "(empty)" in format_series({})
