"""End-to-end parity of the asynchronous serving subsystem.

Acceptance contract of the async-serving PR (mirror of ``tests/shard``'s
suite for the sharding rung): for fixed request traces, ``ServingLoop``
responses are bit-identical to sequential ``next_step`` / ``plan_path``
calls on the same planner configuration — for the serial and thread
backends at 1, 2 and 4 workers, with any queue count and drain deadline.
Queueing and micro-batching change when the work happens, never the
answers.
"""

from __future__ import annotations

import pytest

from repro.evaluation.protocol import rollout_next_step
from repro.serve import ServingLoop, replay_lockstep
from repro.utils.exceptions import ConfigurationError

BACKENDS = ["serial", "thread"]
MAX_LENGTH = 5  # keep in sync with tests/serve/conftest.py


@pytest.fixture(scope="module")
def sequential_paths(serve_irn, tiny_split, serve_contexts):
    """The sequential-serving reference trace (fresh serial planner)."""
    from repro.core.beam import BeamSearchPlanner

    planner = BeamSearchPlanner(serve_irn, max_length=MAX_LENGTH).fit(tiny_split)
    return rollout_next_step(planner, serve_contexts, MAX_LENGTH)


class TestServingLoopParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_lockstep_replay_bit_identical(
        self, make_planner, serve_contexts, sequential_paths, backend, num_workers
    ):
        planner = make_planner(num_workers=num_workers, shard_backend=backend)
        with ServingLoop(planner) as loop:
            served = replay_lockstep(loop, serve_contexts, MAX_LENGTH)
        assert served == sequential_paths

    @pytest.mark.parametrize("drain_deadline", [0.0, 0.005])
    def test_parity_across_drain_deadlines(
        self, make_planner, serve_contexts, sequential_paths, drain_deadline
    ):
        planner = make_planner(num_workers=2, shard_backend="thread")
        with ServingLoop(planner, drain_deadline=drain_deadline) as loop:
            served = replay_lockstep(loop, serve_contexts, MAX_LENGTH)
        assert served == sequential_paths

    def test_queue_count_decoupled_from_planner_workers(
        self, make_planner, serve_contexts, sequential_paths
    ):
        planner = make_planner()  # serial planner, many serving queues
        with ServingLoop(planner, num_queues=3) as loop:
            served = replay_lockstep(loop, serve_contexts, MAX_LENGTH)
        assert served == sequential_paths

    def test_plan_paths_futures_match_plan_path(self, make_planner, serve_contexts):
        reference = make_planner()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in serve_contexts
        ]
        planner = make_planner(num_workers=2, shard_backend="thread")
        with ServingLoop(planner) as loop:
            futures = [
                loop.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in serve_contexts
            ]
            assert [future.result() for future in futures] == expected

    def test_mixed_kind_submissions_match_sequential(
        self, make_planner, serve_contexts, sequential_paths
    ):
        reference = make_planner()
        planner = make_planner(num_workers=2, shard_backend="thread")
        with ServingLoop(planner) as loop:
            next_futures = [
                loop.submit_next_step(history, objective, [], user_index=user)
                for history, objective, user in serve_contexts
            ]
            plan_futures = [
                loop.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in serve_contexts
            ]
            next_items = [future.result() for future in next_futures]
            plans = [future.result() for future in plan_futures]
        assert next_items == [
            reference.next_step(history, objective, [], user_index=user)
            for history, objective, user in serve_contexts
        ]
        assert plans == [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in serve_contexts
        ]

    def test_serving_stats_expose_micro_batching(self, make_planner, serve_contexts):
        planner = make_planner()
        with ServingLoop(planner, drain_deadline=0.01) as loop:
            replay_lockstep(loop, serve_contexts, MAX_LENGTH)
            stats = loop.stats()
        assert stats["served"] > 0
        assert stats["micro_batches"]["count"] >= 1
        # Lockstep rounds put many concurrent requests in the queues, so at
        # least one drain must have fused more than one request.
        assert stats["micro_batches"]["max_size"] > 1
        assert stats["queue_depth"]["max"] >= stats["micro_batches"]["max_size"]
        assert stats["service_latency"]["max_ms"] >= stats["service_latency"]["mean_ms"]

    def test_loop_requires_plan_for_requests(self):
        with pytest.raises(ConfigurationError, match="plan_for_requests"):
            ServingLoop(object())

    def test_invalid_num_queues_rejected(self, make_planner):
        with pytest.raises(ConfigurationError, match="num_queues"):
            ServingLoop(make_planner(), num_queues=0)
