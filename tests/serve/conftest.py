"""Fixtures for the asynchronous serving suite.

The backbone and contexts are session-scoped (read-only); planners are
built per test — serving mutates their caches, and the parity contract is
about fresh planners anyway.
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives

MAX_LENGTH = 5


@pytest.fixture(scope="session")
def serve_irn(tiny_split):
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=50,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="session")
def serve_contexts(tiny_split):
    instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=9)
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


@pytest.fixture()
def make_planner(serve_irn, tiny_split):
    """Factory for fresh planners sharing the package backbone."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)
        return BeamSearchPlanner(serve_irn, **kwargs).fit(tiny_split)

    return build
