"""The one stamping site: :meth:`repro.serve.api.Response.stamp`.

The in-process drain and the process transport used to duplicate the
completion-stamp logic (and its never-negative clamps); both now call
``Response.stamp``, so the unit rules AND the cross-process clock
regressions live together here.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import pytest

from repro.serve.api import Response
from repro.serve.request import ServeRequest
from repro.shard.config import fork_available

HEARTBEAT_INTERVAL = 0.05


def _envelope(**kwargs):
    kwargs.setdefault("history", (1, 2, 3))
    kwargs.setdefault("objective", 7)
    return ServeRequest.create(
        "next_step", kwargs.pop("history"), kwargs.pop("objective"), **kwargs
    )


class TestStampRules:
    def test_local_stamps_are_written_and_drain_anchor_returned(self):
        request = _envelope()
        anchor = Response.stamp(
            request,
            completed_at=10.0,
            drain_started_at=9.0,
            served_generation=3,
            batch_tag=42,
            replica_index=1,
        )
        assert anchor == 9.0
        assert request.completed_at == 10.0
        assert request.drain_started_at == 9.0
        assert request.served_generation == 3
        assert request.batch_tag == 42
        assert request.replica_index == 1

    def test_completed_at_defaults_to_now(self):
        request = _envelope()
        before = time.perf_counter()
        anchor = Response.stamp(request)
        after = time.perf_counter()
        assert before <= request.completed_at <= after
        # With no drain stamp, the trace anchor falls back to completion.
        assert anchor == request.completed_at

    def test_remote_durations_rebase_onto_the_callers_clock(self):
        request = _envelope()
        anchor = Response.stamp(
            request,
            completed_at=100.0,
            remote_queue_wait_s=0.25,
            remote_service_s=0.75,
        )
        # drain_started_at = done - max(service - queue_wait, 0)
        assert anchor == pytest.approx(99.5)
        assert request.drain_started_at == pytest.approx(99.5)
        assert request.remote_queue_wait_s == pytest.approx(0.25)
        assert request.remote_service_s == pytest.approx(0.75)

    def test_shorter_service_than_queue_wait_clamps_to_completion(self):
        """A worker that measured service < queue wait must not push the
        drain anchor past the completion instant."""
        request = _envelope()
        anchor = Response.stamp(
            request,
            completed_at=50.0,
            remote_queue_wait_s=0.9,
            remote_service_s=0.1,
        )
        assert anchor == 50.0
        assert request.drain_started_at == 50.0
        response = Response.from_envelope(request, answer=None)
        assert response.service_s == 0.0
        assert response.queue_wait_s == pytest.approx(0.9)

    def test_latency_never_negative_even_with_skewed_endpoints(self):
        """The never-negative regression, distilled: whatever durations a
        worker ships, every derived span clamps at zero."""
        request = _envelope()
        request.enqueued_at = 200.0
        Response.stamp(
            request,
            completed_at=199.0,  # adversarial: "completed before enqueued"
            remote_queue_wait_s=5.0,
            remote_service_s=1.0,
        )
        response = Response.from_envelope(request, answer=7)
        assert response.latency_s == 0.0
        assert response.queue_wait_s >= 0.0
        assert response.service_s >= 0.0

    def test_stamps_are_written_before_the_future_resolves(self):
        """Callers woken by ``future.result()`` must read a complete
        envelope — the stamping site runs before resolution."""
        request = _envelope()
        seen: "list[tuple]" = []

        def reader(future: Future) -> None:
            seen.append((request.completed_at, request.served_generation))

        request.future.add_done_callback(reader)
        Response.stamp(request, completed_at=7.0, served_generation=2)
        request.future.set_result(11)
        assert seen == [(7.0, 2)]

    def test_replica_index_untouched_when_not_supplied(self):
        request = _envelope()
        request.replica_index = 4
        Response.stamp(request, completed_at=1.0)
        assert request.replica_index == 4


@pytest.mark.skipif(not fork_available(), reason="process transport needs fork")
class TestCrossProcessClocks:
    """Regression: worker timestamps must never leak into parent latencies.

    ``time.perf_counter()`` epochs are process-local, so the transport
    ships durations only; the parent stamps ``enqueued_at`` at send and
    ``completed_at`` at receipt on its own clock.
    """

    def test_latency_is_parent_clock_and_never_negative(
        self, make_planner, serve_contexts
    ):
        from repro.distributed import RemoteReplicaSet

        with RemoteReplicaSet(
            lambda: make_planner(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
        ) as remote_set:
            requests = []
            for history, objective, user in serve_contexts:
                request = ServeRequest.create(
                    "plan_paths", history, objective, user_index=user
                )
                remote_set.enqueue(request)
                requests.append(request)
            for request in requests:
                request.future.result(timeout=30)
        for request in requests:
            # Both endpoints stamped by the parent: the difference is a real
            # elapsed time, positive regardless of the workers' clock epochs.
            assert request.completed_at is not None
            assert request.completed_at >= request.enqueued_at
            # Worker-measured durations arrive as durations and are sane.
            assert request.remote_queue_wait_s >= 0.0
            assert request.remote_service_s >= 0.0
            assert request.remote_service_s >= request.remote_queue_wait_s

    def test_open_loop_driver_reports_non_negative_latencies(
        self, make_planner, serve_contexts
    ):
        from repro.distributed import RemoteReplicaSet
        from repro.serve.driver import run_open_loop

        with RemoteReplicaSet(
            lambda: make_planner(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
        ) as remote_set:
            report = run_open_loop(
                remote_set,
                serve_contexts,
                arrival_rate=200.0,
                duration=0.5,
                seed=11,
            )
        assert report["admitted_requests"] > 0
        assert report["errored_requests"] == 0
        assert report["latency_ms"]["count"] == report["admitted_requests"]
        # The regression this suite exists for: a worker-clock timestamp
        # leaking into the latency calculation shows up as a negative or
        # wildly skewed sample.  Every percentile must be a real elapsed time.
        assert 0.0 <= report["latency_ms"]["p50"] <= report["latency_ms"]["max"]
