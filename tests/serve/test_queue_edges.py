"""Queue edge cases named by the issue: empty drain, single-request
micro-batch, a ``fit_generation`` bump racing queued requests (must replan,
not serve a stale cache), and back-pressure rejection ordering."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.serve import ServingLoop
from repro.serve.admission import AdmissionController
from repro.serve.queue import RequestQueue
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ConfigurationError, QueueFullError, ServingError

MAX_LENGTH = 5  # keep in sync with tests/serve/conftest.py


class TestEmptyDrain:
    def test_pop_all_on_empty_queue_returns_empty_batch(self):
        queue = RequestQueue(0, AdmissionController(max_queue_depth=4))
        assert queue.pop_all() == []
        assert queue.stats()["empty_drains"] == 1
        assert queue.stats()["micro_batches"] == 0

    def test_empty_batch_is_a_noop_downstream(self, make_planner):
        planner = make_planner()
        assert planner.plan_for_requests([]) == []
        loop = ServingLoop(planner)
        loop._serve_batch([])  # must not touch the planner or the stats
        assert loop.stats()["served"] == 0

    def test_start_close_without_requests_is_clean(self, make_planner):
        with ServingLoop(make_planner()) as loop:
            pass
        assert loop.stats()["served"] == 0
        # Idempotent close, and the drain threads are gone.
        loop.close()
        assert all(not thread.is_alive() for thread in loop._threads)


class TestSingleRequestMicroBatch:
    def test_single_request_matches_direct_next_step(
        self, make_planner, serve_contexts
    ):
        history, objective, user = serve_contexts[0]
        expected = make_planner().next_step(history, objective, [], user_index=user)
        planner = make_planner()
        with ServingLoop(planner) as loop:
            future = loop.submit_next_step(history, objective, [], user_index=user)
            assert future.result() == expected
            stats = loop.stats()
        assert stats["served"] == 1
        assert stats["micro_batches"]["count"] == 1
        assert stats["micro_batches"]["max_size"] == 1


class TestFitGenerationRace:
    def test_queued_request_replans_after_refit(self, tiny_split, serve_contexts):
        """A request admitted before a backbone retrain must be answered by a
        replan against the new generation, never from the stale caches."""
        irn = IRN(
            embedding_dim=16, user_dim=4, num_heads=2, num_layers=1,
            epochs=1, batch_size=32, max_sequence_length=50, seed=0,
        ).fit(tiny_split)
        planner = BeamSearchPlanner(irn, max_length=MAX_LENGTH).fit(tiny_split)
        history, objective, user = serve_contexts[0]
        # Warm every cache for the context: a repeat next_step would be a
        # pure serving-cache hit if no retrain happened.
        planner.next_step(history, objective, [], user_index=user)
        assert len(planner._step_cache) == 1
        replans_before = planner.cache_info()["serving"]["replans"]

        loop = ServingLoop(planner)  # not started: the request sits queued
        future = loop.submit_next_step(history, objective, [], user_index=user)
        irn.fit(tiny_split)  # fit_generation bump while the request is queued
        loop.start()
        item = future.result()
        loop.close()

        info = planner.cache_info()
        # The bump was honoured: the drain invalidated and replanned instead
        # of serving the pre-retrain plan.
        assert info["serving"]["replans"] == replans_before + 1
        assert planner.plan_cache.invalidations >= 1
        assert planner._backbone_generation == irn.fit_generation
        # Same data + same seed retrains to the same model, so the replanned
        # answer must equal a fresh planner's (proving it is a real plan,
        # not a dropped request).
        fresh = BeamSearchPlanner(irn, max_length=MAX_LENGTH).fit(tiny_split)
        assert item == fresh.next_step(history, objective, [], user_index=user)


class TestBackPressure:
    def test_rejection_ordering_preserves_admitted_fifo(
        self, make_planner, serve_contexts
    ):
        """Requests beyond the depth bound are rejected; the admitted ones
        are still served, in order, with sequential-identical answers."""
        reference = make_planner()
        expected = [
            reference.next_step(history, objective, [], user_index=user)
            for history, objective, user in serve_contexts[:2]
        ]
        planner = make_planner()
        loop = ServingLoop(
            planner, num_queues=1, max_queue_depth=2, admission_policy="reject"
        )
        admitted = [
            loop.submit_next_step(history, objective, [], user_index=user)
            for history, objective, user in serve_contexts[:2]
        ]
        rejected_contexts = serve_contexts[2:4]
        for history, objective, user in rejected_contexts:
            with pytest.raises(QueueFullError, match="full"):
                loop.submit_next_step(history, objective, [], user_index=user)
        stats = loop.stats()
        assert stats["admission"]["admitted"] == 2
        assert stats["admission"]["rejected"] == 2
        loop.start()
        assert [future.result() for future in admitted] == expected
        loop.close()
        # Rejected requests never entered a queue: nothing extra was served.
        assert loop.stats()["served"] == 2

    def test_block_policy_waits_for_drain(self, make_planner, serve_contexts):
        planner = make_planner()
        loop = ServingLoop(
            planner, num_queues=1, max_queue_depth=1, admission_policy="block"
        )
        history, objective, user = serve_contexts[0]
        first = loop.submit_next_step(history, objective, [], user_index=user)
        blocked_future = {}

        def producer():
            history2, objective2, user2 = serve_contexts[1]
            blocked_future["value"] = loop.submit_next_step(
                history2, objective2, [], user_index=user2
            )

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive()  # back-pressure is holding the producer
        assert loop.stats()["admission"]["blocked"] >= 1
        loop.start()  # draining frees the slot and unblocks the producer
        thread.join(timeout=5)
        assert not thread.is_alive()
        first.result()  # the queued request resolved once drained
        assert blocked_future["value"].result() == make_planner().next_step(
            serve_contexts[1][0], serve_contexts[1][1], [], user_index=serve_contexts[1][2]
        )
        loop.close()

    def test_next_step_max_length_rejected_at_submit(
        self, make_planner, serve_contexts
    ):
        """The override is rejected synchronously at admission — inside a
        drained micro-batch it would fail every batched future, not just the
        misbehaving caller's."""
        history, objective, user = serve_contexts[0]
        with ServingLoop(make_planner()) as loop:
            with pytest.raises(ConfigurationError, match="max_length"):
                loop.submit("next_step", history, objective, user_index=user, max_length=3)

    def test_bad_plan_paths_horizon_rejected_at_submit(
        self, make_planner, serve_contexts
    ):
        """A non-positive plan_paths horizon is also an admission-time error:
        admitted, it would ConfigurationError inside the drain and poison
        every co-batched future."""
        history, objective, user = serve_contexts[0]
        with ServingLoop(make_planner()) as loop:
            with pytest.raises(ConfigurationError, match="positive"):
                loop.submit_plan_paths(history, objective, user_index=user, max_length=0)
            with pytest.raises(ConfigurationError, match="integer"):
                loop.submit_plan_paths(history, objective, user_index=user, max_length="deep")
            # An innocent co-submitted request still serves normally.
            future = loop.submit_plan_paths(history, objective, user_index=user)
            assert future.result() == make_planner().plan_path(
                history, objective, user_index=user
            )

    def test_submit_after_close_raises(self, make_planner, serve_contexts):
        loop = ServingLoop(make_planner()).start()
        loop.close()
        history, objective, user = serve_contexts[0]
        with pytest.raises(ServingError, match="closed"):
            loop.submit_next_step(history, objective, [], user_index=user)

    def test_close_before_start_serves_pending_inline(
        self, make_planner, serve_contexts
    ):
        reference = make_planner()
        planner = make_planner()
        loop = ServingLoop(planner)
        futures = [
            loop.submit_next_step(history, objective, [], user_index=user)
            for history, objective, user in serve_contexts[:3]
        ]
        loop.close()  # never started: pending requests must still resolve
        assert [future.result() for future in futures] == [
            reference.next_step(history, objective, [], user_index=user)
            for history, objective, user in serve_contexts[:3]
        ]


class TestDuplicateContextWaves:
    def test_same_context_twice_in_one_batch_matches_sequential(
        self, make_planner, serve_contexts
    ):
        """plan_for_requests defers a duplicate serving context to a second
        wave, so the second request sees the first's cache effects exactly
        like sequential execution."""
        history, objective, user = serve_contexts[0]
        reference = make_planner()
        first_expected = reference.next_step(history, objective, [], user_index=user)
        second_expected = reference.next_step(
            history, objective, [first_expected], user_index=user
        )
        planner = make_planner()
        results = planner.plan_for_requests(
            [
                ("next_step", history, objective, [], user),
                ("next_step", history, objective, [first_expected], user),
            ]
        )
        assert results == [first_expected, second_expected]

    def test_request_queue_single_slot_fifo(self):
        admission = AdmissionController(max_queue_depth=8, drain_deadline=0.0)
        queue = RequestQueue(0, admission)
        for index in range(3):
            queue.put(ServeRequest.create("next_step", [1, 2], 3 + index))
        batch = queue.collect()
        assert [request.objective for request in batch] == [3, 4, 5]
        assert queue.stats()["depth"] == 0
        assert queue.stats()["micro_batch_max"] == 3
