"""Configuration surface of the serving subsystem: resolver precedence
(argument > ``REPRO_*`` env > default), validation wording, and the
admission controller's counters."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.config import (
    DEFAULT_ADMISSION_POLICY,
    DEFAULT_ARRIVAL_RATE,
    DEFAULT_DRAIN_DEADLINE,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_SERVE_DURATION,
    resolve_admission_policy,
    resolve_arrival_rate,
    resolve_drain_deadline,
    resolve_max_queue_depth,
    resolve_serve_duration,
)
from repro.utils.exceptions import ConfigurationError, QueueFullError

ENV_VARS = (
    "REPRO_MAX_QUEUE_DEPTH",
    "REPRO_ADMISSION_POLICY",
    "REPRO_DRAIN_DEADLINE",
    "REPRO_ARRIVAL_RATE",
    "REPRO_SERVE_DURATION",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENV_VARS:
        monkeypatch.delenv(var, raising=False)


class TestResolvers:
    def test_defaults(self):
        assert resolve_max_queue_depth(None) == DEFAULT_MAX_QUEUE_DEPTH
        assert resolve_admission_policy(None) == DEFAULT_ADMISSION_POLICY
        assert resolve_drain_deadline(None) == DEFAULT_DRAIN_DEADLINE
        assert resolve_arrival_rate(None) == DEFAULT_ARRIVAL_RATE
        assert resolve_serve_duration(None) == DEFAULT_SERVE_DURATION

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_QUEUE_DEPTH", "7")
        monkeypatch.setenv("REPRO_ADMISSION_POLICY", "reject")
        monkeypatch.setenv("REPRO_DRAIN_DEADLINE", "0")
        monkeypatch.setenv("REPRO_ARRIVAL_RATE", "42.5")
        monkeypatch.setenv("REPRO_SERVE_DURATION", "0.25")
        assert resolve_max_queue_depth(None) == 7
        assert resolve_admission_policy(None) == "reject"
        assert resolve_drain_deadline(None) == 0.0
        assert resolve_arrival_rate(None) == 42.5
        assert resolve_serve_duration(None) == 0.25

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_QUEUE_DEPTH", "7")
        assert resolve_max_queue_depth(3) == 3
        monkeypatch.setenv("REPRO_ADMISSION_POLICY", "reject")
        assert resolve_admission_policy("block") == "block"

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRIVAL_RATE", "")
        assert resolve_arrival_rate(None) == DEFAULT_ARRIVAL_RATE

    def test_invalid_values_raise_with_source(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="max_queue_depth"):
            resolve_max_queue_depth(0)
        with pytest.raises(ConfigurationError, match="admission_policy"):
            resolve_admission_policy("drop")
        with pytest.raises(ConfigurationError, match="drain_deadline"):
            resolve_drain_deadline(-0.5)
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            resolve_arrival_rate(0)
        with pytest.raises(ConfigurationError, match="serve_duration"):
            resolve_serve_duration("soon")
        monkeypatch.setenv("REPRO_MAX_QUEUE_DEPTH", "many")
        with pytest.raises(ConfigurationError, match="REPRO_MAX_QUEUE_DEPTH"):
            resolve_max_queue_depth(None)

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            resolve_drain_deadline(float("nan"))
        with pytest.raises(ConfigurationError, match="finite"):
            resolve_arrival_rate(float("inf"))


class TestAdmissionController:
    def test_describe_reports_resolved_knobs(self):
        controller = AdmissionController(
            max_queue_depth=5, policy="reject", drain_deadline=0.01
        )
        assert controller.describe() == {
            "max_queue_depth": 5,
            "policy": "reject",
            "drain_deadline": 0.01,
        }

    def test_reject_policy_raises_and_counts(self):
        controller = AdmissionController(max_queue_depth=1, policy="reject")
        with pytest.raises(QueueFullError, match="shard 3"):
            controller.on_full(shard=3, depth=1)
        controller.on_admitted()
        assert controller.counters() == {"admitted": 1, "rejected": 1, "blocked": 0}

    def test_block_policy_counts_blocked_once_per_request(self):
        controller = AdmissionController(max_queue_depth=1, policy="block")
        controller.on_full(shard=0, depth=1)  # must NOT raise and NOT count
        assert controller.counters()["blocked"] == 0
        controller.on_blocked()  # the queue records the blocked request once
        assert controller.counters()["blocked"] == 1
