"""Traffic drivers: deterministic Poisson traces, latency summaries, and
the open-loop report shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServingLoop, poisson_arrival_offsets, run_open_loop
from repro.serve.driver import latency_percentiles
from repro.utils.exceptions import ConfigurationError


class TestPoissonArrivals:
    def test_fixed_size_trace_is_deterministic(self):
        a = poisson_arrival_offsets(50.0, np.random.default_rng(7), num_requests=20)
        b = poisson_arrival_offsets(50.0, np.random.default_rng(7), num_requests=20)
        assert np.array_equal(a, b)
        assert a.shape == (20,)
        assert np.all(np.diff(a) > 0)

    def test_duration_trace_bounded(self):
        offsets = poisson_arrival_offsets(200.0, np.random.default_rng(0), duration=0.5)
        assert np.all(offsets < 0.5)
        # 200 req/s over 0.5 s: ~100 arrivals, generously bracketed.
        assert 40 <= offsets.size <= 200

    def test_exactly_one_mode_required(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="exactly one"):
            poisson_arrival_offsets(10.0, rng)
        with pytest.raises(ConfigurationError, match="exactly one"):
            poisson_arrival_offsets(10.0, rng, num_requests=5, duration=1.0)
        with pytest.raises(ConfigurationError, match="num_requests"):
            poisson_arrival_offsets(10.0, rng, num_requests=0)


class TestLatencyPercentiles:
    def test_empty(self):
        summary = latency_percentiles([])
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_percentile_ordering(self):
        summary = latency_percentiles(list(range(1, 101)))
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
        assert summary["max"] == 100.0


class TestOpenLoop:
    def test_report_shape_and_accounting(self, make_planner, serve_contexts):
        with ServingLoop(make_planner()) as loop:
            report = run_open_loop(
                loop,
                serve_contexts,
                arrival_rate=400.0,
                num_requests=18,
                seed=0,
            )
        assert report["offered_requests"] == 18
        assert report["admitted_requests"] + report["rejected_requests"] == 18
        assert report["throughput_rps"] > 0
        assert report["latency_ms"]["count"] == report["admitted_requests"]
        assert (
            report["latency_ms"]["p50"]
            <= report["latency_ms"]["p95"]
            <= report["latency_ms"]["p99"]
        )
        assert report["queue_depth"]["max"] >= 1
        assert report["micro_batches"]["count"] >= 1
        assert report["admission"]["policy"] in ("block", "reject")

    def test_rejections_counted_under_reject_policy(self, make_planner, serve_contexts):
        # A tiny queue and a burst far above serviceable rate: some arrivals
        # must bounce, and the report's accounting still balances.
        with ServingLoop(
            make_planner(),
            num_queues=1,
            max_queue_depth=1,
            admission_policy="reject",
            drain_deadline=0.05,
        ) as loop:
            report = run_open_loop(
                loop,
                serve_contexts,
                arrival_rate=5000.0,
                num_requests=30,
                seed=1,
            )
        assert report["rejected_requests"] > 0
        assert report["admitted_requests"] + report["rejected_requests"] == 30
        assert report["admission"]["rejected"] == report["rejected_requests"]

    def test_contexts_required(self, make_planner):
        with ServingLoop(make_planner()) as loop:
            with pytest.raises(ConfigurationError, match="context"):
                run_open_loop(loop, [], arrival_rate=10.0, num_requests=1)


class _FailingPlanner:
    """Planner stub whose every drain fails (for error-accounting tests)."""

    num_workers = 1
    max_length = 5

    def plan_for_requests(self, requests):
        raise RuntimeError("drain blew up")


class TestOpenLoopErrorAccounting:
    def test_raise_on_error_false_counts_instead_of_dying(self):
        """Satellite of the replication PR: the hot-refit bench gates on the
        errored count, so a failing drain must not kill the run — including
        through the in-flight advance() path, which resolves every tracked
        session request."""
        with ServingLoop(_FailingPlanner()) as loop:
            report = run_open_loop(
                loop,
                [((1, 2), 3, None), ((4, 5), 6, None)],
                arrival_rate=400.0,
                num_requests=12,
                seed=0,
                raise_on_error=False,
            )
        assert report["errored_requests"] == report["admitted_requests"] == 12
        assert report["latency_ms"]["count"] == 0

    def test_raise_on_error_default_propagates(self):
        with ServingLoop(_FailingPlanner()) as loop:
            with pytest.raises(RuntimeError, match="drain blew up"):
                run_open_loop(
                    loop,
                    [((1, 2), 3, None)],
                    arrival_rate=400.0,
                    num_requests=4,
                    seed=0,
                )

    def test_collect_samples_reports_per_request_generations(self, make_planner, serve_contexts):
        planner = make_planner()
        planner.serving_generation = 9
        with ServingLoop(planner) as loop:
            report = run_open_loop(
                loop,
                serve_contexts[:2],
                arrival_rate=400.0,
                num_requests=6,
                seed=0,
                collect_samples=True,
            )
        assert len(report["samples"]) == report["admitted_requests"]
        assert {sample["generation"] for sample in report["samples"]} == {9}
        assert all("offset_s" in sample and "replica" in sample for sample in report["samples"])
