"""Planner-level contract of ``BeamSearchPlanner.plan_for_requests``: the
micro-batch multiplexer answers exactly like the sequential entry points it
routes for, while fusing the planning work."""

from __future__ import annotations

import pytest

from repro.utils.exceptions import ConfigurationError


class TestSequentialEquivalence:
    def test_mixed_batch_matches_sequential_calls(self, make_planner, serve_contexts):
        reference = make_planner()
        expected = []
        requests = []
        for history, objective, user in serve_contexts[:4]:
            expected.append(reference.next_step(history, objective, [], user_index=user))
            requests.append(("next_step", history, objective, [], user))
        for history, objective, user in serve_contexts[4:7]:
            expected.append(reference.plan_path(history, objective, user_index=user))
            requests.append(("plan_paths", history, objective, (), user))
        planner = make_planner()
        assert planner.plan_for_requests(requests) == expected

    def test_horizon_override_matches_plan_path(self, make_planner, serve_contexts):
        history, objective, user = serve_contexts[0]
        reference = make_planner()
        expected = reference.plan_path(history, objective, user_index=user, max_length=3)
        planner = make_planner()
        assert planner.plan_for_requests(
            [("plan_paths", history, objective, (), user, 3)]
        ) == [expected]

    def test_progressed_sessions_match_sequential(self, make_planner, serve_contexts):
        """A lockstep round mid-session (non-empty path_so_far) is answered
        identically to per-request next_step calls."""
        reference = make_planner()
        sessions = {}
        for history, objective, user in serve_contexts[:3]:
            first = reference.next_step(history, objective, [], user_index=user)
            sessions[(tuple(history), objective, user)] = [first]
        expected = [
            reference.next_step(history, objective, sessions[(tuple(history), objective, user)], user_index=user)
            for history, objective, user in serve_contexts[:3]
        ]
        planner = make_planner()
        planner.plan_for_requests(
            [("next_step", h, o, [], u) for h, o, u in serve_contexts[:3]]
        )
        results = planner.plan_for_requests(
            [
                ("next_step", h, o, sessions[(tuple(h), o, u)], u)
                for h, o, u in serve_contexts[:3]
            ]
        )
        assert results == expected

    def test_empty_batch(self, make_planner):
        assert make_planner().plan_for_requests([]) == []

    def test_unknown_kind_rejected(self, make_planner, serve_contexts):
        history, objective, user = serve_contexts[0]
        with pytest.raises(ConfigurationError, match="kind"):
            make_planner().plan_for_requests([("stream", history, objective, [], user)])

    def test_next_step_horizon_override_rejected(self, make_planner, serve_contexts):
        """next_step has no per-request horizon (the serving cache is keyed
        by the constructor max_length); an override must error loudly, not
        silently plan to the wrong horizon."""
        history, objective, user = serve_contexts[0]
        with pytest.raises(ConfigurationError, match="max_length"):
            make_planner().plan_for_requests(
                [("next_step", history, objective, [], user, 3)]
            )


class TestFusedWork:
    def test_micro_batch_fuses_replans(self, serve_irn, make_planner, serve_contexts):
        """N cold next_step requests answered as one micro-batch must cost
        fewer transformer forwards than N sequential replans — the lockstep
        fusion win applied to serving traffic."""
        contexts = serve_contexts[:6]
        sequential_planner = make_planner(use_decoding_sessions=False)
        before = serve_irn.decode_stats.snapshot()
        for history, objective, user in contexts:
            sequential_planner.next_step(history, objective, [], user_index=user)
        sequential_forwards = serve_irn.decode_stats.snapshot()["forwards"] - before["forwards"]

        batched_planner = make_planner(use_decoding_sessions=False)
        before = serve_irn.decode_stats.snapshot()
        batched_planner.plan_for_requests(
            [("next_step", h, o, [], u) for h, o, u in contexts]
        )
        batched_forwards = serve_irn.decode_stats.snapshot()["forwards"] - before["forwards"]
        assert batched_forwards < sequential_forwards

    def test_serving_counters_match_sequential_semantics(
        self, make_planner, serve_contexts
    ):
        planner = make_planner()
        contexts = serve_contexts[:4]
        planner.plan_for_requests(
            [("next_step", h, o, [], u) for h, o, u in contexts]
        )
        info = planner.cache_info()
        assert info["serving"]["replans"] == len(contexts)
        # Serving the same round again is pure cache hits.
        planner.plan_for_requests(
            [("next_step", h, o, [], u) for h, o, u in contexts]
        )
        info = planner.cache_info()
        assert info["serving"]["served_from_plan"] == len(contexts)
