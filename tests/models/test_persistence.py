"""Tests for saving / warm-starting trained neural recommenders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.irn import IRN
from repro.models.gru4rec import GRU4Rec
from repro.utils.exceptions import NotFittedError


def _tiny_irn(**overrides):
    parameters = dict(
        embedding_dim=12,
        user_dim=4,
        num_heads=1,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=16,
        seed=0,
    )
    parameters.update(overrides)
    return IRN(**parameters)


class TestSaveWeights:
    def test_requires_fitted_model(self, tmp_path):
        with pytest.raises(NotFittedError):
            _tiny_irn().save_weights(str(tmp_path / "irn.npz"))

    def test_creates_checkpoint_file(self, tiny_split, tmp_path):
        model = _tiny_irn().fit(tiny_split)
        path = tmp_path / "irn.npz"
        model.save_weights(str(path))
        assert path.exists()
        assert path.stat().st_size > 0


class TestWarmStart:
    def test_reproduces_scores_without_training(self, tiny_split, tmp_path):
        trained = _tiny_irn().fit(tiny_split)
        path = str(tmp_path / "irn.npz")
        trained.save_weights(path)

        restored = _tiny_irn().warm_start(tiny_split, path)
        history = list(tiny_split.test[0].history)[:10]
        np.testing.assert_allclose(
            trained.score_next(history, user_index=0),
            restored.score_next(history, user_index=0),
        )
        np.testing.assert_allclose(
            trained.score_with_objective(history, tiny_split.test[0].target, user_index=0),
            restored.score_with_objective(history, tiny_split.test[0].target, user_index=0),
        )

    def test_warm_start_skips_training_history(self, tiny_split, tmp_path):
        trained = _tiny_irn().fit(tiny_split)
        path = str(tmp_path / "irn.npz")
        trained.save_weights(path)
        restored = _tiny_irn().warm_start(tiny_split, path)
        assert restored.training_history == []
        assert restored.corpus is tiny_split.corpus

    def test_works_for_other_neural_models(self, tiny_split, tmp_path):
        trained = GRU4Rec(embedding_dim=12, hidden_size=12, epochs=1, seed=0).fit(tiny_split)
        path = str(tmp_path / "gru.npz")
        trained.save_weights(path)
        restored = GRU4Rec(embedding_dim=12, hidden_size=12, epochs=1, seed=0).warm_start(
            tiny_split, path
        )
        history = list(tiny_split.test[1].history)[:8]
        np.testing.assert_allclose(
            trained.score_next(history), restored.score_next(history)
        )

    def test_mismatched_architecture_raises(self, tiny_split, tmp_path):
        trained = _tiny_irn().fit(tiny_split)
        path = str(tmp_path / "irn.npz")
        trained.save_weights(path)
        with pytest.raises(Exception):
            _tiny_irn(embedding_dim=20).warm_start(tiny_split, path)

    def test_restored_model_generates_identical_paths(self, tiny_split, tmp_path):
        trained = _tiny_irn().fit(tiny_split)
        path = str(tmp_path / "irn.npz")
        trained.save_weights(path)
        restored = _tiny_irn().warm_start(tiny_split, path)
        instance = tiny_split.test[2]
        original_path = trained.generate_path(
            list(instance.history), instance.target, user_index=instance.user_index, max_length=8
        )
        restored_path = restored.generate_path(
            list(instance.history), instance.target, user_index=instance.user_index, max_length=8
        )
        assert original_path == restored_path
