"""Tests for the ItemKNN baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.padding import PAD_INDEX
from repro.evaluation.nextitem import evaluate_next_item
from repro.models.base import model_registry
from repro.models.itemknn import ItemKNN
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def fitted_knn(tiny_split):
    return ItemKNN().fit(tiny_split)


class TestConfiguration:
    def test_registered(self):
        assert model_registry.get("itemknn") is ItemKNN

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"recency_window": 0},
            {"recency_decay": 0.0},
            {"recency_decay": 1.5},
            {"cooccurrence_radius": 0},
            {"shrinkage": -1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ItemKNN(**kwargs)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            ItemKNN().score_next([1])


class TestScoring:
    def test_scores_cover_vocabulary(self, fitted_knn, tiny_corpus):
        scores = fitted_knn.score_next([1, 2, 3])
        assert scores.shape == (tiny_corpus.vocab.size,)
        assert scores[PAD_INDEX] == -np.inf

    def test_similarity_matrix_is_symmetric(self, fitted_knn):
        similarity = fitted_knn._similarity
        np.testing.assert_allclose(similarity, similarity.T)

    def test_similarity_diagonal_is_zero(self, fitted_knn):
        assert np.all(np.diag(fitted_knn._similarity) == 0.0)

    def test_empty_history_falls_back_to_popularity(self, fitted_knn, tiny_split):
        scores = fitted_knn.score_next([])
        popularity = np.zeros_like(scores)
        for sequence in tiny_split.train:
            for item in sequence.items:
                popularity[item] += 1
        # The most popular item must be the top recommendation for an empty history.
        assert int(np.argmax(np.where(np.isfinite(scores), scores, -np.inf))) == int(
            np.argmax(popularity)
        )

    def test_recency_decay_changes_ranking_weighting(self, tiny_split):
        flat = ItemKNN(recency_decay=1.0).fit(tiny_split)
        decayed = ItemKNN(recency_decay=0.5).fit(tiny_split)
        history = list(tiny_split.test[0].history)[-5:]
        if len(set(history)) >= 2:
            scores_flat = flat.score_next(history)
            scores_decayed = decayed.score_next(history)
            assert not np.allclose(scores_flat[1:], scores_decayed[1:])

    def test_user_cooccurrence_variant_fits(self, tiny_split, tiny_corpus):
        model = ItemKNN(window_cooccurrence=False).fit(tiny_split)
        scores = model.score_next([1, 2])
        assert scores.shape == (tiny_corpus.vocab.size,)

    def test_beats_popularity_on_mrr(self, fitted_knn, tiny_split):
        from repro.models.pop import Popularity

        pop = evaluate_next_item(Popularity().fit(tiny_split), tiny_split)
        knn = evaluate_next_item(fitted_knn, tiny_split)
        # Sequential signal should help at least a little on the tiny corpus.
        assert knn.mrr >= 0.8 * pop.mrr

    def test_deterministic(self, tiny_split):
        first = ItemKNN().fit(tiny_split).score_next([1, 2, 3])
        second = ItemKNN().fit(tiny_split).score_next([1, 2, 3])
        np.testing.assert_allclose(first, second)
