"""Tests for the FPMC baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.padding import PAD_INDEX
from repro.evaluation.nextitem import evaluate_next_item
from repro.models.base import model_registry
from repro.models.fpmc import FPMC
from repro.models.pop import Popularity
from repro.utils.exceptions import NotFittedError


@pytest.fixture(scope="module")
def fitted_fpmc(tiny_split):
    return FPMC(embedding_dim=16, epochs=4, seed=0).fit(tiny_split)


class TestFPMC:
    def test_registered(self):
        assert model_registry.get("fpmc") is FPMC

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            FPMC().score_next([1, 2, 3])

    def test_scores_cover_vocabulary(self, fitted_fpmc, tiny_corpus):
        scores = fitted_fpmc.score_next([1, 2, 3], user_index=0)
        assert scores.shape == (tiny_corpus.vocab.size,)
        assert scores[PAD_INDEX] == -np.inf
        assert np.isfinite(scores[1:]).all()

    def test_scores_depend_on_last_item(self, fitted_fpmc, tiny_corpus):
        base = [1, 2]
        scores_a = fitted_fpmc.score_next(base + [3], user_index=0)
        scores_b = fitted_fpmc.score_next(base + [4], user_index=0)
        assert not np.allclose(scores_a[1:], scores_b[1:])

    def test_scores_depend_on_user(self, fitted_fpmc):
        scores_a = fitted_fpmc.score_next([1, 2, 3], user_index=0)
        scores_b = fitted_fpmc.score_next([1, 2, 3], user_index=1)
        assert not np.allclose(scores_a[1:], scores_b[1:])

    def test_empty_history_without_user_still_scores(self, fitted_fpmc, tiny_corpus):
        scores = fitted_fpmc.score_next([], user_index=None)
        assert scores.shape == (tiny_corpus.vocab.size,)

    def test_probabilities_sum_to_one(self, fitted_fpmc):
        probabilities = fitted_fpmc.probabilities([2, 3], user_index=0)
        assert probabilities[PAD_INDEX] == pytest.approx(0.0)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_training_is_deterministic_for_a_seed(self, tiny_split):
        first = FPMC(embedding_dim=8, epochs=2, seed=5).fit(tiny_split)
        second = FPMC(embedding_dim=8, epochs=2, seed=5).fit(tiny_split)
        np.testing.assert_allclose(first.item_user_factors, second.item_user_factors)

    def test_learns_better_than_random_ranking(self, fitted_fpmc, tiny_split):
        result = evaluate_next_item(fitted_fpmc, tiny_split)
        vocab_items = tiny_split.corpus.vocab.num_items
        # Random ranking would give an expected MRR around H(n)/n; FPMC after a
        # few epochs should do clearly better than 2x that bound.
        random_mrr = float(np.log(vocab_items) / vocab_items)
        assert result.mrr > 2 * random_mrr

    def test_not_worse_than_popularity_on_hit_ratio(self, fitted_fpmc, tiny_split):
        pop_result = evaluate_next_item(Popularity().fit(tiny_split), tiny_split)
        fpmc_result = evaluate_next_item(fitted_fpmc, tiny_split)
        assert fpmc_result.hit_ratio >= 0.5 * pop_result.hit_ratio
