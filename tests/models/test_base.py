"""Tests for the SequentialRecommender interface helpers (via the Markov model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.padding import PAD_INDEX
from repro.models.base import model_registry
from repro.models.pop import Popularity
from repro.utils.exceptions import ConfigurationError, NotFittedError


class TestInterfaceHelpers:
    def test_unfitted_model_raises(self):
        model = Popularity()
        with pytest.raises(NotFittedError):
            model.probabilities([1, 2])

    def test_probabilities_sum_to_one_and_exclude_padding(self, fitted_markov):
        probs = fitted_markov.probabilities([1, 2, 3])
        assert probs.shape == (fitted_markov.vocab_size,)
        assert probs[PAD_INDEX] == 0.0
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_log_probability_consistent_with_probabilities(self, fitted_markov):
        history = [1, 2, 3]
        probs = fitted_markov.probabilities(history)
        item = int(np.argmax(probs))
        assert fitted_markov.log_probability(history, item) == pytest.approx(
            np.log(probs[item]), abs=1e-9
        )

    def test_rank_of_best_item_is_one(self, fitted_markov):
        history = [2, 3]
        scores = fitted_markov.score_next(history)
        best = int(np.argmax(np.where(np.isfinite(scores), scores, -np.inf)))
        assert fitted_markov.rank_of(history, best) == 1

    def test_rank_is_between_one_and_catalog_size(self, fitted_markov):
        history = [4]
        for item in (1, 5, 10):
            rank = fitted_markov.rank_of(history, item)
            assert 1 <= rank <= fitted_markov.vocab_size - 1

    def test_top_k_returns_k_distinct_items(self, fitted_markov):
        top = fitted_markov.top_k([1, 2], 10)
        assert len(top) == 10
        assert len(set(top)) == 10
        assert PAD_INDEX not in top

    def test_top_k_respects_exclusions(self, fitted_markov):
        baseline = fitted_markov.top_k([1, 2], 5)
        excluded = fitted_markov.top_k([1, 2], 5, exclude=baseline[:2])
        assert not set(baseline[:2]) & set(excluded)

    def test_top_k_is_sorted_by_score(self, fitted_markov):
        history = [3, 4]
        scores = fitted_markov.score_next(history)
        top = fitted_markov.top_k(history, 5)
        top_scores = [scores[i] for i in top]
        assert top_scores == sorted(top_scores, reverse=True)

    def test_recommend_next_is_top1(self, fitted_markov):
        history = [5, 6]
        assert fitted_markov.recommend_next(history) == fitted_markov.top_k(history, 1)[0]

    @given(history=st.lists(st.integers(min_value=1, max_value=30), min_size=0, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_probabilities_always_valid_distribution(self, history, fitted_markov):
        probs = fitted_markov.probabilities(history)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)


class TestRegistry:
    def test_known_models_registered(self):
        for name in ("pop", "markov", "bpr", "transrec", "gru4rec", "caser", "sasrec", "bert4rec", "irn"):
            assert name in model_registry

    def test_registry_create(self, tiny_split):
        model = model_registry.create("pop")
        model.fit(tiny_split)
        assert model.top_k([1], 3)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            model_registry.get("definitely-not-a-model")
