"""Tests for the autograd-based sequential recommenders.

Training budgets are intentionally tiny (1-2 epochs on the tiny corpus); the
tests check interface contracts, learning signal (loss decreases) and basic
recommendation sanity rather than final accuracy.
"""

import numpy as np
import pytest

from repro.data.padding import PAD_INDEX
from repro.models.bert4rec import Bert4Rec
from repro.models.caser import Caser
from repro.models.gru4rec import GRU4Rec
from repro.models.sasrec import SASRec


def _tiny_kwargs():
    return dict(embedding_dim=12, epochs=2, batch_size=32, max_sequence_length=16, seed=0)


@pytest.fixture(scope="module", params=["gru4rec", "sasrec", "caser", "bert4rec"])
def fitted_neural_model(request, tiny_split):
    """Each neural model fitted once per module on the tiny split."""
    factories = {
        "gru4rec": lambda: GRU4Rec(hidden_size=12, **_tiny_kwargs()),
        "sasrec": lambda: SASRec(num_heads=2, num_layers=1, **_tiny_kwargs()),
        "caser": lambda: Caser(window=4, num_horizontal=4, num_vertical=1, **_tiny_kwargs()),
        "bert4rec": lambda: Bert4Rec(num_heads=2, num_layers=1, **_tiny_kwargs()),
    }
    return factories[request.param]().fit(tiny_split)


class TestNeuralModelContract:
    def test_score_shape_and_padding_masked(self, fitted_neural_model, tiny_split):
        scores = fitted_neural_model.score_next([1, 2, 3], user_index=0)
        assert scores.shape == (tiny_split.corpus.vocab.size,)
        assert scores[PAD_INDEX] == -np.inf
        assert np.isfinite(scores[1:]).all()

    def test_empty_history_supported(self, fitted_neural_model):
        scores = fitted_neural_model.score_next([], user_index=0)
        assert np.isfinite(scores[1:]).all()

    def test_long_history_is_truncated(self, fitted_neural_model, tiny_split):
        vocab_size = tiny_split.corpus.vocab.size
        long_history = list(np.random.default_rng(0).integers(1, vocab_size, size=200))
        scores = fitted_neural_model.score_next(long_history, user_index=0)
        assert np.isfinite(scores[1:]).all()

    def test_training_loss_decreases(self, fitted_neural_model):
        history = fitted_neural_model.training_history
        assert len(history) == 2
        assert history[-1]["train_loss"] <= history[0]["train_loss"] + 0.05

    def test_scores_depend_on_history(self, fitted_neural_model, tiny_split):
        sequences = tiny_split.train
        history_a = list(sequences[0].items[:5])
        history_b = list(sequences[1].items[:5])
        if history_a == history_b:
            pytest.skip("identical histories in tiny corpus")
        scores_a = fitted_neural_model.score_next(history_a, user_index=0)
        scores_b = fitted_neural_model.score_next(history_b, user_index=0)
        assert not np.allclose(scores_a, scores_b)

    def test_probabilities_are_normalised(self, fitted_neural_model):
        probs = fitted_neural_model.probabilities([1, 2, 3], user_index=0)
        assert probs.sum() == pytest.approx(1.0)


class TestModelSpecificBehaviour:
    def test_gru4rec_validation_loss_recorded(self, tiny_split):
        model = GRU4Rec(hidden_size=8, embedding_dim=8, epochs=1, max_sequence_length=12, seed=0)
        model.fit(tiny_split)
        assert not np.isnan(model.training_history[0]["validation_loss"])

    def test_sasrec_better_than_random_on_transitions(self, tiny_split):
        """On average the observed next item gets more mass than a random item."""
        model = SASRec(num_heads=2, num_layers=1, embedding_dim=16, epochs=4,
                       max_sequence_length=16, seed=0).fit(tiny_split)
        vocab_size = tiny_split.corpus.vocab.size
        rng = np.random.default_rng(2)
        true_mass, random_mass = [], []
        for sequence in tiny_split.train[:40]:
            items = list(sequence.items)
            if len(items) < 4:
                continue
            history, nxt = items[:-1], items[-1]
            probs = model.probabilities(history, user_index=sequence.user_index)
            true_mass.append(probs[nxt])
            random_mass.append(probs[int(rng.integers(1, vocab_size))])
        assert np.mean(true_mass) > np.mean(random_mass)

    def test_caser_uses_fixed_window(self, tiny_split):
        model = Caser(window=4, num_horizontal=2, num_vertical=1, embedding_dim=8,
                      epochs=1, max_sequence_length=12, seed=0).fit(tiny_split)
        # Only the last `window` items matter for the score.
        long_history = [1, 2, 3, 4, 5, 6, 7, 8]
        short_history = long_history[-4:]
        assert np.allclose(
            model.score_next(long_history, user_index=0),
            model.score_next(short_history, user_index=0),
        )

    def test_bert4rec_mask_token_is_out_of_vocab(self, tiny_split):
        model = Bert4Rec(num_heads=2, num_layers=1, embedding_dim=8, epochs=1,
                         max_sequence_length=12, seed=0).fit(tiny_split)
        assert model.module.mask_token == tiny_split.corpus.vocab.size
        scores = model.score_next([1, 2, 3])
        # scores cover only real vocabulary entries, not the mask token row
        assert scores.shape == (tiny_split.corpus.vocab.size,)
