"""Tests for the non-neural recommenders: POP, Markov, BPR, TransRec."""

import numpy as np
import pytest

from repro.models.bpr import BPR
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.models.transrec import TransRec


class TestPopularity:
    def test_scores_match_counts(self, tiny_split):
        model = Popularity().fit(tiny_split)
        counts = np.zeros(tiny_split.corpus.vocab.size)
        for sequence in tiny_split.train:
            for item in sequence.items:
                counts[item] += 1
        scores = model.score_next([1, 2, 3])
        assert np.allclose(scores[1:], counts[1:])
        assert scores[0] == -np.inf

    def test_history_independent(self, tiny_split):
        model = Popularity().fit(tiny_split)
        assert np.allclose(model.score_next([1]), model.score_next([5, 6, 7]))

    def test_top1_is_most_popular(self, tiny_split):
        model = Popularity().fit(tiny_split)
        counts = tiny_split.corpus.item_popularity().astype(float)
        # popularity over training sub-sequences only, so compare on the model's own counts
        assert model.recommend_next([]) == int(np.argmax(model._counts))


class TestMarkov:
    def test_predicts_observed_transitions(self, tiny_split):
        model = MarkovChainRecommender().fit(tiny_split)
        # take an observed transition from the training data
        sequence = tiny_split.train[0].items
        previous, nxt = sequence[0], sequence[1]
        probs = model.probabilities([previous])
        assert probs[nxt] > 1.0 / tiny_split.corpus.vocab.size

    def test_empty_history_falls_back_to_popularity(self, tiny_split):
        model = MarkovChainRecommender().fit(tiny_split)
        probs = model.probabilities([])
        assert probs.sum() == pytest.approx(1.0)

    def test_unseen_last_item_falls_back_to_popularity(self, tiny_split):
        model = MarkovChainRecommender().fit(tiny_split)
        size = tiny_split.corpus.vocab.size
        transitions = model._transitions
        # find an item with no outgoing transitions (or fabricate by zeroing)
        isolated = None
        for item in range(1, size):
            if transitions[item].sum() == 0:
                isolated = item
                break
        if isolated is None:
            pytest.skip("all items have outgoing transitions in this corpus")
        probs = model.probabilities([isolated])
        assert probs.sum() == pytest.approx(1.0)

    def test_depends_only_on_last_item(self, tiny_split):
        model = MarkovChainRecommender().fit(tiny_split)
        assert np.allclose(model.score_next([1, 2, 9]), model.score_next([7, 9]))


class TestBPR:
    def test_fit_and_score_shapes(self, tiny_split):
        model = BPR(embedding_dim=8, epochs=2, seed=0).fit(tiny_split)
        scores = model.score_next([1, 2], user_index=0)
        assert scores.shape == (tiny_split.corpus.vocab.size,)
        assert scores[0] == -np.inf

    def test_user_specific_scores_differ(self, tiny_split):
        model = BPR(embedding_dim=8, epochs=2, seed=0).fit(tiny_split)
        assert not np.allclose(
            model.score_next([1], user_index=0), model.score_next([1], user_index=1)
        )

    def test_fold_in_without_user(self, tiny_split):
        model = BPR(embedding_dim=8, epochs=1, seed=0).fit(tiny_split)
        scores = model.score_next([1, 2, 3], user_index=None)
        assert np.isfinite(scores[1:]).all()

    def test_ranks_training_items_above_average(self, tiny_split):
        """A user's own training items should rank better than random items on average."""
        model = BPR(embedding_dim=16, epochs=6, seed=0).fit(tiny_split)
        user_items: dict[int, set[int]] = {}
        for sequence in tiny_split.train:
            user_items.setdefault(sequence.user_index, set()).update(sequence.items)
        better, total = 0, 0
        rng = np.random.default_rng(0)
        for user, positives in list(user_items.items())[:15]:
            scores = model.score_next([], user_index=user)
            positive_mean = np.mean([scores[i] for i in list(positives)[:10]])
            random_items = rng.integers(1, tiny_split.corpus.vocab.size, size=10)
            random_mean = np.mean([scores[i] for i in random_items])
            better += positive_mean > random_mean
            total += 1
        assert better / total > 0.6


class TestTransRec:
    def test_fit_and_score(self, tiny_split):
        model = TransRec(embedding_dim=8, epochs=2, seed=0).fit(tiny_split)
        scores = model.score_next([3, 4], user_index=1)
        assert scores.shape == (tiny_split.corpus.vocab.size,)
        assert scores[0] == -np.inf

    def test_translation_depends_on_last_item(self, tiny_split):
        model = TransRec(embedding_dim=8, epochs=2, seed=0).fit(tiny_split)
        assert not np.allclose(model.score_next([1], user_index=0), model.score_next([9], user_index=0))

    def test_observed_transitions_score_above_random(self, tiny_split):
        model = TransRec(embedding_dim=16, epochs=5, seed=0).fit(tiny_split)
        rng = np.random.default_rng(1)
        wins, total = 0, 0
        for sequence in tiny_split.train[:40]:
            items = sequence.items
            if len(items) < 2:
                continue
            previous, nxt = items[-2], items[-1]
            scores = model.score_next([previous], user_index=sequence.user_index)
            random_item = int(rng.integers(1, tiny_split.corpus.vocab.size))
            wins += scores[nxt] > scores[random_item]
            total += 1
        assert wins / total > 0.55
