"""Tests for diversity metrics and the framework path report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diversity import catalog_coverage, intra_list_diversity, novelty
from repro.analysis.reports import framework_path_report, path_length_statistics
from repro.core.distance import ItemDistance
from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.evaluation.protocol import PathRecord, sample_objectives
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.utils.exceptions import ConfigurationError


def _record(path, objective=999, history=(1, 2)):
    return PathRecord(user_index=0, history=tuple(history), objective=objective, path=tuple(path))


@pytest.fixture(scope="module")
def genre_distance(tiny_corpus):
    return ItemDistance.from_genres(tiny_corpus)


@pytest.fixture(scope="module")
def generated_records(tiny_split):
    """Real path records from two cheap frameworks on the tiny corpus."""
    instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=10)
    frameworks = {
        "Vanilla Markov": VanillaInfluential(MarkovChainRecommender()).fit(tiny_split),
        "Rec2Inf POP": Rec2Inf(Popularity(), candidate_k=15).fit(tiny_split),
    }
    records = {}
    for name, recommender in frameworks.items():
        records[name] = [
            PathRecord(
                user_index=instance.user_index,
                history=instance.history,
                objective=instance.objective,
                path=tuple(
                    recommender.generate_path(
                        list(instance.history), instance.objective, max_length=8
                    )
                ),
            )
            for instance in instances
        ]
    return records


class TestDiversity:
    def test_requires_records(self, genre_distance, tiny_corpus):
        with pytest.raises(ConfigurationError):
            intra_list_diversity([], genre_distance)
        with pytest.raises(ConfigurationError):
            novelty([], tiny_corpus)
        with pytest.raises(ConfigurationError):
            catalog_coverage([], tiny_corpus)

    def test_single_item_paths_give_nan_diversity(self, genre_distance):
        assert np.isnan(intra_list_diversity([_record([3])], genre_distance))

    def test_identical_items_have_zero_diversity(self, genre_distance):
        assert intra_list_diversity([_record([3, 3, 3])], genre_distance) == pytest.approx(0.0)

    def test_diversity_monotone_in_distance(self, tiny_corpus, genre_distance):
        # Two items of the same genre vs. two items of different genres.
        matrix = tiny_corpus.item_genre_matrix
        same = diff = None
        for first in range(1, tiny_corpus.vocab.size):
            for second in range(first + 1, tiny_corpus.vocab.size):
                shared = bool((matrix[first] & matrix[second]).any())
                if shared and same is None and not (matrix[first] ^ matrix[second]).any():
                    same = (first, second)
                if not shared and diff is None:
                    diff = (first, second)
            if same and diff:
                break
        if same and diff:
            same_div = intra_list_diversity([_record(list(same))], genre_distance)
            diff_div = intra_list_diversity([_record(list(diff))], genre_distance)
            assert diff_div > same_div

    def test_novelty_higher_for_rare_items(self, tiny_corpus):
        popularity = tiny_corpus.item_popularity()
        ranked = np.argsort(popularity[1:]) + 1
        rare, common = int(ranked[0]), int(ranked[-1])
        assert novelty([_record([rare])], tiny_corpus) >= novelty(
            [_record([common])], tiny_corpus
        )

    def test_coverage_bounds(self, tiny_corpus):
        one = catalog_coverage([_record([1])], tiny_corpus)
        many = catalog_coverage(
            [_record(list(range(1, tiny_corpus.vocab.size)))], tiny_corpus
        )
        assert 0.0 < one < many <= 1.0

    def test_coverage_ignores_duplicates(self, tiny_corpus):
        assert catalog_coverage([_record([4, 4, 4])], tiny_corpus) == pytest.approx(
            1 / tiny_corpus.vocab.num_items
        )


class TestPathLengthStatistics:
    def test_requires_records(self):
        with pytest.raises(ConfigurationError):
            path_length_statistics([])

    def test_reach_and_lengths(self):
        records = [
            _record([3, 4, 999], objective=999),
            _record([5, 6], objective=999),
        ]
        statistics = path_length_statistics(records)
        assert statistics["reach_rate"] == pytest.approx(0.5)
        assert statistics["mean_length"] == pytest.approx(2.5)
        assert statistics["mean_length_on_success"] == pytest.approx(3.0)
        assert statistics["empty_paths"] == pytest.approx(0.0)

    def test_empty_paths_fraction(self):
        statistics = path_length_statistics([_record([]), _record([7])])
        assert statistics["empty_paths"] == pytest.approx(0.5)


class TestFrameworkPathReport:
    def test_requires_frameworks(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            framework_path_report({}, tiny_corpus)

    def test_one_row_per_framework(self, generated_records, tiny_corpus):
        rows = framework_path_report(generated_records, tiny_corpus)
        assert {row["framework"] for row in rows} == set(generated_records)
        for row in rows:
            assert 0.0 <= row["reach_rate"] <= 1.0
            assert 0.0 <= row["coverage"] <= 1.0
            assert "diversity" in row  # genre distance derived from the corpus

    def test_report_values_finite_where_expected(self, generated_records, tiny_corpus):
        rows = framework_path_report(generated_records, tiny_corpus)
        for row in rows:
            assert np.isfinite(row["mean_length"])
            assert np.isfinite(row["novelty_bits"])
