"""Tests for genre-level path diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.genres import (
    genre_shift_smoothness,
    genre_transition_matrix,
    genre_transition_table,
)
from repro.data.interactions import SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.evaluation.protocol import PathRecord
from repro.utils.exceptions import ConfigurationError


def _record(history, path, objective):
    return PathRecord(
        user_index=0, history=tuple(history), objective=objective, path=tuple(path)
    )


@pytest.fixture(scope="module")
def genre_corpus():
    """A hand-built corpus whose genre structure is known exactly.

    Items 1-2 are 'action', items 3-4 are 'comedy', item 5 carries both.
    """
    vocab = Vocabulary(["a", "b", "c", "d", "e"])
    matrix = np.zeros((vocab.size, 2), dtype=bool)
    matrix[1, 0] = matrix[2, 0] = True
    matrix[3, 1] = matrix[4, 1] = True
    matrix[5, 0] = matrix[5, 1] = True
    return SequenceCorpus(
        name="genre-test",
        vocab=vocab,
        user_ids=["u0"],
        user_sequences=[[1, 2, 3, 4, 5]],
        genre_names=["action", "comedy"],
        item_genre_matrix=matrix,
    )


class TestGenreTransitionTable:
    def test_rows_cover_history_path_objective(self, genre_corpus):
        record = _record([1, 2], [3, 4], objective=5)
        rows = genre_transition_table(record, genre_corpus)
        assert rows[0]["role"] == "history (last item)"
        assert rows[-1]["role"].startswith("objective")
        assert len(rows) == 1 + 2 + 1

    def test_objective_marker_reflects_reach(self, genre_corpus):
        reached = genre_transition_table(_record([1], [2, 5], objective=5), genre_corpus)
        missed = genre_transition_table(_record([1], [2, 3], objective=5), genre_corpus)
        assert reached[-1]["role"] == "objective (reached)"
        assert missed[-1]["role"] == "objective (not reached)"

    def test_genres_rendered_from_metadata(self, genre_corpus):
        rows = genre_transition_table(_record([1], [5], objective=3), genre_corpus)
        assert rows[1]["genres"] == "action, comedy"

    def test_table_on_real_corpus(self, tiny_corpus):
        record = _record(tiny_corpus.user_sequences[0][:3], tiny_corpus.user_sequences[0][3:6], 7)
        rows = genre_transition_table(record, tiny_corpus)
        assert all({"role", "item", "genres"} == set(row) for row in rows)


class TestGenreShiftSmoothness:
    def test_requires_records(self, genre_corpus):
        with pytest.raises(ConfigurationError):
            genre_shift_smoothness([], genre_corpus)

    def test_within_genre_path_is_maximally_smooth(self, genre_corpus):
        records = [_record([1], [2, 1, 2], objective=9)]
        # every step shares the 'action' genre with its predecessor
        assert genre_shift_smoothness(records, genre_corpus) == pytest.approx(1.0)

    def test_cross_genre_jumps_reduce_smoothness(self, genre_corpus):
        smooth = genre_shift_smoothness([_record([1], [2, 5, 3], objective=9)], genre_corpus)
        abrupt = genre_shift_smoothness([_record([1], [3, 1, 4], objective=9)], genre_corpus)
        assert smooth > abrupt

    def test_history_link_option(self, genre_corpus):
        record = _record([1], [3, 4], objective=9)
        with_link = genre_shift_smoothness([record], genre_corpus, include_history_link=True)
        without_link = genre_shift_smoothness([record], genre_corpus, include_history_link=False)
        # 1 -> 3 is a cross-genre jump: including it lowers the average.
        assert with_link < without_link

    def test_value_in_unit_interval(self, tiny_corpus):
        sequence = tiny_corpus.user_sequences[0]
        records = [_record(sequence[:4], sequence[4:10], objective=1)]
        value = genre_shift_smoothness(records, tiny_corpus)
        assert 0.0 <= value <= 1.0

    def test_nan_when_no_genre_metadata(self, genre_corpus):
        bare = SequenceCorpus(
            name="bare",
            vocab=genre_corpus.vocab,
            user_ids=["u0"],
            user_sequences=[[1, 2, 3]],
        )
        assert np.isnan(genre_shift_smoothness([_record([1], [2], 3)], bare))


class TestGenreTransitionMatrix:
    def test_counts_known_transitions(self, genre_corpus):
        genres, matrix = genre_transition_matrix([_record([1], [2, 3], objective=9)], genre_corpus)
        action, comedy = genres.index("action"), genres.index("comedy")
        # 1->2 action->action, 2->3 action->comedy
        assert matrix[action, action] == 1
        assert matrix[action, comedy] == 1
        assert matrix[comedy, action] == 0

    def test_multi_genre_items_count_every_pair(self, genre_corpus):
        genres, matrix = genre_transition_matrix([_record([], [5, 5], objective=9)], genre_corpus)
        # 5 carries both genres: the single transition contributes 4 cells.
        assert matrix.sum() == 4

    def test_requires_genre_metadata(self, genre_corpus):
        bare = SequenceCorpus(
            name="bare",
            vocab=genre_corpus.vocab,
            user_ids=["u0"],
            user_sequences=[[1, 2]],
        )
        with pytest.raises(ConfigurationError):
            genre_transition_matrix([_record([1], [2], 3)], bare)

    def test_matrix_shape_matches_genres(self, tiny_corpus):
        sequence = tiny_corpus.user_sequences[1]
        genres, matrix = genre_transition_matrix(
            [_record(sequence[:3], sequence[3:8], objective=1)], tiny_corpus
        )
        assert matrix.shape == (len(genres), len(genres))
        assert (matrix >= 0).all()
