"""End-to-end parity of multi-process serving with the in-process fleet.

Acceptance contract of the distributed-serving PR: with every worker at
one shared generation, :class:`~repro.distributed.RemoteReplicaSet`
responses are bit-identical to in-process (and therefore to sequential)
serving at 1, 2 and 4 workers.  Crossing a process boundary changes
*where* work happens, never what is answered.
"""

from __future__ import annotations

import pytest

from repro.distributed import RemoteReplicaSet
from repro.serve import replay_lockstep
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ConfigurationError, ServingError

from tests.distributed.conftest import HEARTBEAT_INTERVAL, MAX_LENGTH


class TestRemoteParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_lockstep_replay_bit_identical(
        self, make_factory, remote_contexts, sequential_paths, num_workers
    ):
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=num_workers,
            heartbeat_interval=HEARTBEAT_INTERVAL,
        ) as remote_set:
            served = replay_lockstep(remote_set, remote_contexts, MAX_LENGTH)
        assert served == sequential_paths

    def test_plan_paths_futures_match_plan_path(self, make_factory, remote_contexts):
        reference = make_factory()()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in remote_contexts
        ]
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            futures = [
                remote_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in remote_contexts
            ]
            answers = [future.result() for future in futures]
        assert answers == expected
        # The codec's path answers decode to plain lists, same as in-process.
        assert all(isinstance(answer, list) for answer in answers)

    def test_envelope_metadata_round_trips(self, make_factory, remote_contexts):
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            history, objective, user = remote_contexts[0]
            request = ServeRequest.create(
                "plan_paths", history, objective, user_index=user
            )
            remote_set.enqueue(request).result()
        assert request.served_generation == 1
        assert request.batch_tag is not None
        assert request.replica_index in (0, 1)

    def test_stats_keep_the_replica_set_shape(self, make_factory, remote_contexts):
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            replay_lockstep(remote_set, remote_contexts, MAX_LENGTH)
            stats = remote_set.stats()
        assert stats["num_replicas"] == 2
        assert stats["transport_kind"] == "process"
        assert stats["generation"] == 1
        assert stats["served"] >= len(remote_contexts)
        assert len(stats["replicas"]) == 2
        assert stats["admission"]["admitted"] == stats["served"]
        # Per-worker admission scopes survive into the fleet aggregate.
        assert sorted(
            entry["scope"] for entry in stats["admission"]["per_replica"]
        ) == ["worker-0", "worker-1"]
        assert stats["dispatch"]["replicas"] == 2
        transport = stats["transport"]
        assert transport["requests_sent"] == stats["served"]
        assert transport["responses"] == stats["served"]
        assert transport["redispatched"] == 0
        assert transport["duplicate_responses"] == 0
        assert [a["name"] for a in transport["artifacts"]] == ["model_weights"]

    def test_remote_errors_surface_on_the_callers_future(self, make_factory):
        """A worker-side planner failure travels back as an exception that
        names the original class — never a hung or dropped future."""
        with RemoteReplicaSet(
            make_factory(), num_replicas=1, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            # Out-of-vocabulary history: the worker's backbone raises
            # IndexError, which is outside the wire's exception allow-list
            # and therefore degrades to ServingError naming it.
            future = remote_set.submit_plan_paths([999_999], 3)
            with pytest.raises(ServingError, match="IndexError"):
                future.result(timeout=30)
            # The worker survives a failed request and keeps serving.
            assert remote_set.submit_plan_paths([1, 2], 3).result(timeout=30)

    def test_enqueue_after_close_raises(self, make_factory, remote_contexts):
        remote_set = RemoteReplicaSet(
            make_factory(), num_replicas=1, heartbeat_interval=HEARTBEAT_INTERVAL
        )
        remote_set.start()
        remote_set.close()
        history, objective, user = remote_contexts[0]
        with pytest.raises(ServingError):
            remote_set.submit_next_step(history, objective, [], user_index=user)

    def test_factory_must_be_callable_and_produce_planners(self):
        with pytest.raises(ConfigurationError, match="planner_factory"):
            RemoteReplicaSet("not-a-factory")
        with pytest.raises(ConfigurationError, match="plan_for_requests"):
            RemoteReplicaSet(lambda: object(), num_replicas=1)

    def test_close_is_idempotent_and_workers_exit(self, make_factory):
        remote_set = RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        )
        workers = [replica.worker for replica in remote_set.active_replicas()]
        remote_set.close()
        remote_set.close()
        assert all(not worker.alive() for worker in workers)
