"""Multi-tenant serving across the process transport.

The tenant contract of the multi-tenancy PR, exercised end-to-end over
real forked workers:

* every request kind (``next_step`` / ``plan_paths`` / ``rank`` /
  ``kg_path``) round-trips the wire bit-identically to calling the
  tenant's model directly in-process;
* tenant placement makes :class:`RemoteReplicaSet` the isolation
  boundary — a placed tenant's requests only ever reach its own slots'
  workers, and a tenant-scoped refit ships artifacts only to those slots.
"""

from __future__ import annotations

import pytest

from repro.distributed import RemoteReplicaSet
from repro.kg.graph import ItemKnowledgeGraph
from repro.models.markov import MarkovChainRecommender
from repro.serve.api import KGPathRequest, NextStepRequest, PlanRequest, RankRequest
from repro.tenant import TenantRegistry
from repro.utils.exceptions import ServingError

from tests.distributed.conftest import HEARTBEAT_INTERVAL, MAX_LENGTH


@pytest.fixture(scope="module")
def zoo_markov(tiny_split):
    return MarkovChainRecommender().fit(tiny_split)


@pytest.fixture(scope="module")
def zoo_graph(tiny_corpus):
    return ItemKnowledgeGraph().build(tiny_corpus)


@pytest.fixture()
def make_tenant_factory(make_factory, zoo_markov, zoo_graph):
    """A deterministic three-tenant registry factory (forked per worker)."""

    def build():
        planner_factory = make_factory()

        def factory():
            registry = TenantRegistry()
            registry.add("irs", planner_factory())
            registry.add("zoo", zoo_markov)
            registry.add("kg", zoo_graph)
            return registry

        return factory

    return build


def _tenant_traffic(remote_contexts):
    """One typed request of each kind, aimed at its tenant's model."""
    history, objective, user = remote_contexts[0]
    kg_source, kg_target = remote_contexts[1][0][-1], remote_contexts[1][1]
    return [
        NextStepRequest(
            history=history, objective=objective, user_index=user, tenant="irs"
        ),
        PlanRequest(
            history=history,
            objective=objective,
            user_index=user,
            max_length=MAX_LENGTH,
            tenant="irs",
        ),
        RankRequest(history=history, k=5, user_index=user, tenant="zoo"),
        KGPathRequest(source=kg_source, target=kg_target, tenant="kg"),
    ]


class TestRemoteTenantParity:
    def test_four_kinds_round_trip_bit_identical(
        self, make_tenant_factory, make_factory, zoo_markov, zoo_graph, remote_contexts
    ):
        requests = _tenant_traffic(remote_contexts)
        history, objective, user = remote_contexts[0]
        reference = make_factory()()
        expected = [
            reference.plan_for_requests(
                [("next_step", tuple(history), objective, (), user, None)]
            )[0],
            reference.plan_for_requests(
                [("plan_paths", tuple(history), objective, (), user, MAX_LENGTH)]
            )[0],
            zoo_markov.top_k(list(history), 5, user_index=user),
            zoo_graph.shortest_item_path(requests[3].source, requests[3].target),
        ]
        tenant_factory = make_tenant_factory()
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            tenant_factory=tenant_factory,
        ) as remote_set:
            responses = [remote_set.serve(request).result() for request in requests]
            fleet_generation = remote_set.fit_generation
        assert [response.answer for response in responses] == expected
        assert [response.tenant for response in responses] == ["irs", "irs", "zoo", "kg"]
        # Parent-clock stamps: latencies never negative across the boundary.
        assert all(response.latency_s >= 0.0 for response in responses)
        assert all(response.replica_index is not None for response in responses)
        # The planner tenant carries the fleet generation its worker was
        # pinned to; the stateless KG tenant has none to report.
        assert responses[0].served_generation == fleet_generation
        assert responses[3].served_generation is None

    def test_workers_announce_their_tenants(
        self, make_tenant_factory, make_factory
    ):
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=1,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            tenant_factory=make_tenant_factory(),
        ) as remote_set:
            [replica] = remote_set.active_replicas()
            assert replica.hello["tenants"] == ["irs", "zoo", "kg"]


class TestTenantPlacement:
    def test_placed_tenants_only_reach_their_slots(
        self, make_tenant_factory, make_factory, remote_contexts
    ):
        history, objective, user = remote_contexts[0]
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            tenant_factory=make_tenant_factory(),
            tenant_placement={"irs": (0,), "zoo": (1,), "kg": (1,)},
        ) as remote_set:
            futures = []
            for _ in range(6):
                futures.append(
                    remote_set.serve(
                        NextStepRequest(
                            history=history,
                            objective=objective,
                            user_index=user,
                            tenant="irs",
                        )
                    )
                )
            for future in futures:
                future.result()
            by_slot = {
                replica.slot: replica.stats()["completed"]
                for replica in remote_set.active_replicas()
            }
            # Every irs request landed on slot 0; its neighbour saw none.
            assert by_slot[0] == 6
            assert by_slot[1] == 0
            stats = remote_set.stats()
            assert stats["tenants"]["irs"]["placement"] == [0]
            assert stats["tenants"]["irs"]["served"] == 6
            assert stats["tenants"]["zoo"]["served"] == 0

    def test_invalid_placement_is_rejected(self, make_factory, make_tenant_factory):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="outside the fleet"):
            RemoteReplicaSet(
                make_factory(),
                num_replicas=2,
                heartbeat_interval=HEARTBEAT_INTERVAL,
                tenant_factory=make_tenant_factory(),
                tenant_placement={"irs": (5,)},
            )


class TestTenantScopedRefit:
    def test_refit_ships_artifacts_only_to_placed_slots(
        self, make_tenant_factory, make_factory, remote_contexts
    ):
        history, objective, user = remote_contexts[0]
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            tenant_factory=make_tenant_factory(),
            tenant_placement={"irs": (0,), "zoo": (1,)},
        ) as remote_set:
            report = remote_set.refit(tenants=["irs"])
            assert report["installed_slots"] == [0]
            assert report["tenants"] == ["irs"]
            # The fleet flipped as one; traffic still lands on live workers.
            answer = remote_set.serve(
                NextStepRequest(
                    history=history, objective=objective, user_index=user, tenant="irs"
                )
            ).result()
            assert answer.served_generation is not None

    def test_refit_rejects_unplaced_tenants(self, make_tenant_factory, make_factory):
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            tenant_factory=make_tenant_factory(),
            tenant_placement={"irs": (0, 1)},
        ) as remote_set:
            with pytest.raises(ServingError, match="unplaced tenant"):
                remote_set.refit(tenants=["nope"])

    def test_unscoped_refit_installs_everywhere(self, make_factory):
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
        ) as remote_set:
            report = remote_set.refit()
            assert report["installed_slots"] == [0, 1]
            assert "tenants" not in report
