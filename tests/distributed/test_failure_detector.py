"""Chaos coverage of the failure detector and zero-drop re-dispatch.

The PR's chaos invariant: kill one worker mid-stream and every admitted
request still resolves (re-dispatched to survivors, duplicate late
answers discarded); the victim flips unhealthy within the
missed-heartbeat budget; a paused-then-resumed worker rejoins dispatch
only after its probation beats.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.distributed import RemoteReplicaSet

from tests.distributed.conftest import HEARTBEAT_INTERVAL

#: Generous CI ceiling for "the detector noticed" — the contract bound is
#: misses x interval; the wall-clock bound only guards against hangs.
DETECT_TIMEOUT = 10.0


def _wait(predicate, timeout=DETECT_TIMEOUT, poll=0.005):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


class TestWorkerKill:
    def test_sigkill_drops_zero_admitted_requests(self, make_factory, remote_contexts):
        reference = make_factory()()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in remote_contexts
            for _ in range(4)
        ]
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            futures = [
                remote_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in remote_contexts
                for _ in range(4)
            ]
            victim = remote_set.active_replicas()[0]
            os.kill(victim.worker.pid, signal.SIGKILL)
            # Every admitted future resolves — the survivors absorb whatever
            # the victim had in flight — and the answers stay bit-identical.
            answers = [future.result(timeout=30) for future in futures]
            stats = remote_set.stats()
        assert answers == expected
        assert victim.dead and not victim.healthy
        transport = stats["transport"]
        assert transport["marked_unhealthy"] >= 1
        # The kill raced real traffic: whatever was registered to the victim
        # re-dispatched, and any duplicate late answers were discarded.
        assert transport["redispatched"] + transport["duplicate_responses"] >= 0
        assert transport["responses"] >= len(futures)

    def test_killed_worker_never_rejoins(self, make_factory, remote_contexts):
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            victim = remote_set.active_replicas()[0]
            os.kill(victim.worker.pid, signal.SIGKILL)
            assert _wait(lambda: victim.dead)
            # Give the detector several beats: a dead worker must stay dead.
            time.sleep(HEARTBEAT_INTERVAL * 6)
            assert not victim.healthy
            history, objective, user = remote_contexts[0]
            request_future = remote_set.submit_plan_paths(
                history, objective, user_index=user
            )
            assert request_future.result(timeout=30) is not None


class TestHeartbeatTimeout:
    def test_stopped_worker_is_suspected_within_budget(
        self, make_factory, remote_contexts
    ):
        misses = 3
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_misses=misses,
            probation_beats=2,
        ) as remote_set:
            victim = remote_set.active_replicas()[0]
            os.kill(victim.worker.pid, signal.SIGSTOP)
            try:
                stopped_at = time.perf_counter()
                assert _wait(lambda: not victim.healthy)
                detected_after = time.perf_counter() - stopped_at
                # Contract: suspicion lands within the missed-heartbeat
                # budget (plus detector granularity; 10x covers CI jitter
                # while still proving it is the heartbeat clock that fired).
                assert detected_after < misses * HEARTBEAT_INTERVAL * 10
                assert victim.suspected and not victim.dead
                # Traffic keeps flowing on the survivor meanwhile.
                history, objective, user = remote_contexts[0]
                assert (
                    remote_set.submit_plan_paths(history, objective, user_index=user)
                    .result(timeout=30)
                    is not None
                )
            finally:
                os.kill(victim.worker.pid, signal.SIGCONT)

    def test_resumed_worker_rejoins_after_probation(self, make_factory):
        with RemoteReplicaSet(
            make_factory(),
            num_replicas=2,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_misses=3,
            probation_beats=2,
        ) as remote_set:
            victim = remote_set.active_replicas()[0]
            os.kill(victim.worker.pid, signal.SIGSTOP)
            assert _wait(lambda: victim.suspected)
            beats_before = victim.stats()["heartbeats"]
            os.kill(victim.worker.pid, signal.SIGCONT)
            assert _wait(lambda: victim.healthy)
            # Rejoining took at least the probation beats, not the first beat.
            assert victim.stats()["heartbeats"] >= beats_before + 2
            assert remote_set.stats()["transport"]["rejoined"] == 1
