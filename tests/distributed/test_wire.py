"""Unit coverage of the binary wire codec (no processes involved)."""

from __future__ import annotations

import socket

import pytest

from repro.distributed import wire
from repro.distributed.wire import FrameType
from repro.serve.request import ServeRequest
from repro.utils.exceptions import (
    ConfigurationError,
    QueueFullError,
    ServingError,
    StaleGenerationError,
)


def _request(kind="next_step", **kwargs):
    kwargs.setdefault("history", (1, 2, 3))
    kwargs.setdefault("objective", 7)
    return ServeRequest.create(kind, kwargs.pop("history"), kwargs.pop("objective"), **kwargs)


class TestRequestCodec:
    def test_roundtrip_preserves_every_field(self):
        requests = [
            _request(path_so_far=(4, 5), user_index=2),
            _request(kind="plan_paths", history=(9,), objective=1, max_length=4),
            _request(user_index=None),
        ]
        payload = wire.encode_request_batch(list(enumerate(requests, start=10)))
        decoded = wire.decode_request_batch(payload)
        assert [rid for rid, _ in decoded] == [10, 11, 12]
        for (_, got), sent in zip(decoded, requests):
            assert got.kind == sent.kind
            assert got.history == sent.history
            assert got.objective == sent.objective
            assert got.path_so_far == sent.path_so_far
            assert got.user_index == sent.user_index
            assert got.max_length == sent.max_length

    def test_tenant_and_new_kinds_round_trip(self):
        requests = [
            _request(kind="rank", history=(1, 2), objective=5, path_so_far=(9,), tenant="zoo"),
            _request(kind="kg_path", history=(4,), objective=11, tenant="kg-tenant"),
            _request(tenant=None),
            _request(kind="plan_paths", max_length=3, tenant="a"),
        ]
        payload = wire.encode_request_batch(list(enumerate(requests)))
        decoded = wire.decode_request_batch(payload)
        for (_, got), sent in zip(decoded, requests):
            assert got.kind == sent.kind
            assert got.tenant == sent.tenant
            assert got.history == sent.history
            assert got.objective == sent.objective
            assert got.path_so_far == sent.path_so_far

    def test_decoded_envelope_owns_a_fresh_future(self):
        request = _request()
        payload = wire.encode_request_batch([(1, request)])
        [(_, decoded)] = wire.decode_request_batch(payload)
        assert decoded.future is not request.future
        assert not decoded.future.done()


class TestResponseCodec:
    def test_ok_roundtrip_for_both_answer_kinds(self):
        payload = wire.encode_response_batch(
            [
                wire.ResponseRecord(
                    5,
                    True,
                    answer=[3, 1, 2],
                    served_generation=4,
                    batch_tag=9,
                    queue_wait_s=0.25,
                    service_s=0.5,
                ),
                wire.ResponseRecord(
                    6, True, answer=17, served_generation=4, batch_tag=10,
                    queue_wait_s=0.0, service_s=0.125,
                ),
                wire.ResponseRecord(7, True, answer=None),
            ]
        )
        records = wire.decode_response_batch(payload)
        assert [r.request_id for r in records] == [5, 6, 7]
        assert records[0].answer == [3, 1, 2]
        assert isinstance(records[0].answer, list)
        assert records[0].served_generation == 4
        assert records[0].batch_tag == 9
        assert records[0].queue_wait_s == pytest.approx(0.25)
        assert records[0].service_s == pytest.approx(0.5)
        assert records[1].answer == 17
        assert isinstance(records[1].answer, int)
        assert records[2].answer is None

    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError("bad knob"),
            QueueFullError("queue 0 full"),
            ServingError("loop closed"),
            StaleGenerationError("generation 1 < 2"),
        ],
    )
    def test_known_exceptions_roundtrip_to_same_type(self, exc):
        record = wire.ResponseRecord(
            3, False, error_name=type(exc).__name__, error_message=str(exc)
        )
        [decoded] = wire.decode_response_batch(wire.encode_response_batch([record]))
        assert not decoded.ok
        rebuilt = wire.exception_from_record(decoded)
        assert type(rebuilt) is type(exc)
        assert str(exc) in str(rebuilt)

    def test_unknown_exception_degrades_to_serving_error_naming_it(self):
        record = wire.ResponseRecord(
            3, False, error_name="KeyError", error_message="whoops"
        )
        [decoded] = wire.decode_response_batch(wire.encode_response_batch([record]))
        rebuilt = wire.exception_from_record(decoded)
        assert isinstance(rebuilt, ServingError)
        assert "KeyError" in str(rebuilt)


class TestHeartbeatCodec:
    def test_roundtrip(self):
        hb = wire.encode_heartbeat(
            index=3,
            seq=42,
            generation=2,
            healthy=True,
            inflight=5,
            dispatched=100,
            completed=95,
            queued=4,
            latency_samples=64,
            ewma_depth=1.5,
            p95_ms=12.25,
        )
        decoded = wire.decode_heartbeat(hb)
        assert decoded.index == 3
        assert decoded.seq == 42
        assert decoded.generation == 2
        assert decoded.healthy is True
        assert decoded.inflight == 5
        assert decoded.queued == 4
        assert decoded.latency_samples == 64
        assert decoded.ewma_depth == pytest.approx(1.5)
        assert decoded.p95_ms == pytest.approx(12.25)


class TestFraming:
    def test_send_recv_roundtrip_over_a_socketpair(self):
        a, b = socket.socketpair()
        try:
            sent = wire.send_frame(a, FrameType.HEARTBEAT, b"payload")
            assert sent == wire.FRAME_HEADER.size + len("payload")
            frame_type, payload = wire.recv_frame(b)
            assert frame_type == FrameType.HEARTBEAT
            assert payload == b"payload"
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert wire.recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(wire.FRAME_HEADER.pack(100, FrameType.REQUEST_BATCH) + b"short")
            a.close()
            with pytest.raises(ServingError, match="mid-frame"):
                wire.recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_at_both_ends(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_PAYLOAD_BYTES", 64)
        a, b = socket.socketpair()
        try:
            with pytest.raises(ServingError, match="wire bound"):
                wire.send_frame(a, FrameType.REQUEST_BATCH, b"x" * 65)
            a.sendall(wire.FRAME_HEADER.pack(65, FrameType.REQUEST_BATCH))
            with pytest.raises(ServingError, match="desynchronized"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_json_frames_roundtrip(self):
        payload = wire.encode_json({"b": 2, "a": [1, None, "x"]})
        assert wire.decode_json(payload) == {"a": [1, None, "x"], "b": 2}
