"""The versioned-artifact refit across the transport.

Mirrors ``tests/replica/test_refit_race.py``'s contract at the process
boundary: train off-path, publish ``(name, generation)`` artifacts, ship
and checksum-verify them on every standby worker, flip atomically, retire
the old fleet drain-dry with zero admitted requests dropped.
"""

from __future__ import annotations

import pytest

from repro.distributed import RemoteReplicaSet
from repro.utils.exceptions import ServingError

from tests.distributed.conftest import HEARTBEAT_INTERVAL


class TestRemoteRefit:
    def test_refit_ships_artifacts_and_flips_generation(
        self, make_factory, remote_contexts
    ):
        reference = make_factory()()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in remote_contexts
        ]
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            before = [
                remote_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in remote_contexts
            ]
            report = remote_set.refit()
            after = [
                remote_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in remote_contexts
            ]
            # Zero drops: every future from both sides of the flip resolves.
            answers_before = [future.result(timeout=30) for future in before]
            answers_after = [future.result(timeout=30) for future in after]
            stats = remote_set.stats()

        assert answers_before == expected
        # The deterministic factory makes generation 2 bit-identical to 1,
        # so parity across the flip is exact (what a real redeploy of the
        # same config must guarantee).
        assert answers_after == expected
        assert report["generation_from"] == 1
        assert report["generation_to"] == 2
        assert report["num_replicas"] == 2
        assert report["train_seconds"] >= 0.0
        assert report["flip_seconds"] < 1.0
        assert [a["name"] for a in report["artifacts"]] == ["model_weights"]
        assert all(a["generation"] == 2 for a in report["artifacts"])
        assert stats["generation"] == 2
        assert stats["retired_replicas"] == 2
        assert stats["refits"] == [report]

    def test_refit_versions_generator_state_for_retrieval_planners(
        self, make_factory, remote_contexts
    ):
        from repro.retrieval.cooccurrence import CooccurrenceNeighborGenerator

        factory = make_factory(
            candidate_generator=CooccurrenceNeighborGenerator(num_candidates=8)
        )
        reference = factory()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in remote_contexts[:4]
        ]
        with RemoteReplicaSet(
            factory, num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            report = remote_set.refit()
            answers = [
                remote_set.submit_plan_paths(history, objective, user_index=user)
                .result(timeout=30)
                for history, objective, user in remote_contexts[:4]
            ]
            registry_names = [
                (meta["name"], meta["generation"])
                for meta in remote_set.registry.history()
            ]
        assert answers == expected
        assert [a["name"] for a in report["artifacts"]] == [
            "model_weights",
            "generator_state",
        ]
        # Both generations' artifacts stay addressable after the flip.
        assert registry_names == [
            ("model_weights", 1),
            ("generator_state", 1),
            ("model_weights", 2),
            ("generator_state", 2),
        ]

    def test_served_generation_is_monotone_across_the_flip(
        self, make_factory, remote_contexts
    ):
        history, objective, user = remote_contexts[0]
        with RemoteReplicaSet(
            make_factory(), num_replicas=2, heartbeat_interval=HEARTBEAT_INTERVAL
        ) as remote_set:
            first = remote_set.submit_plan_paths(
                history, objective, user_index=user
            )
            first.result(timeout=30)
            remote_set.refit()
            from repro.serve.request import ServeRequest

            request = ServeRequest.create(
                "plan_paths", history, objective, user_index=user
            )
            remote_set.enqueue(request).result(timeout=30)
        assert request.served_generation == 2

    def test_refit_after_close_raises(self, make_factory):
        remote_set = RemoteReplicaSet(
            make_factory(), num_replicas=1, heartbeat_interval=HEARTBEAT_INTERVAL
        )
        remote_set.close()
        with pytest.raises(ServingError, match="closed"):
            remote_set.refit()
