"""Unit coverage of the versioned-artifact registry and packers."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.distributed.artifacts import (
    GENERATOR_STATE,
    MODEL_WEIGHTS,
    Artifact,
    ArtifactRegistry,
    artifacts_from_planner,
    pack_generator,
    pack_state_dict,
    unpack_generator,
    unpack_state_dict,
)
from repro.utils.exceptions import ConfigurationError


class TestArtifact:
    def test_checksum_and_meta(self):
        artifact = Artifact("model_weights", 3, identity="('irn', 1)", payload=b"abc")
        assert artifact.sha256 == hashlib.sha256(b"abc").hexdigest()
        assert artifact.meta() == {
            "name": "model_weights",
            "generation": 3,
            "identity": "('irn', 1)",
            "sha256": artifact.sha256,
            "nbytes": 3,
        }


class TestArtifactRegistry:
    def test_publish_get_and_history_order(self):
        registry = ArtifactRegistry()
        first = registry.publish(Artifact("model_weights", 1, "a", b"1"))
        second = registry.publish(Artifact("generator_state", 1, "b", b"2"))
        third = registry.publish(Artifact("model_weights", 2, "c", b"3"))
        assert registry.get("model_weights", 1) is first
        assert registry.get("model_weights", 2) is third
        assert registry.for_generation(1) == [first, second]
        assert [meta["name"] for meta in registry.history()] == [
            "model_weights",
            "generator_state",
            "model_weights",
        ]
        assert len(registry) == 3

    def test_published_versions_are_immutable(self):
        registry = ArtifactRegistry()
        registry.publish(Artifact("model_weights", 1, "a", b"1"))
        with pytest.raises(ConfigurationError, match="immutable"):
            registry.publish(Artifact("model_weights", 1, "a", b"different"))

    def test_missing_version_is_loud(self):
        registry = ArtifactRegistry()
        with pytest.raises(ConfigurationError, match="no artifact"):
            registry.get("model_weights", 7)


class TestPacking:
    def test_state_dict_roundtrip_is_bit_exact(self):
        state = {
            "layer.weight": np.arange(12, dtype=np.float64).reshape(3, 4),
            "layer.bias": np.array([1.5, -2.5]),
        }
        unpacked = unpack_state_dict(pack_state_dict(state))
        assert sorted(unpacked) == sorted(state)
        for name, array in state.items():
            np.testing.assert_array_equal(unpacked[name], array)
            assert unpacked[name].dtype == array.dtype

    def test_generator_roundtrip(self):
        from repro.retrieval.cooccurrence import CooccurrenceNeighborGenerator

        generator = CooccurrenceNeighborGenerator(num_candidates=8)
        unpacked = unpack_generator(pack_generator(generator))
        assert unpacked.retrieval_key() == generator.retrieval_key()


class TestArtifactsFromPlanner:
    def test_neural_retrieval_planner_ships_both_kinds(
        self, tiny_split, remote_irn
    ):
        from repro.core.beam import BeamSearchPlanner
        from repro.retrieval.cooccurrence import CooccurrenceNeighborGenerator

        planner = BeamSearchPlanner(
            remote_irn,
            max_length=5,
            candidate_generator=CooccurrenceNeighborGenerator(num_candidates=8),
        ).fit(tiny_split)
        artifacts = artifacts_from_planner(planner, 2)
        by_name = {artifact.name: artifact for artifact in artifacts}
        assert set(by_name) == {MODEL_WEIGHTS, GENERATOR_STATE}
        assert all(artifact.generation == 2 for artifact in artifacts)
        weights = unpack_state_dict(by_name[MODEL_WEIGHTS].payload)
        reference = planner.backbone.module.state_dict()
        assert sorted(weights) == sorted(reference)
        for name in reference:
            np.testing.assert_array_equal(weights[name], reference[name])
        generator = unpack_generator(by_name[GENERATOR_STATE].payload)
        assert generator.retrieval_key() == planner.candidate_generator.retrieval_key()

    def test_stub_planner_ships_nothing(self):
        class _Stub:
            pass

        assert artifacts_from_planner(_Stub(), 1) == []
