"""Fixtures for the multi-process serving suite.

Mirrors ``tests/replica/conftest.py`` — the distributed transport's
acceptance contract is that it changes *where* replicas run (processes
instead of threads-in-process), never what they answer, so the suites
share the same tiny fitted backbone, contexts and sequential reference
trace.  The whole directory is skipped where the ``fork`` start method is
unavailable (workers receive their fitted planner by copy-on-write).
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives
from repro.shard.config import fork_available

MAX_LENGTH = 5

_IRN_KWARGS = dict(
    embedding_dim=16,
    user_dim=4,
    num_heads=2,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_sequence_length=50,
    seed=0,
)

#: A short heartbeat keeps the failure-detector tests fast without making
#: suspicion racy on a loaded CI box (budget = misses x interval).
HEARTBEAT_INTERVAL = 0.05

# Platforms without fork (the transport's one hard requirement) skip the
# whole directory at collection; the pure-codec suites still run.
collect_ignore_glob = (
    []
    if fork_available()
    else ["test_remote_*.py", "test_failure_detector.py"]
)


@pytest.fixture(scope="session")
def remote_irn(tiny_split):
    return IRN(**_IRN_KWARGS).fit(tiny_split)


@pytest.fixture(scope="session")
def remote_contexts(tiny_split):
    instances = sample_objectives(
        tiny_split, min_objective_interactions=2, max_instances=9
    )
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


@pytest.fixture()
def make_factory(remote_irn, tiny_split):
    """Factory-of-factories over the shared session backbone (cheap)."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)

        def factory():
            return BeamSearchPlanner(remote_irn, **kwargs).fit(tiny_split)

        return factory

    return build


@pytest.fixture()
def sequential_paths(remote_irn, tiny_split, remote_contexts):
    """The sequential single-planner reference trace."""
    from repro.evaluation.protocol import rollout_next_step

    planner = BeamSearchPlanner(remote_irn, max_length=MAX_LENGTH).fit(tiny_split)
    return rollout_next_step(planner, remote_contexts, MAX_LENGTH)
