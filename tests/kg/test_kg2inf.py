"""Tests for the Kg2Inf influential recommender."""

from __future__ import annotations

import pytest

from repro.core.base import influential_registry
from repro.evaluation.protocol import sample_objectives
from repro.kg.graph import ItemKnowledgeGraph
from repro.kg.kg2inf import Kg2Inf
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def kg2inf(tiny_split):
    return Kg2Inf().fit(tiny_split)


class TestConfiguration:
    def test_registered_in_influential_registry(self):
        assert influential_registry.get("kg2inf") is Kg2Inf

    def test_invalid_smoothness(self):
        with pytest.raises(ConfigurationError):
            Kg2Inf(smoothness_weight=-1.0)

    def test_invalid_interest_window(self):
        with pytest.raises(ConfigurationError):
            Kg2Inf(interest_window=0)

    def test_invalid_max_frontier(self):
        with pytest.raises(ConfigurationError):
            Kg2Inf(max_frontier=0)

    def test_requires_fit_before_use(self):
        with pytest.raises(NotFittedError):
            Kg2Inf().next_step([1, 2], 3, [])

    def test_accepts_prebuilt_graph(self, tiny_corpus, tiny_split):
        graph = ItemKnowledgeGraph().build(
            tiny_corpus, sequences=[sequence.items for sequence in tiny_split.train]
        )
        model = Kg2Inf(graph=graph).fit(tiny_split)
        assert model.graph is graph


class TestPathGeneration:
    def test_next_step_returns_unseen_item(self, kg2inf, tiny_split):
        instance = tiny_split.test[0]
        step = kg2inf.next_step(list(instance.history), instance.target, [], user_index=0)
        assert step is None or step not in instance.history

    def test_paths_respect_max_length(self, kg2inf, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=5)
        for instance in instances:
            path = kg2inf.generate_path(
                list(instance.history), instance.objective, max_length=8
            )
            assert len(path) <= 8
            if instance.objective in path:
                assert path[-1] == instance.objective

    def test_path_items_are_valid_vocabulary_indices(self, kg2inf, tiny_split, tiny_corpus):
        instance = tiny_split.test[1]
        path = kg2inf.generate_path(list(instance.history), instance.target, max_length=10)
        for item in path:
            assert 1 <= item < tiny_corpus.vocab.size

    def test_no_repeats_along_the_path(self, kg2inf, tiny_split):
        instance = tiny_split.test[2]
        path = kg2inf.generate_path(list(instance.history), instance.target, max_length=12)
        non_objective = [item for item in path if item != instance.target]
        assert len(non_objective) == len(set(non_objective))

    def test_reaches_more_objectives_than_never(self, kg2inf, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=10)
        reached = 0
        for instance in instances:
            path = kg2inf.generate_path(
                list(instance.history), instance.objective, max_length=20
            )
            reached += int(instance.objective in path)
        # The KG is connected through genre nodes, so the expansion should
        # reach at least one sampled objective within 20 steps.
        assert reached >= 1

    def test_zero_smoothness_more_aggressive_than_high_smoothness(self, tiny_split):
        aggressive = Kg2Inf(smoothness_weight=0.0).fit(tiny_split)
        cautious = Kg2Inf(smoothness_weight=5.0).fit(tiny_split)
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=8)
        aggressive_lengths, cautious_lengths = [], []
        for instance in instances:
            a_path = aggressive.generate_path(
                list(instance.history), instance.objective, max_length=20
            )
            c_path = cautious.generate_path(
                list(instance.history), instance.objective, max_length=20
            )
            if instance.objective in a_path:
                aggressive_lengths.append(len(a_path))
            if instance.objective in c_path:
                cautious_lengths.append(len(c_path))
        # The aggressive variant reaches objectives at least as often.
        assert len(aggressive_lengths) >= len(cautious_lengths)

    def test_deterministic(self, kg2inf, tiny_split):
        instance = tiny_split.test[3]
        first = kg2inf.generate_path(list(instance.history), instance.target, max_length=10)
        second = kg2inf.generate_path(list(instance.history), instance.target, max_length=10)
        assert first == second

    def test_distance_cache_reused_across_calls(self, kg2inf, tiny_split):
        instance = tiny_split.test[0]
        kg2inf.generate_path(list(instance.history), instance.target, max_length=5)
        assert instance.target in kg2inf._objective_distances
