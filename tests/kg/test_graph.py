"""Tests for the item knowledge graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import ItemKnowledgeGraph
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def kg(tiny_corpus, tiny_split):
    sequences = [sequence.items for sequence in tiny_split.train]
    return ItemKnowledgeGraph().build(tiny_corpus, sequences=sequences)


class TestConstruction:
    def test_invalid_genre_edge_weight(self):
        with pytest.raises(ConfigurationError):
            ItemKnowledgeGraph(genre_edge_weight=0.0)

    def test_node_counts(self, kg, tiny_corpus):
        assert kg.num_item_nodes == tiny_corpus.vocab.size - 1
        assert kg.num_genre_nodes == len(tiny_corpus.genre_names)

    def test_corpus_property_requires_build(self):
        with pytest.raises(ConfigurationError):
            _ = ItemKnowledgeGraph().corpus

    def test_genres_match_corpus_metadata(self, kg, tiny_corpus):
        for item in range(1, min(tiny_corpus.vocab.size, 25)):
            assert set(kg.genres_of(item)) == set(tiny_corpus.item_genres(item))

    def test_co_consumption_edges_have_weights(self, kg):
        co_edges = [
            attributes
            for _, _, attributes in kg.graph.edges(data=True)
            if attributes.get("relation") == "co_consumed"
        ]
        assert co_edges
        for attributes in co_edges:
            assert attributes["weight"] == pytest.approx(1.0 / attributes["count"])

    def test_default_uses_full_corpus_sequences(self, tiny_corpus):
        graph = ItemKnowledgeGraph().build(tiny_corpus)
        assert graph.num_item_nodes == tiny_corpus.vocab.size - 1


class TestDistances:
    def test_distance_to_self_is_zero(self, kg):
        assert kg.distance(1, 1) == 0.0

    def test_distance_symmetry(self, kg, tiny_corpus):
        rng = np.random.default_rng(0)
        items = rng.integers(1, tiny_corpus.vocab.size, size=6)
        for first, second in zip(items[:3], items[3:]):
            assert kg.distance(int(first), int(second)) == pytest.approx(
                kg.distance(int(second), int(first))
            )

    def test_triangle_inequality_on_samples(self, kg, tiny_corpus):
        rng = np.random.default_rng(1)
        for _ in range(5):
            a, b, c = (int(x) for x in rng.integers(1, tiny_corpus.vocab.size, size=3))
            d_ab, d_bc, d_ac = kg.distance(a, b), kg.distance(b, c), kg.distance(a, c)
            if np.isfinite(d_ab) and np.isfinite(d_bc):
                assert d_ac <= d_ab + d_bc + 1e-9

    def test_unknown_item_distance_is_infinite(self, kg, tiny_corpus):
        assert kg.distance(1, tiny_corpus.vocab.size + 10) == float("inf")

    def test_distances_from_matches_pointwise_distance(self, kg, tiny_corpus):
        target = 1
        table = kg.distances_from(target)
        for item in list(table)[:10]:
            assert table[item] == pytest.approx(kg.distance(item, target))

    def test_shared_genre_items_are_connected(self, kg, tiny_corpus):
        # Genre nodes connect items of the same genre even without co-consumption.
        genre = tiny_corpus.genre_names[0]
        members = [
            item
            for item in range(1, tiny_corpus.vocab.size)
            if genre in tiny_corpus.item_genres(item)
        ]
        if len(members) >= 2:
            assert np.isfinite(kg.distance(members[0], members[-1]))

    def test_shortest_item_path_endpoints(self, kg, tiny_corpus):
        source, target = 1, min(5, tiny_corpus.vocab.size - 1)
        path = kg.shortest_item_path(source, target)
        if path:
            assert path[0] == source
            assert path[-1] == target


class TestFrontier:
    def test_frontier_excludes_interest_items(self, kg, tiny_corpus):
        interest = tiny_corpus.user_sequences[0][:5]
        frontier = kg.interest_frontier(interest)
        assert not set(frontier) & set(interest)

    def test_frontier_items_share_genre_or_edge(self, kg, tiny_corpus):
        interest = tiny_corpus.user_sequences[0][:3]
        frontier = kg.interest_frontier(interest)
        for candidate in frontier[:15]:
            connected = any(
                candidate in kg.item_neighbors(item) or kg.shared_genres(candidate, item)
                for item in interest
            )
            assert connected

    def test_empty_interest_has_empty_frontier(self, kg):
        assert kg.interest_frontier([]) == []

    def test_padding_is_ignored(self, kg, tiny_corpus):
        interest = [0] + tiny_corpus.user_sequences[0][:3]
        with_padding = kg.interest_frontier(interest)
        without_padding = kg.interest_frontier(tiny_corpus.user_sequences[0][:3])
        assert with_padding == without_padding
