"""Tests for the package metadata and shared utilities."""

import logging

import numpy as np
import pytest

import repro
from repro.utils.exceptions import ConfigurationError, DataError, ReproError
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.registry import Registry
from repro.utils.rng import as_rng, derive_seed, spawn_rng


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(DataError, ReproError)


class TestRng:
    def test_as_rng_accepts_int_none_generator(self):
        generator = np.random.default_rng(3)
        assert as_rng(generator) is generator
        assert isinstance(as_rng(7), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_seed_determinism(self):
        assert as_rng(5).integers(0, 100) == as_rng(5).integers(0, 100)

    def test_spawn_rng_children_are_independent(self):
        parent = as_rng(0)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        draws = [c.integers(0, 10_000) for c in children]
        assert len(set(draws)) > 1

    def test_spawn_rng_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), 0)

    def test_derive_seed_in_range(self):
        seed = derive_seed(as_rng(1))
        assert 0 <= seed < 2**31


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("models.irn").name == "repro.models.irn"
        assert get_logger("repro.data").name == "repro.data"

    def test_set_verbosity(self):
        set_verbosity(logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.INFO)


class TestRegistry:
    def test_register_get_create(self):
        registry: Registry[object] = Registry("thing")

        @registry.register("Widget")
        class Widget:
            def __init__(self, value=1):
                self.value = value

        assert "widget" in registry
        assert registry.get("WIDGET") is Widget
        assert registry.create("widget", value=5).value == 5
        assert registry.names() == ["widget"]

    def test_duplicate_registration_rejected(self):
        registry: Registry[object] = Registry("thing")
        registry.register("a")(object)
        with pytest.raises(ConfigurationError):
            registry.register("a")(object)

    def test_unknown_name_error_lists_known(self):
        registry: Registry[object] = Registry("thing")
        registry.register("alpha")(object)
        with pytest.raises(ConfigurationError, match="alpha"):
            registry.get("beta")
