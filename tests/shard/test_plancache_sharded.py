"""Hash-partitioned plan caches: routing, capacity, merged counters, safety."""

from __future__ import annotations

import threading

import pytest

from repro.cache.memo import PlanCache, merge_cache_infos
from repro.shard.partition import shard_index
from repro.shard.plancache import ShardedPlanCache, make_plan_cache
from repro.utils.exceptions import ConfigurationError


class TestFactory:
    def test_single_shard_is_plain_cache(self):
        assert isinstance(make_plan_cache(8, 1), PlanCache)

    def test_multi_shard(self):
        cache = make_plan_cache(8, 3)
        assert isinstance(cache, ShardedPlanCache)
        assert cache.num_shards == 3


class TestRouting:
    def test_key_routes_to_stable_shard(self):
        cache = ShardedPlanCache(16, 4)
        key = ((1, 2, 3), 9, 0, 20)
        cache.put(key, ("plan",))
        owner = cache.shards[shard_index(key, 4)]
        assert key in owner
        assert cache.get(key) == ("plan",)
        assert key in cache

    def test_get_and_put_agree_with_plain_semantics(self):
        sharded = ShardedPlanCache(64, 4)
        plain = PlanCache(64)
        keys = [((i, i + 1), i % 7, None, 20) for i in range(40)]
        for i, key in enumerate(keys):
            assert sharded.get(key) is None
            sharded.put(key, i)
            plain.put(key, i)
        for i, key in enumerate(keys):
            assert sharded.get(key) == plain.get(key) == i
        assert len(sharded) == len(plain) == 40


class TestCapacity:
    def test_total_capacity_is_the_configured_maxsize(self):
        cache = ShardedPlanCache(10, 3)
        assert sum(shard.maxsize for shard in cache.shards) == 10
        for i in range(100):
            cache.put(((i,), i, None, 20), i)
        assert len(cache) <= 10

    def test_zero_maxsize_disables_every_shard(self):
        cache = ShardedPlanCache(0, 4)
        cache.put("key", "value")
        assert len(cache) == 0
        assert cache.get("key") is None

    def test_maxsize_smaller_than_shards(self):
        cache = ShardedPlanCache(1, 4)
        assert sorted(shard.maxsize for shard in cache.shards) == [0, 0, 0, 1]

    def test_min_shard_capacity_floors_every_shard(self):
        """Callers whose contract is 'every context cacheable' (the serving
        cache) lift zero-capacity shards to at least one slot."""
        cache = ShardedPlanCache(1, 4, min_shard_capacity=1)
        assert [shard.maxsize for shard in cache.shards] == [1, 1, 1, 1]
        for i in range(16):
            cache.put(((i,), i, None, 20), i)
        assert len(cache) == 4

    def test_min_shard_capacity_does_not_shrink_shares(self):
        cache = ShardedPlanCache(8, 2, min_shard_capacity=1)
        assert [shard.maxsize for shard in cache.shards] == [4, 4]

    def test_negative_min_shard_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedPlanCache(4, 2, min_shard_capacity=-1)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardedPlanCache(-1, 2)
        with pytest.raises(ConfigurationError):
            ShardedPlanCache(4, 0)


class TestCounters:
    def test_merged_counters_sum_shards(self):
        cache = ShardedPlanCache(32, 4)
        keys = [((i,), i, None, 20) for i in range(20)]
        for i, key in enumerate(keys):
            cache.get(key)  # miss
            cache.put(key, i)
            cache.get(key)  # hit
        assert cache.hits == 20 and cache.misses == 20
        info = cache.cache_info()
        assert info["hits"] == 20 and info["misses"] == 20
        assert info["hit_rate"] == 0.5
        assert info["num_shards"] == 4
        assert len(info["per_shard"]) == 4
        assert sum(shard["hits"] for shard in info["per_shard"]) == 20

    def test_one_clear_of_many_populated_shards_is_one_invalidation(self):
        cache = ShardedPlanCache(32, 4)
        for i in range(20):  # populates several shards
            cache.put(((i,), i, None, 20), i)
        populated_shards = sum(1 for shard in cache.shards if len(shard))
        assert populated_shards > 1
        cache.clear()
        assert cache.invalidations == 1  # one event, like the serial cache
        assert cache.cache_info()["invalidations"] == 1

    def test_clear_keeps_then_resets_stats(self):
        cache = ShardedPlanCache(8, 2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1 and cache.invalidations == 1
        cache.clear(reset_stats=True)
        assert cache.hits == 0 and cache.misses == 0 and cache.invalidations == 0

    def test_merge_cache_infos_recomputes_hit_rate(self):
        a = PlanCache(4)
        b = PlanCache(4)
        a.put("x", 1)
        a.get("x")
        b.get("missing")
        merged = merge_cache_infos([a.cache_info(), b.cache_info()])
        assert merged["hits"] == 1 and merged["misses"] == 1
        assert merged["hit_rate"] == 0.5
        assert merged["maxsize"] == 8


class TestThreadSafety:
    def test_concurrent_hammer_loses_no_counter_updates(self):
        """The satellite contract: lock-guarded hit/miss/eviction updates."""
        cache = ShardedPlanCache(64, 2)
        per_thread = 500
        num_threads = 4

        def hammer(thread_id: int) -> None:
            for i in range(per_thread):
                key = ((thread_id, i % 10), 0, None, 20)
                cache.get(key)
                cache.put(key, i)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.hits + cache.misses == num_threads * per_thread

    def test_plain_cache_concurrent_eviction_consistent(self):
        cache = PlanCache(8)
        per_thread = 400

        def hammer(thread_id: int) -> None:
            for i in range(per_thread):
                cache.put((thread_id, i), i)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 8
        # Every insert beyond the bound evicted exactly one entry.
        assert cache.evictions == 4 * per_thread - 8
