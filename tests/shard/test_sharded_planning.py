"""End-to-end parity of the sharded execution subsystem.

Acceptance contract of the sharding PR: sharded execution — thread and
process backends, any ``num_workers``, any ``vocab_shards`` — produces
bit-identical plans, ranks and metrics to the serial path, across the
planner, the IRS evaluation protocol and the next-item evaluation.
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.nextitem import evaluate_next_item
from repro.evaluation.protocol import IRSEvaluationProtocol
from repro.shard.config import fork_available
from repro.utils.exceptions import ConfigurationError

BACKENDS = ["serial", "thread"] + (["process"] if fork_available() else [])


@pytest.fixture(scope="module")
def shard_irn(tiny_split):
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=50,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="module")
def contexts(tiny_split):
    from repro.evaluation.protocol import sample_objectives

    instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=9)
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


def _plan_args(contexts):
    return (
        [c[0] for c in contexts],
        [c[1] for c in contexts],
        [c[2] for c in contexts],
    )


@pytest.fixture(scope="module")
def serial_plans(shard_irn, tiny_split, contexts):
    planner = BeamSearchPlanner(shard_irn, num_workers=1).fit(tiny_split)
    return planner.plan_paths_batch(*_plan_args(contexts), max_length=5)


class TestShardedPlannerParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_plans_bit_identical_across_backends(
        self, shard_irn, tiny_split, contexts, serial_plans, backend, num_workers
    ):
        planner = BeamSearchPlanner(
            shard_irn, num_workers=num_workers, shard_backend=backend
        ).fit(tiny_split)
        plans = planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        assert plans == serial_plans

    @pytest.mark.parametrize("vocab_shards", [2, 3, 7])
    def test_vocab_sharded_plans_identical(
        self, shard_irn, tiny_split, contexts, serial_plans, vocab_shards
    ):
        planner = BeamSearchPlanner(shard_irn, vocab_shards=vocab_shards).fit(tiny_split)
        plans = planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        assert plans == serial_plans

    def test_combined_worker_and_vocab_sharding(
        self, shard_irn, tiny_split, contexts, serial_plans
    ):
        planner = BeamSearchPlanner(
            shard_irn, num_workers=3, shard_backend="thread", vocab_shards=4
        ).fit(tiny_split)
        plans = planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        assert plans == serial_plans

    def test_sharded_cache_serves_second_call(self, shard_irn, tiny_split, contexts):
        planner = BeamSearchPlanner(
            shard_irn, num_workers=2, shard_backend="thread"
        ).fit(tiny_split)
        first = planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        before = shard_irn.decode_stats.snapshot()
        second = planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        after = shard_irn.decode_stats.snapshot()
        assert first == second
        assert after["tokens_encoded"] == before["tokens_encoded"]
        info = planner.cache_info()
        assert info["plan_cache"]["hits"] == len(contexts)
        assert info["sharding"]["num_workers"] == 2

    def test_worker_shard_owns_its_cache_shard(self, shard_irn, tiny_split, contexts):
        """The no-invalidation-traffic invariant: a context's plan is
        memoised in the shard owned by the worker that planned it."""
        from repro.shard.partition import shard_index

        planner = BeamSearchPlanner(shard_irn, num_workers=4).fit(tiny_split)
        planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        for history, objective, user in contexts:
            key = (tuple(history), objective, user, 5, planner._retrieval_key())
            owner = planner.plan_cache.shards[shard_index(key, 4)]
            assert key in owner

    def test_retrain_invalidates_every_shard(self, tiny_split, contexts):
        irn = IRN(
            embedding_dim=16, user_dim=4, num_heads=2, num_layers=1,
            epochs=1, batch_size=32, max_sequence_length=50, seed=0,
        ).fit(tiny_split)
        planner = BeamSearchPlanner(irn, num_workers=2).fit(tiny_split)
        planner.plan_paths_batch(*_plan_args(contexts), max_length=5)
        assert len(planner.plan_cache) > 0
        irn.fit(tiny_split)  # fit_generation bump, checked locally per shard
        planner.plan_paths_batch(*_plan_args(contexts[:1]), max_length=5)
        # One retrain = one invalidation event (facade-level, like the
        # serial cache), and every shard's entries were dropped.
        assert planner.plan_cache.invalidations == 1
        assert len(planner.plan_cache) == 1  # only the replanned context

    def test_env_forced_workers(self, shard_irn, tiny_split, contexts, serial_plans, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "thread")
        planner = BeamSearchPlanner(shard_irn).fit(tiny_split)
        assert planner.num_workers == 2
        assert planner.shard_backend == "thread"
        assert planner.plan_paths_batch(*_plan_args(contexts), max_length=5) == serial_plans

    def test_step_cache_shards_keep_at_least_one_slot(self, shard_irn):
        """A serving cache smaller than the worker count must not leave any
        hash shard capacity-0 (that slice of the context space would replan
        on every next_step call)."""
        planner = BeamSearchPlanner(shard_irn, step_cache_size=1, num_workers=4)
        assert all(shard.maxsize >= 1 for shard in planner._step_cache.shards)

    def test_invalid_configuration_rejected(self, shard_irn):
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(shard_irn, num_workers=0)
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(shard_irn, shard_backend="gpu")
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(shard_irn, vocab_shards=0)


class TestShardedProtocolParity:
    @pytest.fixture(scope="class")
    def protocols(self, tiny_split, markov_evaluator):
        def build(num_workers, backend=None):
            return IRSEvaluationProtocol(
                tiny_split,
                markov_evaluator,
                max_length=4,
                min_objective_interactions=2,
                max_instances=8,
                num_workers=num_workers,
                shard_backend=backend,
            )

        return build

    @pytest.fixture(scope="class")
    def shard_planner(self, shard_irn, tiny_split):
        return BeamSearchPlanner(shard_irn, max_length=4).fit(tiny_split)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generate_records_parity(self, protocols, shard_planner, backend):
        serial = protocols(1).generate_records(shard_planner)
        shard_planner.invalidate_caches()
        sharded = protocols(3, backend).generate_records(shard_planner)
        assert sharded == serial

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generate_records_stepwise_parity(self, protocols, shard_planner, backend):
        shard_planner.invalidate_caches()
        serial = protocols(1).generate_records_stepwise(shard_planner)
        shard_planner.invalidate_caches()
        sharded = protocols(2, backend).generate_records_stepwise(shard_planner)
        assert sharded == serial

    def test_evaluate_metrics_identical(self, protocols, shard_planner):
        shard_planner.invalidate_caches()
        serial = protocols(1).evaluate(shard_planner)
        shard_planner.invalidate_caches()
        sharded = protocols(2, "thread").evaluate(shard_planner)
        assert sharded.as_row() == serial.as_row()

    def test_rollout_chunk_size_validated(self, tiny_split, markov_evaluator):
        with pytest.raises(ConfigurationError, match="rollout_chunk_size"):
            IRSEvaluationProtocol(tiny_split, markov_evaluator, rollout_chunk_size=0)

    def test_chunked_sharded_rollout_matches_unchunked(
        self, tiny_split, markov_evaluator, shard_planner
    ):
        shard_planner.invalidate_caches()
        unchunked = IRSEvaluationProtocol(
            tiny_split, markov_evaluator, max_length=4,
            min_objective_interactions=2, max_instances=8,
            rollout_chunk_size=64, num_workers=1,
        ).generate_records(shard_planner)
        shard_planner.invalidate_caches()
        chunked = IRSEvaluationProtocol(
            tiny_split, markov_evaluator, max_length=4,
            min_objective_interactions=2, max_instances=8,
            rollout_chunk_size=2, num_workers=2, shard_backend="thread",
        ).generate_records(shard_planner)
        assert chunked == unchunked


class TestShardedNextItemParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ranks_and_metrics_identical(self, fitted_markov, tiny_split, backend):
        serial = evaluate_next_item(fitted_markov, tiny_split, max_instances=20)
        sharded = evaluate_next_item(
            fitted_markov, tiny_split, max_instances=20,
            num_workers=3, shard_backend=backend,
        )
        assert sharded == serial

    def test_irn_backed_parity(self, shard_irn, tiny_split):
        serial = evaluate_next_item(shard_irn, tiny_split, max_instances=12)
        sharded = evaluate_next_item(
            shard_irn, tiny_split, max_instances=12, num_workers=2, shard_backend="thread"
        )
        assert sharded == serial
