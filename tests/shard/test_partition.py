"""Deterministic hashing and partitioning of the shard subsystem."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.shard.partition import context_key, partition_indices, shard_index, stable_hash
from repro.utils.exceptions import ConfigurationError


class TestStableHash:
    def test_deterministic_within_process(self):
        key = ((1, 2, 3), 7, 4)
        assert stable_hash(key) == stable_hash(key)

    def test_distinct_keys_differ(self):
        assert stable_hash(((1, 2), 3, 0)) != stable_hash(((1, 2), 3, 1))

    def test_deterministic_across_interpreters(self):
        """The shard of a context must not depend on PYTHONHASHSEED."""
        import os
        import pathlib

        key = ((5, 9, 1), 12, None)
        expected = stable_hash(key)
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        script = (
            "from repro.shard.partition import stable_hash;"
            f"print(stable_hash({key!r}))"
        )
        for seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(repo_root / "src")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            assert int(out.stdout.strip()) == expected

    def test_64_bit_range(self):
        assert 0 <= stable_hash(("x",)) < 2**64


class TestShardIndex:
    def test_single_shard_is_always_zero(self):
        assert shard_index(("any", "key"), 1) == 0

    def test_in_range(self):
        for shards in (2, 3, 7):
            for key in range(50):
                assert 0 <= shard_index((key,), shards) < shards

    def test_covers_all_shards_eventually(self):
        hit = {shard_index(((i,), i, i), 4) for i in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_index(("k",), 0)


class TestContextKey:
    def test_normalises_history_to_int_tuple(self):
        import numpy as np

        key = context_key(np.asarray([1, 2]), np.int64(3), np.int64(4))
        assert key == ((1, 2), 3, 4)
        assert all(type(item) is int for item in key[0])

    def test_preserves_none(self):
        assert context_key([1], None, None) == ((1,), None, None)

    def test_equal_contexts_hash_equal(self):
        import numpy as np

        a = context_key([1, 2], 3, 4)
        b = context_key((np.int64(1), np.int64(2)), np.int64(3), 4)
        assert stable_hash(a) == stable_hash(b)


class TestPartitionIndices:
    def test_round_trip_covers_all_positions(self):
        keys = [((i,), i % 5, None) for i in range(37)]
        shards = partition_indices(keys, 4)
        flat = sorted(position for indices in shards for position in indices)
        assert flat == list(range(37))

    def test_within_shard_order_preserved(self):
        keys = [((i,), 0, None) for i in range(20)]
        for indices in partition_indices(keys, 3):
            assert indices == sorted(indices)

    def test_same_key_same_shard(self):
        keys = [((1, 2), 3, 4), ((9,), 9, 9), ((1, 2), 3, 4)]
        shards = partition_indices(keys, 8)
        owner = {pos: shard for shard, indices in enumerate(shards) for pos in indices}
        assert owner[0] == owner[2]
