"""Backend behaviour and configuration surface of :class:`ShardedExecutor`."""

from __future__ import annotations

import threading

import pytest

from repro.shard.config import (
    fork_available,
    resolve_num_workers,
    resolve_shard_backend,
    resolve_vocab_shards,
)
from repro.shard.executor import ShardedExecutor
from repro.utils.exceptions import ConfigurationError

BACKENDS = ["serial", "thread"] + (["process"] if fork_available() else [])


def double_shard(shard: int, items: list) -> list:
    return [(shard, item * 2) for item in items]


class TestConfigResolution:
    def test_defaults(self, monkeypatch):
        # Neutralise any fleet-wide forcing (the CI matrix exports
        # REPRO_NUM_WORKERS=2) — this test pins the built-in defaults.
        for var in ("REPRO_NUM_WORKERS", "REPRO_SHARD_BACKEND", "REPRO_VOCAB_SHARDS"):
            monkeypatch.delenv(var, raising=False)
        assert resolve_num_workers(None) == 1
        assert resolve_shard_backend(None, num_workers=1) == "serial"
        assert resolve_shard_backend(None, num_workers=3) == "thread"
        assert resolve_vocab_shards(None) == 1

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "serial")
        monkeypatch.setenv("REPRO_VOCAB_SHARDS", "5")
        assert resolve_num_workers(None) == 3
        assert resolve_shard_backend(None, num_workers=3) == "serial"
        assert resolve_vocab_shards(None) == 5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        assert resolve_num_workers(2) == 2

    def test_invalid_values_raise_with_source(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="num_workers"):
            resolve_num_workers(0)
        with pytest.raises(ConfigurationError, match="vocab_shards"):
            resolve_vocab_shards(-2)
        with pytest.raises(ConfigurationError, match="shard_backend"):
            resolve_shard_backend("fibers")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "two")
        with pytest.raises(ConfigurationError, match="REPRO_NUM_WORKERS"):
            resolve_num_workers(None)

    def test_executor_validates_backend(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(2, "greenlets")


class TestMapPartitioned:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_results_align_with_items(self, backend, num_workers):
        executor = ShardedExecutor(num_workers, backend)
        items = list(range(23))
        keys = [((i,), i, None) for i in items]
        results = executor.map_partitioned(items, keys, double_shard)
        assert [value for _, value in results] == [i * 2 for i in items]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree(self, backend):
        items = list(range(17))
        keys = [((i, i), None, i % 3) for i in items]
        serial = ShardedExecutor(3, "serial").map_partitioned(items, keys, double_shard)
        other = ShardedExecutor(3, backend).map_partitioned(items, keys, double_shard)
        assert serial == other

    def test_single_worker_runs_inline(self):
        executor = ShardedExecutor(1, "serial")
        thread_ids = []

        def record(shard: int, items: list) -> list:
            thread_ids.append(threading.get_ident())
            return items

        assert executor.map_partitioned([1, 2], ["a", "b"], record) == [1, 2]
        assert thread_ids == [threading.get_ident()]

    def test_empty_items(self):
        executor = ShardedExecutor(2, "thread")
        assert executor.map_partitioned([], [], double_shard) == []

    def test_key_count_mismatch(self):
        executor = ShardedExecutor(2, "serial")
        with pytest.raises(ConfigurationError, match="partition keys"):
            executor.map_partitioned([1, 2], ["only-one"], double_shard)

    def test_shard_result_count_mismatch(self):
        executor = ShardedExecutor(2, "serial")
        items = list(range(8))
        keys = [((i,), i, None) for i in items]
        with pytest.raises(ConfigurationError, match="results"):
            executor.map_partitioned(items, keys, lambda shard, its: its[:-1])

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_process_backend_isolates_worker_state(self):
        """Mutations made inside fork children must not leak back."""
        executor = ShardedExecutor(2, "process")
        state = {"mutated": False}

        def mutate(shard: int, items: list) -> list:
            state["mutated"] = True
            return items

        items = list(range(6))
        keys = [((i,), None, None) for i in items]
        assert executor.map_partitioned(items, keys, mutate) == items
        assert state["mutated"] is False

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_process_backend_degrades_inline_when_other_threads_alive(self, caplog):
        """Forking with live threads could copy a mid-operation lock into
        the children in the locked state; the dispatch must degrade to
        in-thread execution (identical results) instead."""
        import logging

        executor = ShardedExecutor(2, "process")
        items = list(range(6))
        keys = [((i,), None, None) for i in items]
        state = {"mutated": False}

        def mutate(shard: int, its: list) -> list:
            state["mutated"] = True
            return its

        results = {}

        def dispatch():
            results["value"] = executor.map_partitioned(items, keys, mutate)

        worker = threading.Thread(target=dispatch)
        with caplog.at_level(logging.WARNING, logger="repro.shard.executor"):
            worker.start()
            worker.join()
        assert results["value"] == items
        # In-thread execution is observable: the parent's state mutated
        # (fork children could never write it back).
        assert state["mutated"] is True
        assert any("fork" in record.message for record in caplog.records)

    def test_process_backend_unavailable_is_config_error(self, monkeypatch):
        import repro.shard.config as shard_config

        monkeypatch.setattr(shard_config, "fork_available", lambda: False)
        with pytest.raises(ConfigurationError, match="fork"):
            shard_config.resolve_shard_backend("process")


class TestRunShards:
    def test_empty_tasks(self):
        assert ShardedExecutor(2, "thread").run_shards([], double_shard) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_task_order_preserved(self, backend):
        executor = ShardedExecutor(4, backend)
        tasks = [(shard, [shard]) for shard in range(4)]
        results = executor.run_shards(tasks, double_shard)
        assert results == [[(shard, shard * 2)] for shard in range(4)]


class TestFuturesAPI:
    """The asynchronous boundary grown for the serving subsystem."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_shards_async_matches_run_shards(self, backend):
        executor = ShardedExecutor(4, backend)
        tasks = [(shard, [shard]) for shard in range(4)]
        futures = executor.run_shards_async(tasks, double_shard)
        assert [future.result() for future in futures] == executor.run_shards(
            tasks, double_shard
        )

    def test_empty_tasks_async(self):
        assert ShardedExecutor(2, "thread").run_shards_async([], double_shard) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_submit_single_task(self, backend):
        executor = ShardedExecutor(2, backend)
        future = executor.submit(1, [3, 4], double_shard)
        assert future.result() == [(1, 6), (1, 8)]

    def test_serial_futures_come_back_resolved(self):
        executor = ShardedExecutor(2, "serial")
        futures = executor.run_shards_async([(0, [1]), (1, [2])], double_shard)
        assert all(future.done() for future in futures)

    def test_inline_exception_surfaces_at_result(self):
        executor = ShardedExecutor(1, "serial")

        def explode(shard: int, items: list):
            raise ValueError("shard blew up")

        future = executor.run_shards_async([(0, [1])], explode)[0]
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError, match="blew up"):
            executor.run_shards([(0, [1])], explode)

    def test_run_shards_joins_siblings_before_raising(self):
        """A shard exception must not leave sibling shard tasks running
        detached: run_shards awaits every future, then re-raises the first
        error (the pre-futures pool's join-before-propagate semantics)."""
        import time

        executor = ShardedExecutor(2, "thread")
        state = {"finished": False}

        def tasks_fn(shard: int, _payload):
            if shard == 0:
                raise ValueError("fast failure")
            time.sleep(0.2)  # outlive the sibling's immediate failure
            state["finished"] = True
            return shard

        with pytest.raises(ValueError, match="fast failure"):
            executor.run_shards([(0, None), (1, None)], tasks_fn)
        # The slow sibling completed BEFORE run_shards returned control.
        assert state["finished"] is True

    def test_thread_futures_run_concurrently(self):
        """Two thread-backend tasks that wait on each other's event can only
        finish if the futures genuinely overlap."""
        executor = ShardedExecutor(2, "thread")
        first, second = threading.Event(), threading.Event()

        def rendezvous(shard: int, _payload):
            mine, theirs = (first, second) if shard == 0 else (second, first)
            mine.set()
            assert theirs.wait(timeout=5)
            return shard

        futures = executor.run_shards_async([(0, None), (1, None)], rendezvous)
        assert [future.result(timeout=5) for future in futures] == [0, 1]


class TestEnvForcedSharding:
    def test_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "serial")
        executor = ShardedExecutor()
        assert executor.num_workers == 2
        assert executor.backend == "serial"

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "")
        assert resolve_num_workers(None) == 1
