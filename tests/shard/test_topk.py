"""Shard-merge exactness of the vocabulary-sharded top-k.

The acceptance property: for tie-heavy score matrices (many equal values,
deliberately straddling shard boundaries) the sharded top-k must match the
unsharded stable-argsort result — value descending, ties broken by lowest
column index — for every shard count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.topk import sharded_topk, stable_topk
from repro.utils.exceptions import ConfigurationError


def reference_topk(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The pre-batching semantics: full stable argsort, first k columns."""
    order = np.argsort(-values, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(values, order, axis=1)


def tie_heavy_matrix(rng: np.random.Generator, rows: int, vocab: int) -> np.ndarray:
    """Scores quantised to a handful of levels so ties are everywhere."""
    return rng.integers(0, 4, size=(rows, vocab)).astype(np.float64) * 0.5


class TestStableTopk:
    def test_matches_stable_argsort_on_ties(self, rng):
        for trial in range(20):
            values = tie_heavy_matrix(rng, rows=6, vocab=23)
            for k in (1, 2, 5, 23):
                expected_idx, expected_val = reference_topk(values, k)
                got_idx, got_val = stable_topk(values, k)
                np.testing.assert_array_equal(got_idx, expected_idx)
                np.testing.assert_array_equal(got_val, expected_val)

    def test_distinct_values(self, rng):
        values = rng.normal(size=(4, 31))
        got_idx, _ = stable_topk(values, 7)
        expected_idx, _ = reference_topk(values, 7)
        np.testing.assert_array_equal(got_idx, expected_idx)

    def test_rejects_bad_k(self):
        values = np.zeros((2, 5))
        with pytest.raises(ConfigurationError):
            stable_topk(values, 0)
        with pytest.raises(ConfigurationError):
            stable_topk(values, 6)


class TestShardedTopk:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 7, 16])
    def test_tie_heavy_parity_across_shard_counts(self, rng, num_shards):
        """The acceptance property: ties straddling shard boundaries merge
        back to exactly the stable-argsort selection."""
        for trial in range(10):
            values = tie_heavy_matrix(rng, rows=5, vocab=29)
            for k in (1, 3, 6):
                expected_idx, expected_val = reference_topk(values, k)
                got_idx, got_val = sharded_topk(values, k, num_shards)
                np.testing.assert_array_equal(got_idx, expected_idx)
                np.testing.assert_array_equal(got_val, expected_val)

    def test_constant_matrix_is_the_worst_tie_case(self):
        values = np.full((3, 24), 1.25)
        for num_shards in (1, 2, 4, 6):
            got_idx, got_val = sharded_topk(values, 5, num_shards)
            np.testing.assert_array_equal(got_idx, np.tile(np.arange(5), (3, 1)))
            assert (got_val == 1.25).all()

    def test_more_shards_than_columns(self, rng):
        values = tie_heavy_matrix(rng, rows=3, vocab=4)
        expected_idx, _ = reference_topk(values, 2)
        got_idx, _ = sharded_topk(values, 2, 16)
        np.testing.assert_array_equal(got_idx, expected_idx)

    def test_neg_inf_finite_prefix_matches(self, rng):
        """Rows with masked (-inf) columns: the finite selections must agree;
        -inf padding beyond them is arbitrary by contract (consumers filter
        non-finite values)."""
        values = tie_heavy_matrix(rng, rows=6, vocab=20)
        values[:, ::3] = -np.inf
        k = 6
        expected_idx, expected_val = reference_topk(values, k)
        for num_shards in (1, 2, 4):
            got_idx, got_val = sharded_topk(values, k, num_shards)
            finite = np.isfinite(expected_val)
            np.testing.assert_array_equal(np.isfinite(got_val), finite)
            np.testing.assert_array_equal(got_idx[finite], expected_idx[finite])
            np.testing.assert_array_equal(got_val[finite], expected_val[finite])

    def test_all_neg_inf_rows_survive(self):
        values = np.full((2, 9), -np.inf)
        got_idx, got_val = sharded_topk(values, 3, 3)
        assert got_idx.shape == (2, 3)
        assert not np.isfinite(got_val).any()

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            sharded_topk(np.zeros((1, 4)), 2, 0)
