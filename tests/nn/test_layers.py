"""Unit tests for stateful modules (Module, Linear, Embedding, LayerNorm, ...)."""

import numpy as np
import pytest

from repro.nn.layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor
from repro.utils.exceptions import ConfigurationError


class _ToyModule(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3, rng=0)
        self.scale = Parameter(np.ones(3))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestModule:
    def test_parameter_registration_is_recursive(self):
        model = _ToyModule()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"linear.weight", "linear.bias", "scale"}
        assert len(model.parameters()) == 3

    def test_num_parameters_counts_scalars(self):
        model = _ToyModule()
        assert model.num_parameters() == 4 * 3 + 3 + 3

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=0), Dropout(0.5), ReLU())
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_gradients(self):
        model = _ToyModule()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert model.linear.weight.grad is not None
        model.zero_grad()
        assert model.linear.weight.grad is None

    def test_state_dict_round_trip(self):
        source = _ToyModule()
        target = _ToyModule()
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_load_state_dict_rejects_missing_keys(self):
        model = _ToyModule()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = _ToyModule()
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)


class TestLinear:
    def test_output_shape_and_grad(self):
        layer = Linear(6, 4, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)), requires_grad=True)
        out = layer(x)
        assert out.shape == (3, 4)
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 6)
        assert layer.bias.grad.shape == (4,)
        assert x.grad.shape == (3, 6)

    def test_no_bias_option(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_3d_input(self):
        layer = Linear(5, 2, rng=0)
        out = layer(Tensor(np.zeros((2, 7, 5))))
        assert out.shape == (2, 7, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4, rng=0)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_is_zero(self):
        table = Embedding(10, 4, padding_idx=0, rng=0)
        assert np.allclose(table.weight.data[0], 0.0)

    def test_apply_padding_mask_zeroes_grad(self):
        table = Embedding(5, 3, padding_idx=0, rng=0)
        out = table(np.array([0, 1, 0]))
        out.sum().backward()
        assert not np.allclose(table.weight.grad[0], 0.0)
        table.apply_padding_mask()
        assert np.allclose(table.weight.grad[0], 0.0)

    def test_load_pretrained_checks_shape(self):
        table = Embedding(5, 3, rng=0)
        with pytest.raises(ConfigurationError):
            table.load_pretrained(np.zeros((4, 3)))

    def test_load_pretrained_freeze(self):
        table = Embedding(5, 3, padding_idx=0, rng=0)
        vectors = np.ones((5, 3))
        table.load_pretrained(vectors, freeze=True)
        assert np.allclose(table.weight.data[1:], 1.0)
        assert np.allclose(table.weight.data[0], 0.0)
        assert not table.weight.requires_grad


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(4, 8)))
        out = layer(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_apply(self, rng):
        layer = LayerNorm(4)
        layer.weight.data[:] = 2.0
        layer.bias.data[:] = 1.0
        out = layer(Tensor(rng.normal(size=(2, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradients_flow(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None


class TestDropoutModule:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(5, 5)))
        assert np.allclose(layer(x).data, x.data)

    def test_train_mode_zeroes_entries(self):
        layer = Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 3, rng=0), ReLU(), Linear(3, 1, rng=1))
        out = model(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)

    def test_module_list_registers_children(self):
        layers = ModuleList([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])
        assert len(layers) == 2
        assert len(list(layers[0].parameters())) == 2
        names = {name for name, _ in layers.named_parameters()}
        assert "0.weight" in names and "1.bias" in names

    def test_gelu_module(self, rng):
        out = GELU()(Tensor(rng.normal(size=(3,))))
        assert out.shape == (3,)
