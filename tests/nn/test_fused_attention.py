"""Property and contract tests for the fused inference attention kernel.

The graph-building :func:`repro.nn.attention.scaled_dot_product_attention`
is the parity oracle: in float64 the fused kernel applies the same
elementwise and BLAS operations in the same order, so the two paths must
agree essentially bit-for-bit (asserted here to 1e-12) under random masks,
head counts and cache-row gathers.  The in-place tensor ops share the same
legality rule — inference only — and are covered alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.kv import LayerKVCache
from repro.nn import functional as F
from repro.nn.attention import NEG_INF, MultiHeadAttention, scaled_dot_product_attention
from repro.nn.tensor import Tensor, no_grad
from repro.utils.exceptions import ConfigurationError

TOL = 1e-12


def random_mask(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """An additive mask mixing open, forbidden and finite-weight positions."""
    mask = np.zeros(shape)
    kinds = rng.integers(0, 3, size=shape)
    mask[kinds == 1] = NEG_INF
    mask[kinds == 2] = rng.normal(size=int((kinds == 2).sum()))
    # Keep at least one open key per query row so softmax rows stay finite.
    mask[..., 0] = 0.0
    return mask


class TestFusedMatchesGraph:
    def test_property_random_shapes_and_masks(self, rng):
        """20 random (batch, heads, q, k, d) draws with random masks."""
        for _ in range(20):
            batch = int(rng.integers(1, 5))
            heads = int(rng.choice([1, 2, 4]))
            q_len = int(rng.integers(1, 6))
            k_len = int(rng.integers(q_len, 12))
            d_head = int(rng.choice([2, 4, 8]))
            q = rng.normal(size=(batch, heads, q_len, d_head))
            k = rng.normal(size=(batch, heads, k_len, d_head))
            v = rng.normal(size=(batch, heads, k_len, d_head))
            mask_shape = {
                0: (1, 1, q_len, k_len),
                1: (batch, 1, q_len, k_len),
                2: (batch, heads, q_len, k_len),
            }[int(rng.integers(0, 3))]
            mask = random_mask(rng, mask_shape)
            with no_grad():
                fused_out, fused_w = F.fused_attention(q, k, v, mask=mask)
                graph_out, graph_w = scaled_dot_product_attention(
                    Tensor(q), Tensor(k), Tensor(v), mask=mask, fused=False
                )
            np.testing.assert_allclose(fused_out, graph_out.data, rtol=0, atol=TOL)
            np.testing.assert_allclose(fused_w, graph_w.data, rtol=0, atol=TOL)

    def test_no_mask(self, rng):
        q = rng.normal(size=(2, 2, 3, 4))
        k = rng.normal(size=(2, 2, 5, 4))
        v = rng.normal(size=(2, 2, 5, 4))
        with no_grad():
            fused_out, _ = F.fused_attention(q, k, v)
            graph_out, _ = scaled_dot_product_attention(
                Tensor(q), Tensor(k), Tensor(v), fused=False
            )
        np.testing.assert_allclose(fused_out, graph_out.data, rtol=0, atol=TOL)

    def test_einsum_strategy_matches_matmul(self, rng):
        q = rng.normal(size=(3, 2, 2, 8))
        k = rng.normal(size=(3, 2, 9, 8))
        v = rng.normal(size=(3, 2, 9, 8))
        mask = random_mask(rng, (3, 1, 2, 9))
        with no_grad():
            matmul_out, matmul_w = F.fused_attention(q, k, v, mask=mask, strategy="matmul")
            einsum_out, einsum_w = F.fused_attention(q, k, v, mask=mask, strategy="einsum")
        np.testing.assert_allclose(einsum_out, matmul_out, rtol=0, atol=TOL)
        np.testing.assert_allclose(einsum_w, matmul_w, rtol=0, atol=TOL)

    def test_cache_row_gathers_keep_parity(self, rng):
        """Fused attention over arena views after beam-style reorders."""
        cache = LayerKVCache()
        k0 = rng.normal(size=(4, 2, 6, 4))
        cache.extend(k0, rng.normal(size=(4, 2, 6, 4)))
        for _ in range(5):
            rows = rng.integers(0, cache.batch_size, size=int(rng.integers(2, 6)))
            cache.reorder(rows)
            step_k = rng.normal(size=(cache.batch_size, 2, 1, 4))
            step_v = rng.normal(size=(cache.batch_size, 2, 1, 4))
            keys, values = cache.extend(step_k, step_v, persist=1)
            q = rng.normal(size=(cache.batch_size, 2, 1, 4))
            mask = random_mask(rng, (cache.batch_size, 1, 1, keys.shape[2]))
            with no_grad():
                fused_out, _ = F.fused_attention(q, keys, values, mask=mask)
                graph_out, _ = scaled_dot_product_attention(
                    Tensor(q),
                    Tensor(keys.copy()),
                    Tensor(values.copy()),
                    mask=mask,
                    fused=False,
                )
            np.testing.assert_allclose(fused_out, graph_out.data, rtol=0, atol=TOL)


class TestDispatchAndGuards:
    def test_fused_attention_raises_under_grad(self, rng):
        q = rng.normal(size=(1, 1, 2, 4))
        with pytest.raises(ConfigurationError, match="no_grad"):
            F.fused_attention(q, q, q)

    def test_sdpa_explicit_fused_raises_under_grad(self, rng):
        q = Tensor(rng.normal(size=(1, 1, 2, 4)))
        with pytest.raises(ConfigurationError):
            scaled_dot_product_attention(q, q, q, fused=True)

    def test_sdpa_defaults_to_graph_under_grad(self, rng):
        q = Tensor(rng.normal(size=(1, 1, 2, 4)), requires_grad=True)
        out, _ = scaled_dot_product_attention(q, q, q)
        assert out.requires_grad  # the training path built a graph

    def test_unknown_strategy_raises(self, rng):
        q = rng.normal(size=(1, 1, 2, 4))
        with no_grad(), pytest.raises(ConfigurationError, match="strategy"):
            F.fused_attention(q, q, q, strategy="blocked")

    def test_float32_dtype_computes_in_single_precision(self, rng):
        q = rng.normal(size=(2, 2, 3, 4))
        with no_grad():
            out, weights = F.fused_attention(q, q, q, dtype=np.float32)
            ref, _ = F.fused_attention(q, q, q)
        assert out.dtype == np.float32 and weights.dtype == np.float32
        np.testing.assert_allclose(out.astype(np.float64), ref, rtol=0, atol=5e-4)

    def test_multi_head_module_fused_matches_graph(self, rng):
        attention = MultiHeadAttention(d_model=8, num_heads=2, dropout=0.0, rng=0)
        attention.eval()
        x = Tensor(rng.normal(size=(3, 5, 8)))
        mask = random_mask(rng, (3, 1, 5, 5))
        with no_grad():
            fused = attention(x, mask=mask)  # default: fused under no_grad
            fused_weights = attention.last_attention
            graph = attention(x, mask=mask, fused=False)
            graph_weights = attention.last_attention
        np.testing.assert_allclose(fused.data, graph.data, rtol=0, atol=TOL)
        np.testing.assert_allclose(fused_weights, graph_weights, rtol=0, atol=TOL)

    def test_multi_head_module_explicit_fused_under_grad_raises(self, rng):
        attention = MultiHeadAttention(d_model=8, num_heads=2, dropout=0.0, rng=0)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        with pytest.raises(ConfigurationError):
            attention(x, fused=True)


class TestSoftmaxInPlace:
    def test_matches_graph_softmax_and_reuses_buffer(self, rng):
        scores = rng.normal(size=(2, 3, 4))
        expected = F.softmax(Tensor(scores.copy()), axis=-1).data
        result = F.softmax_(scores)
        assert result is scores  # mutated in place, returned for chaining
        np.testing.assert_allclose(result, expected, rtol=0, atol=TOL)

    def test_large_logits_stay_stable(self):
        scores = np.array([[1000.0, 1001.0, 999.0]])
        result = F.softmax_(scores)
        assert np.isfinite(result).all()
        np.testing.assert_allclose(result.sum(axis=-1), 1.0, rtol=0, atol=1e-12)


class TestInPlaceTensorOps:
    def test_raise_when_grad_enabled(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        with pytest.raises(ConfigurationError, match="no_grad"):
            x.add_(1.0)
        with pytest.raises(ConfigurationError):
            x.mul_(2.0)
        with pytest.raises(ConfigurationError):
            x.masked_fill_(np.eye(3, dtype=bool), 0.0)

    def test_add_mutates_in_place_and_returns_self(self, rng):
        data = rng.normal(size=(2, 3))
        other = rng.normal(size=(2, 3))
        x = Tensor(data.copy())
        buffer = x.data
        with no_grad():
            result = x.add_(other)
        assert result is x and x.data is buffer
        np.testing.assert_allclose(x.data, data + other, rtol=0, atol=TOL)

    def test_add_accepts_tensor_operand(self, rng):
        x = Tensor(rng.normal(size=(4,)))
        y = Tensor(rng.normal(size=(4,)))
        expected = x.data + y.data
        with no_grad():
            x.add_(y)
        np.testing.assert_allclose(x.data, expected, rtol=0, atol=TOL)

    def test_mul_and_masked_fill(self, rng):
        data = rng.normal(size=(3, 3))
        x = Tensor(data.copy())
        mask = np.eye(3, dtype=bool)
        with no_grad():
            x.mul_(2.0)
            x.masked_fill_(mask, -1.5)
        expected = data * 2.0
        expected[mask] = -1.5
        np.testing.assert_allclose(x.data, expected, rtol=0, atol=TOL)
