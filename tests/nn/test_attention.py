"""Unit tests for multi-head attention and masking."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.tensor import Tensor
from repro.nn.transformer import causal_mask
from repro.utils.exceptions import ConfigurationError

from tests.nn.gradcheck import check_gradient


class TestScaledDotProduct:
    def test_output_shape_and_weight_normalisation(self, rng):
        q = Tensor(rng.normal(size=(2, 3, 5, 4)))
        out, weights = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 3, 5, 4)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_mask_blocks_positions(self, rng):
        q = Tensor(rng.normal(size=(1, 1, 4, 8)))
        mask = causal_mask(4)
        _, weights = scaled_dot_product_attention(q, q, q, mask=mask)
        upper = np.triu(np.ones((4, 4), dtype=bool), k=1)
        assert np.allclose(weights.data[0, 0][upper], 0.0, atol=1e-8)

    def test_tensor_mask_receives_gradient(self, rng):
        q = Tensor(rng.normal(size=(1, 1, 3, 4)))
        mask = Tensor(np.zeros((1, 1, 3, 3)), requires_grad=True)
        out, _ = scaled_dot_product_attention(q, q, q, mask=mask)
        out.sum().backward()
        assert mask.grad is not None
        assert mask.grad.shape == (1, 1, 3, 3)


class TestMultiHeadAttention:
    def test_heads_must_divide_model_dim(self):
        with pytest.raises(ConfigurationError):
            MultiHeadAttention(10, 3)

    def test_self_attention_shape(self, rng):
        attention = MultiHeadAttention(12, 3, rng=0)
        out = attention(Tensor(rng.normal(size=(2, 6, 12))))
        assert out.shape == (2, 6, 12)
        assert attention.last_attention.shape == (2, 3, 6, 6)

    def test_mask_rank_promotions(self, rng):
        attention = MultiHeadAttention(8, 2, rng=0)
        x = Tensor(rng.normal(size=(3, 4, 8)))
        for mask in [
            causal_mask(4),
            np.zeros((3, 4, 4)),
            np.zeros((3, 2, 4, 4)),
        ]:
            assert attention(x, mask=mask).shape == (3, 4, 8)
        with pytest.raises(ConfigurationError):
            attention(x, mask=np.zeros(4))

    def test_causal_mask_prevents_future_leakage(self, rng):
        """Changing a future item must not change earlier outputs."""
        attention = MultiHeadAttention(8, 2, rng=0)
        attention.eval()
        base = rng.normal(size=(1, 5, 8))
        changed = base.copy()
        changed[0, 4] += 10.0
        mask = causal_mask(5)
        out_base = attention(Tensor(base), mask=mask).data
        out_changed = attention(Tensor(changed), mask=mask).data
        assert np.allclose(out_base[0, :4], out_changed[0, :4])
        assert not np.allclose(out_base[0, 4], out_changed[0, 4])

    def test_additive_mask_weight_shifts_attention(self, rng):
        """A large additive weight on one key should dominate the attention."""
        attention = MultiHeadAttention(8, 1, rng=0)
        attention.eval()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.zeros((4, 4))
        mask[:, 2] = 8.0  # strongly favour key 2
        attention(x, mask=mask)
        assert attention.last_attention[0, 0, :, 2].min() > 0.5

    def test_gradients_reach_input_and_parameters(self, rng):
        attention = MultiHeadAttention(8, 2, rng=0)
        attention.eval()
        base = rng.normal(size=(1, 3, 8))
        check_gradient(lambda x: attention(x).sum(), base)

    def test_cross_attention_lengths(self, rng):
        attention = MultiHeadAttention(8, 2, rng=0)
        query = Tensor(rng.normal(size=(2, 3, 8)))
        memory = Tensor(rng.normal(size=(2, 7, 8)))
        out = attention(query, memory, memory)
        assert out.shape == (2, 3, 8)
        assert attention.last_attention.shape == (2, 2, 3, 7)
