"""Unit tests for the Conv2d layer (Caser substrate)."""

import numpy as np
import pytest
from scipy import signal

from repro.nn.conv import Conv2d
from repro.nn.tensor import Tensor
from repro.utils.exceptions import ConfigurationError

from tests.nn.gradcheck import check_gradient


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(1, 4, (2, 3), rng=0)
        out = conv(Tensor(rng.normal(size=(2, 1, 6, 5))))
        assert out.shape == (2, 4, 5, 3)

    def test_matches_scipy_correlation(self, rng):
        """Valid cross-correlation against the scipy reference implementation."""
        conv = Conv2d(1, 1, (3, 3), rng=0)
        image = rng.normal(size=(1, 1, 7, 7))
        expected = signal.correlate2d(image[0, 0], conv.weight.data[0, 0], mode="valid")
        out = conv(Tensor(image)).data[0, 0] - conv.bias.data[0]
        assert np.allclose(out, expected, atol=1e-10)

    def test_multi_channel_sums_over_input_channels(self, rng):
        conv = Conv2d(2, 1, (2, 2), rng=0)
        image = rng.normal(size=(1, 2, 4, 4))
        expected = (
            signal.correlate2d(image[0, 0], conv.weight.data[0, 0], mode="valid")
            + signal.correlate2d(image[0, 1], conv.weight.data[0, 1], mode="valid")
            + conv.bias.data[0]
        )
        assert np.allclose(conv(Tensor(image)).data[0, 0], expected, atol=1e-10)

    def test_vertical_and_horizontal_caser_filters(self, rng):
        """The two Caser filter shapes (full-width and full-height) work."""
        length, dim = 5, 8
        image = Tensor(rng.normal(size=(3, 1, length, dim)))
        horizontal = Conv2d(1, 4, (2, dim), rng=0)(image)
        vertical = Conv2d(1, 2, (length, 1), rng=1)(image)
        assert horizontal.shape == (3, 4, length - 1, 1)
        assert vertical.shape == (3, 2, 1, dim)

    def test_rejects_wrong_channel_count(self, rng):
        conv = Conv2d(3, 1, (2, 2), rng=0)
        with pytest.raises(ConfigurationError):
            conv(Tensor(rng.normal(size=(1, 1, 4, 4))))

    def test_rejects_kernel_larger_than_input(self, rng):
        conv = Conv2d(1, 1, (5, 5), rng=0)
        with pytest.raises(ConfigurationError):
            conv(Tensor(rng.normal(size=(1, 1, 3, 3))))

    def test_gradients_match_finite_differences(self, rng):
        conv = Conv2d(1, 2, (2, 2), rng=0)
        check_gradient(lambda x: conv(x).sum(), rng.normal(size=(1, 1, 4, 3)))

    def test_weight_gradients_flow(self, rng):
        conv = Conv2d(1, 2, (2, 2), rng=0)
        conv(Tensor(rng.normal(size=(2, 1, 4, 4)))).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None
