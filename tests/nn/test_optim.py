"""Unit tests for optimizers and LR schedulers."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Parameter
from repro.nn.optim import SGD, Adam, ReduceLROnPlateau, StepLR, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.nn import functional as F
from repro.utils.exceptions import ConfigurationError


def _quadratic_loss(parameter: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2."""
    diff = parameter - Tensor(np.full_like(parameter.data, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_rejects_non_positive_lr(self):
        with pytest.raises(ConfigurationError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss = _quadratic_loss(parameter)
            loss.backward()
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(3))
        momentum = Parameter(np.zeros(3))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for parameter, optimizer in [(plain, opt_plain), (momentum, opt_momentum)]:
                optimizer.zero_grad()
                _quadratic_loss(parameter).backward()
                optimizer.step()
        assert _quadratic_loss(momentum).item() < _quadratic_loss(plain).item()

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.ones(3))
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert np.all(parameter.data < 1.0)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(2))
        optimizer = SGD([parameter], lr=0.5)
        optimizer.step()  # no gradient accumulated -> no change, no crash
        assert np.allclose(parameter.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            _quadratic_loss(parameter).backward()
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=1e-2)

    def test_trains_linear_regression(self, rng):
        model = Linear(3, 1, rng=0)
        optimizer = Adam(model.parameters(), lr=0.05)
        features = rng.normal(size=(64, 3))
        targets = features @ np.array([[1.0], [2.0], [-1.0]])
        for _ in range(150):
            optimizer.zero_grad()
            loss = F.mean_squared_error(model(Tensor(features)), targets)
            loss.backward()
            optimizer.step()
        assert loss.item() < 1e-3

    def test_ignores_frozen_parameters(self):
        frozen = Parameter(np.ones(2))
        frozen.requires_grad = False
        optimizer = Adam([frozen], lr=0.1)
        assert optimizer.parameters == []


class TestGradClipping:
    def test_clips_large_gradients(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad = np.full(3, 10.0)
        norm = clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(np.sqrt(300.0))
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients_untouched(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad = np.full(3, 0.1)
        clip_grad_norm([parameter], max_norm=10.0)
        assert np.allclose(parameter.grad, 0.1)


class TestSchedulers:
    def test_step_lr_decays_on_schedule(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == 1.0
        scheduler.step()
        assert optimizer.lr == 0.5

    def test_reduce_on_plateau_halves_after_patience(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)  # first stall
        assert optimizer.lr == 1.0
        scheduler.step(1.0)  # second stall -> decay
        assert optimizer.lr == 0.5

    def test_reduce_on_plateau_resets_on_improvement(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)
        scheduler.step(0.5)  # improvement resets the counter
        scheduler.step(0.6)
        assert optimizer.lr == 1.0

    def test_reduce_on_plateau_respects_min_lr(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1e-5)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.1, patience=0, min_lr=1e-5)
        scheduler.step(1.0)
        scheduler.step(1.0)
        assert optimizer.lr == pytest.approx(1e-5)
