"""Unit tests for Transformer blocks and positional encodings."""

import numpy as np

from repro.nn.attention import NEG_INF
from repro.nn.tensor import Tensor
from repro.nn.transformer import (
    PositionwiseFeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
    causal_mask,
    sinusoidal_positional_encoding,
)


class TestCausalMask:
    def test_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.triu_indices(4, k=1)] == NEG_INF)
        assert np.all(mask[np.tril_indices(4)] == 0.0)

    def test_single_position(self):
        assert causal_mask(1).shape == (1, 1)
        assert causal_mask(1)[0, 0] == 0.0


class TestPositionalEncoding:
    def test_shape_and_range(self):
        encoding = sinusoidal_positional_encoding(10, 16)
        assert encoding.shape == (10, 16)
        assert np.all(np.abs(encoding) <= 1.0 + 1e-9)

    def test_first_position_is_zero_sin_one_cos(self):
        encoding = sinusoidal_positional_encoding(5, 8)
        assert np.allclose(encoding[0, 0::2], 0.0)
        assert np.allclose(encoding[0, 1::2], 1.0)

    def test_positions_are_distinct(self):
        encoding = sinusoidal_positional_encoding(20, 12)
        distances = np.linalg.norm(encoding[:, None, :] - encoding[None, :, :], axis=-1)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-3


class TestFeedForward:
    def test_shape_preserved(self, rng):
        ffn = PositionwiseFeedForward(8, 16, rng=0)
        out = ffn(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_relu_activation_option(self, rng):
        ffn = PositionwiseFeedForward(8, 16, activation="relu", rng=0)
        assert ffn(Tensor(rng.normal(size=(1, 3, 8)))).shape == (1, 3, 8)


class TestEncoder:
    def test_layer_shape_and_gradients(self, rng):
        layer = TransformerEncoderLayer(8, 2, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        out = layer(x, mask=causal_mask(4))
        assert out.shape == (2, 4, 8)
        out.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in layer.attention.parameters())

    def test_stack_applies_all_layers(self, rng):
        encoder = TransformerEncoder(3, 8, 2, rng=0)
        encoder.eval()
        assert len(encoder.layers) == 3
        out = encoder(Tensor(rng.normal(size=(1, 6, 8))))
        assert out.shape == (1, 6, 8)

    def test_causal_stack_has_no_future_leakage(self, rng):
        encoder = TransformerEncoder(2, 8, 2, rng=0)
        encoder.eval()
        base = rng.normal(size=(1, 5, 8))
        changed = base.copy()
        changed[0, -1] += 5.0
        mask = causal_mask(5)
        out_base = encoder(Tensor(base), mask=mask).data
        out_changed = encoder(Tensor(changed), mask=mask).data
        assert np.allclose(out_base[0, :-1], out_changed[0, :-1])

    def test_training_dropout_changes_output(self, rng):
        encoder = TransformerEncoder(1, 8, 2, dropout=0.5, rng=0)
        encoder.train()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        first = encoder(x).data
        second = encoder(x).data
        assert not np.allclose(first, second)

    def test_deterministic_with_same_seed(self, rng):
        x = rng.normal(size=(1, 4, 8))
        out1 = TransformerEncoder(2, 8, 2, rng=7).eval()(Tensor(x)).data
        out2 = TransformerEncoder(2, 8, 2, rng=7).eval()(Tensor(x)).data
        assert np.allclose(out1, out2)
