"""Unit tests for stateless nn operations."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.nn.gradcheck import check_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(4, 7)))
        probs = F.softmax(logits, axis=-1)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)
        assert np.all(probs.data >= 0)

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.normal(size=(3, 5))
        p1 = F.softmax(Tensor(logits)).data
        p2 = F.softmax(Tensor(logits + 100.0)).data
        assert np.allclose(p1, p2)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(2, 6)))
        assert np.allclose(F.log_softmax(logits).data, np.log(F.softmax(logits).data))

    def test_softmax_handles_large_values(self):
        probs = F.softmax(Tensor([[1000.0, 0.0]])).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_softmax_gradient(self, rng):
        base = rng.normal(size=(3, 4))
        check_gradient(lambda x: (F.softmax(x, axis=-1) ** 2).sum(), base)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -np.mean(log_probs[np.arange(5), targets])
        assert loss == pytest.approx(expected)

    def test_ignore_index_excludes_positions(self, rng):
        logits = rng.normal(size=(4, 3))
        full = F.cross_entropy(Tensor(logits), np.array([0, 1, 2, 1])).item()
        partial = F.cross_entropy(Tensor(logits), np.array([0, 1, 0, 0]), ignore_index=0).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        assert partial == pytest.approx(-log_probs[1, 1])
        assert partial != pytest.approx(full)

    def test_reductions(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        targets = np.array([1, 2, 3])
        none = F.cross_entropy(logits, targets, reduction="none")
        assert none.shape == (3,)
        assert F.cross_entropy(logits, targets, reduction="sum").item() == pytest.approx(
            none.data.sum()
        )
        with pytest.raises(ValueError):
            F.cross_entropy(logits, targets, reduction="bogus")

    def test_sequence_shaped_targets(self, rng):
        logits = Tensor(rng.normal(size=(2, 5, 4)))
        targets = rng.integers(0, 4, size=(2, 5))
        loss = F.cross_entropy(logits, targets)
        assert np.isfinite(loss.item())

    def test_gradient(self, rng):
        targets = np.array([0, 2, 1])
        check_gradient(
            lambda x: F.cross_entropy(x, targets, reduction="sum"), rng.normal(size=(3, 4))
        )

    def test_training_reduces_loss(self, rng):
        logits = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 0, 1, 2, 0, 1])
        initial = F.cross_entropy(logits, targets).item()
        for _ in range(50):
            logits.zero_grad()
            loss = F.cross_entropy(logits, targets)
            loss.backward()
            logits.data -= 0.5 * logits.grad
        assert F.cross_entropy(logits, targets).item() < initial


class TestOtherLosses:
    def test_bce_with_logits_matches_reference(self, rng):
        logits = rng.normal(size=(6,))
        targets = rng.integers(0, 2, size=6).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_bce_gradient(self, rng):
        targets = np.array([1.0, 0.0, 1.0])
        check_gradient(
            lambda x: F.binary_cross_entropy_with_logits(x, targets, reduction="sum"),
            rng.normal(size=(3,)),
        )

    def test_mse(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        assert F.mean_squared_error(prediction, np.array([1.0, 2.0, 5.0])).item() == pytest.approx(
            4.0 / 3.0
        )


class TestDropoutAndMisc:
    def test_dropout_disabled_in_eval(self, rng):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.25, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
        assert (out.data == 0).mean() == pytest.approx(0.25, abs=0.05)

    def test_dropout_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=rng)

    def test_gelu_reference_values(self):
        # GELU(0) = 0 and GELU is close to identity for large positive inputs.
        values = F.gelu(Tensor([0.0, 5.0, -5.0])).data
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(5.0, abs=1e-3)
        assert values[2] == pytest.approx(0.0, abs=1e-3)

    def test_gelu_gradient(self, rng):
        check_gradient(lambda x: F.gelu(x).sum(), rng.normal(size=(6,)))

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), num_classes=3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_embedding_lookup_gradient(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(weight, np.array([[1, 1], [3, 0]]))
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert np.allclose(weight.grad[1], 2.0)
        assert np.allclose(weight.grad[2], 0.0)

    def test_linear_matches_manual(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2,)))
        assert np.allclose(F.linear(x, w, b).data, x.data @ w.data.T + b.data)
