"""Unit tests for parameter initialisers."""

import numpy as np

from repro.nn import init


class TestInitializers:
    def test_zeros(self):
        assert np.allclose(init.zeros((3, 4)), 0.0)

    def test_normal_statistics(self, rng):
        values = init.normal((200, 200), rng, std=0.02)
        assert abs(values.mean()) < 1e-3
        assert abs(values.std() - 0.02) < 2e-3

    def test_uniform_bounds(self, rng):
        values = init.uniform((100, 10), rng, low=-0.1, high=0.1)
        assert values.min() >= -0.1
        assert values.max() < 0.1

    def test_xavier_uniform_limit(self, rng):
        shape = (64, 32)
        values = init.xavier_uniform(shape, rng)
        limit = np.sqrt(6.0 / (shape[0] + shape[1]))
        assert np.abs(values).max() <= limit

    def test_xavier_normal_std(self, rng):
        shape = (400, 300)
        values = init.xavier_normal(shape, rng)
        expected_std = np.sqrt(2.0 / (shape[0] + shape[1]))
        assert abs(values.std() - expected_std) / expected_std < 0.1

    def test_kaiming_uniform_limit(self, rng):
        shape = (64, 128)
        values = init.kaiming_uniform(shape, rng)
        limit = np.sqrt(6.0 / shape[1])
        assert np.abs(values).max() <= limit

    def test_conv_shapes_use_receptive_field(self, rng):
        values = init.xavier_uniform((8, 4, 3, 3), rng)
        assert values.shape == (8, 4, 3, 3)
        assert np.isfinite(values).all()

    def test_deterministic_given_same_generator_seed(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(3))
        b = init.xavier_uniform((5, 5), np.random.default_rng(3))
        assert np.allclose(a, b)
