"""Unit tests for the GRU implementation."""

import numpy as np

from repro.nn.rnn import GRU, GRUCell
from repro.nn.tensor import Tensor

from tests.nn.gradcheck import check_gradient


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = GRUCell(5, 7, rng=0)
        hidden = cell(Tensor(rng.normal(size=(3, 5))), Tensor(np.zeros((3, 7))))
        assert hidden.shape == (3, 7)

    def test_hidden_values_bounded(self, rng):
        """GRU hidden state is a convex combination of tanh output and h_{t-1}."""
        cell = GRUCell(4, 6, rng=0)
        hidden = Tensor(np.zeros((2, 6)))
        for _ in range(20):
            hidden = cell(Tensor(rng.normal(size=(2, 4))), hidden)
        assert np.all(np.abs(hidden.data) <= 1.0 + 1e-9)

    def test_gradients_flow_to_input(self, rng):
        cell = GRUCell(4, 4, rng=0)
        hidden = Tensor(np.zeros((1, 4)))
        check_gradient(lambda x: cell(x, hidden).sum(), rng.normal(size=(1, 4)))


class TestGRU:
    def test_sequence_output_shapes(self, rng):
        gru = GRU(5, 8, rng=0)
        outputs, final = gru(Tensor(rng.normal(size=(4, 6, 5))))
        assert outputs.shape == (4, 6, 8)
        assert final.shape == (4, 8)
        assert np.allclose(outputs.data[:, -1, :], final.data)

    def test_custom_initial_state(self, rng):
        gru = GRU(3, 4, rng=0)
        x = Tensor(rng.normal(size=(2, 5, 3)))
        zero_out, _ = gru(x)
        warm_out, _ = gru(x, hidden=Tensor(np.ones((2, 4))))
        assert not np.allclose(zero_out.data, warm_out.data)

    def test_gradients_reach_parameters(self, rng):
        gru = GRU(3, 4, rng=0)
        outputs, _ = gru(Tensor(rng.normal(size=(2, 5, 3))))
        outputs.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())

    def test_order_sensitivity(self, rng):
        """Reversing the input sequence should change the final state."""
        gru = GRU(3, 4, rng=0)
        x = rng.normal(size=(1, 6, 3))
        _, forward_state = gru(Tensor(x))
        _, reversed_state = gru(Tensor(x[:, ::-1, :].copy()))
        assert not np.allclose(forward_state.data, reversed_state.data)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(2, 4, 3))
        out1, _ = GRU(3, 5, rng=11)(Tensor(x))
        out2, _ = GRU(3, 5, rng=11)(Tensor(x))
        assert np.allclose(out1.data, out2.data)
