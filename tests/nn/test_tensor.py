"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack, where

from tests.nn.gradcheck import check_gradient


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_len_returns_leading_dimension(self):
        assert len(Tensor(np.zeros((5, 3)))) == 5

    def test_backward_on_non_scalar_requires_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a * 2
        with pytest.raises(RuntimeError):
            b.backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestArithmetic:
    def test_add_and_mul_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])
        assert np.allclose((a * b).data, [3.0, 8.0])

    def test_scalar_operations(self):
        a = Tensor([2.0, 4.0])
        assert np.allclose((a + 1).data, [3.0, 5.0])
        assert np.allclose((1 - a).data, [-1.0, -3.0])
        assert np.allclose((a / 2).data, [1.0, 2.0])
        assert np.allclose((2 / a).data, [1.0, 0.5])
        assert np.allclose((a**2).data, [4.0, 16.0])

    def test_add_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_division_gradients(self):
        check_gradient(lambda x: (x / Tensor([2.0, 4.0, 8.0])).sum(), np.array([1.0, 2.0, 3.0]))
        check_gradient(lambda x: (Tensor([1.0, 1.0, 1.0]) / x).sum(), np.array([1.0, 2.0, 3.0]))

    def test_broadcast_add_gradient_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_gradient(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(2, 3))
        check_gradient(lambda x: (x * Tensor(np.array([[2.0], [3.0]]))).sum(), base)

    def test_gradient_accumulates_over_multiple_uses(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3 + a * 4
        b.sum().backward()
        assert np.allclose(a.grad, [7.0])


class TestNonlinearities:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "tanh", "sigmoid", "relu", "sqrt"],
    )
    def test_elementwise_gradients(self, name):
        base = np.array([0.5, 1.0, 2.0, 3.0])
        check_gradient(lambda x: getattr(x, name)().sum(), base)

    def test_relu_zeroes_negative(self):
        assert np.allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_clip_values_and_gradient(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        clipped = a.clip(0.0, 1.0)
        assert np.allclose(clipped.data, [0.0, 0.5, 1.0])
        clipped.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.sum(axis=0).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)
        assert a.sum().item() == pytest.approx(15.0)

    def test_mean_matches_numpy(self):
        data = np.arange(12.0).reshape(3, 4)
        assert np.allclose(Tensor(data).mean(axis=1).data, data.mean(axis=1))

    def test_sum_gradient_broadcasts_back(self):
        check_gradient(lambda x: (x.sum(axis=0) * Tensor([1.0, 2.0, 3.0])).sum(), np.ones((4, 3)))

    def test_mean_gradient(self):
        check_gradient(lambda x: x.mean(), np.arange(6.0).reshape(2, 3))

    def test_max_gradient_routes_to_argmax(self):
        a = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_and_transpose_gradients(self):
        check_gradient(lambda x: (x.reshape(6) * Tensor(np.arange(6.0))).sum(), np.ones((2, 3)))
        check_gradient(
            lambda x: (x.transpose() * Tensor(np.arange(6.0).reshape(3, 2))).sum(), np.ones((2, 3))
        )

    def test_swapaxes_matches_numpy(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        assert np.allclose(Tensor(data).swapaxes(-1, -2).data, data.swapaxes(-1, -2))

    def test_getitem_slice_gradient(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.zeros(4), requires_grad=True)
        picked = a[np.array([0, 0, 2])]
        picked.sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 1.0, 0.0])


class TestMatmul:
    def test_matmul_values(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_gradients_2d(self):
        rng = np.random.default_rng(1)
        b = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda x: (x @ b).sum(), rng.normal(size=(2, 3)))

    def test_matmul_gradients_batched(self):
        rng = np.random.default_rng(2)
        b = Tensor(rng.normal(size=(5, 4, 2)))
        check_gradient(lambda x: (x @ b).sum(), rng.normal(size=(5, 3, 4)))

    def test_matmul_broadcast_gradient_to_shared_weight(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(5, 3, 4)))
        check_gradient(lambda w: (x @ w).sum(), rng.normal(size=(4, 2)))

    def test_vector_matrix_product(self):
        rng = np.random.default_rng(4)
        w = Tensor(rng.normal(size=(3, 2)))
        check_gradient(lambda x: (x @ w).sum(), rng.normal(size=(3,)))


class TestFreeFunctions:
    def test_concatenate_values_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_stack_shapes_and_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * Tensor([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])).sum().backward()
        assert np.allclose(a.grad, [1.0, 2.0, 3.0])
        assert np.allclose(b.grad, [4.0, 5.0, 6.0])

    def test_where_selects_and_routes_gradient(self):
        condition = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(condition, a, b)
        assert np.allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2
        assert not b.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()
