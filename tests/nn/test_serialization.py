"""Unit tests for checkpoint serialization."""

import numpy as np

from repro.nn.layers import Linear, Sequential, ReLU
from repro.nn.serialization import load_module, load_state_dict, save_module, save_state_dict
from repro.nn.tensor import Tensor


def _make_model(seed: int) -> Sequential:
    return Sequential(Linear(4, 8, rng=seed), ReLU(), Linear(8, 2, rng=seed + 1))


class TestSerialization:
    def test_state_dict_round_trip_through_disk(self, tmp_path):
        model = _make_model(0)
        path = str(tmp_path / "checkpoint.npz")
        save_state_dict(model.state_dict(), path)
        restored = load_state_dict(path)
        assert set(restored) == set(model.state_dict())
        for name, value in model.state_dict().items():
            assert np.allclose(restored[name], value)

    def test_load_extension_is_added(self, tmp_path):
        model = _make_model(1)
        path = str(tmp_path / "weights")
        save_state_dict(model.state_dict(), path)
        restored = load_state_dict(path)  # without .npz suffix
        assert set(restored) == set(model.state_dict())

    def test_save_and_load_module_reproduces_outputs(self, tmp_path, rng):
        source = _make_model(2)
        target = _make_model(3)
        x = Tensor(rng.normal(size=(5, 4)))
        assert not np.allclose(source(x).data, target(x).data)
        path = str(tmp_path / "model.npz")
        save_module(source, path)
        load_module(target, path)
        assert np.allclose(source(x).data, target(x).data)

    def test_nested_directory_is_created(self, tmp_path):
        model = _make_model(4)
        path = str(tmp_path / "nested" / "dir" / "model.npz")
        save_module(model, path)
        assert set(load_state_dict(path)) == set(model.state_dict())
