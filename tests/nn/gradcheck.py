"""Finite-difference gradient checking helper used by the nn tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numeric_gradient(
    function: Callable[[np.ndarray], float], point: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``point``."""
    gradient = np.zeros_like(point, dtype=np.float64)
    flat = point.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(point)
        flat[index] = original - epsilon
        lower = function(point)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return gradient


def check_gradient(
    build: Callable[[Tensor], Tensor],
    value: np.ndarray,
    tolerance: float = 1e-5,
) -> None:
    """Compare autograd gradients of ``build`` against finite differences.

    ``build`` maps a leaf tensor to a scalar tensor.
    """
    value = np.asarray(value, dtype=np.float64)
    leaf = Tensor(value.copy(), requires_grad=True)
    output = build(leaf)
    output.backward()
    assert leaf.grad is not None, "no gradient reached the leaf tensor"

    def scalar(point: np.ndarray) -> float:
        return build(Tensor(point.copy())).item()

    expected = numeric_gradient(scalar, value.copy())
    error = np.max(np.abs(expected - leaf.grad))
    scale = max(1.0, np.max(np.abs(expected)))
    assert error / scale < tolerance, f"gradient mismatch: max abs error {error:.3e}"
