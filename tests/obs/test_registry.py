"""The metrics registry: atomic snapshots, scoping, grouped updates."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS_MS,
    MetricGroup,
    MetricsRegistry,
    get_registry,
    set_registry,
)


def test_counter_increments_and_reads():
    registry = MetricsRegistry()
    counter = registry.counter("a.hits")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5


def test_counter_factory_is_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a.hits") is registry.counter("a.hits")


def test_gauge_set_and_set_max():
    registry = MetricsRegistry()
    gauge = registry.gauge("a.depth")
    gauge.set(3)
    gauge.set_max(2)
    assert gauge.value() == 3
    gauge.set_max(7)
    assert gauge.value() == 7
    gauge.set(1)
    assert gauge.value() == 1


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry()
    histogram = registry.histogram("a.latency_ms", buckets=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe_many([5.0, 50.0])
    snapshot = histogram.value()
    assert snapshot["buckets"] == [1.0, 10.0]
    assert snapshot["counts"] == [1, 1, 1]  # <=1, <=10, +Inf overflow
    assert snapshot["count"] == 3
    assert snapshot["sum"] == 55.5
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 50.0
    assert snapshot["mean"] == pytest.approx(55.5 / 3)


def test_histogram_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


def test_name_collision_across_instrument_types_raises():
    registry = MetricsRegistry()
    registry.counter("a.thing")
    with pytest.raises(ValueError, match="different.*instrument type"):
        registry.gauge("a.thing")
    with pytest.raises(ValueError, match="different.*instrument type"):
        registry.histogram("a.thing")


def test_scope_indices_are_monotonic_per_prefix():
    registry = MetricsRegistry()
    assert registry.scope("serve.loop") == "serve.loop.0"
    assert registry.scope("serve.loop") == "serve.loop.1"
    assert registry.scope("cache.plan") == "cache.plan.0"


def test_snapshot_is_shaped_and_prefix_filtered():
    registry = MetricsRegistry()
    registry.counter("a.x.hits").inc(2)
    registry.counter("b.hits").inc(9)
    registry.gauge("a.x.depth").set(4)
    registry.histogram("a.x.lat", buckets=(1.0,)).observe(0.5)
    full = registry.snapshot()
    assert set(full) == {"counters", "gauges", "histograms"}
    assert full["counters"] == {"a.x.hits": 2, "b.hits": 9}
    scoped = registry.snapshot("a.x")
    assert scoped["counters"] == {"a.x.hits": 2}
    assert scoped["gauges"] == {"a.x.depth": 4}
    assert list(scoped["histograms"]) == ["a.x.lat"]
    # Prefix matching is path-segment aware: "a.x" must not match "a.xy".
    registry.counter("a.xy.hits").inc()
    assert "a.xy.hits" not in registry.snapshot("a.x")["counters"]


def test_registry_reset_zeroes_only_the_prefix():
    registry = MetricsRegistry()
    registry.counter("a.hits").inc(5)
    registry.counter("b.hits").inc(7)
    registry.reset("a")
    assert registry.counter("a.hits").value() == 0
    assert registry.counter("b.hits").value() == 7


def test_group_record_applies_all_fields():
    registry = MetricsRegistry()
    group = MetricGroup(
        registry, "q", counters=("enqueued", "depth_sum"), gauges=("depth", "depth_max")
    )
    group.record(add={"enqueued": 1, "depth_sum": 3}, max_={"depth_max": 3}, set_={"depth": 3})
    group.record(add={"enqueued": 1, "depth_sum": 1}, max_={"depth_max": 1}, set_={"depth": 1})
    assert group.values() == {"enqueued": 2, "depth_sum": 4, "depth": 1, "depth_max": 3}
    assert group.value("enqueued") == 2
    assert group.value("depth_max") == 3


def test_group_record_tolerates_none_sections():
    registry = MetricsRegistry()
    group = MetricGroup(registry, "g", counters=("n",), gauges=("v",))
    group.record(add=None, set_={"v": 2})
    group.record(add={"n": 1})
    assert group.values() == {"n": 1, "v": 2}


def test_group_reset_zeroes_its_fields_only():
    registry = MetricsRegistry()
    group = MetricGroup(registry, "g", counters=("n",))
    other = registry.counter("other.n")
    other.inc(3)
    group.record(add={"n": 5})
    group.reset()
    assert group.value("n") == 0
    assert other.value() == 3


def test_group_updates_are_atomic_under_contention():
    """A snapshot can never observe a torn multi-field update."""
    registry = MetricsRegistry()
    group = MetricGroup(registry, "g", counters=("a", "b"))
    stop = threading.Event()
    torn = []

    def writer():
        while not stop.is_set():
            group.record(add={"a": 1, "b": 1})

    def reader():
        while not stop.is_set():
            snapshot = registry.snapshot("g")["counters"]
            if snapshot["g.a"] != snapshot["g.b"]:
                torn.append(snapshot)
                return

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    threads[1].join(timeout=0.5)
    stop.set()
    for thread in threads:
        thread.join()
    assert torn == []


def test_concurrent_increments_are_exact():
    registry = MetricsRegistry()
    group = MetricGroup(registry, "g", counters=("n",))
    rounds = 500

    def hammer():
        for _ in range(rounds):
            group.record(add={"n": 1})

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert group.value("n") == 4 * rounds


def test_set_registry_swaps_the_default():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        set_registry(previous)
    assert get_registry() is previous
