"""Tracer semantics: determinism, sampling, the disabled no-op, sinks."""

from __future__ import annotations

import threading

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    BatchSink,
    Tracer,
    current_sink,
    stable_hash,
    use_sink,
)
from repro.shard.partition import stable_hash as shard_stable_hash

KEYS = [((1, 2, 3), 7, 0), ((4, 5), 9, 1), ((1, 2, 3), 7, 0), ("ctx", 2, None)]


def test_stable_hash_matches_the_shard_routing_hash():
    # obs restates the construction to stay a leaf package; the whole point
    # is that trace-ID key hashes agree with shard routing hashes.
    for key in KEYS:
        assert stable_hash(key) == shard_stable_hash(key)


def test_disabled_tracer_returns_none_and_allocates_nothing():
    registry = MetricsRegistry()
    tracer = Tracer(enabled=False, registry=registry)
    assert tracer.begin(("k", 1, None)) is None
    assert all(value == 0 for value in tracer.counters().values())


def test_null_tracer_is_disabled():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin(("k", 1, None)) is None


def test_trace_ids_are_deterministic_across_tracers():
    ids_a = [Tracer(enabled=True, registry=MetricsRegistry()).begin(k).trace_id for k in KEYS]
    ids_b = [Tracer(enabled=True, registry=MetricsRegistry()).begin(k).trace_id for k in KEYS]
    # Fresh tracer per begin: every ID is the key's ordinal-0 identity.
    assert ids_a == ids_b


def test_trace_ids_sequence_repeated_keys():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    first = tracer.begin(KEYS[0]).trace_id
    other = tracer.begin(KEYS[1]).trace_id
    again = tracer.begin(KEYS[2]).trace_id  # same key as KEYS[0]
    assert first.endswith("-0")
    assert again == first[: first.rfind("-")] + "-1"
    assert other != first


def test_sampling_is_deterministic_and_counted():
    keys = [(("u", i), i % 3, None) for i in range(64)]

    def traced(tracer):
        return [key for key in keys if tracer.begin(key) is not None]

    rate = 0.5
    picked_a = traced(Tracer(enabled=True, sample_rate=rate, registry=MetricsRegistry()))
    picked_b = traced(Tracer(enabled=True, sample_rate=rate, registry=MetricsRegistry()))
    assert picked_a == picked_b
    assert 0 < len(picked_a) < len(keys)


def test_sample_rate_zero_traces_nothing():
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, sample_rate=0.0, registry=registry)
    assert all(tracer.begin(key) is None for key in KEYS)
    counters = tracer.counters()
    assert counters["traces"] == 0
    assert counters["sampled_out"] == len(KEYS)


def test_capacity_bounds_retention_and_counts_drops():
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, capacity=2, registry=registry)
    for i in range(5):
        assert tracer.begin((("k", i), 0, None)) is not None
    assert len(tracer.trace_ids()) == 2
    counters = tracer.counters()
    assert counters["traces"] == 5
    assert counters["dropped"] == 3


def test_span_ids_number_repeated_names():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    trace = tracer.begin(KEYS[0])
    first = trace.span("beam.depth", 0.0, 0.1, depth=0)
    second = trace.span("beam.depth", 0.1, 0.2, depth=1)
    other = trace.span("serve.drain", 0.0, 0.2)
    assert first.span_id == f"{trace.trace_id}/beam.depth#0"
    assert second.span_id == f"{trace.trace_id}/beam.depth#1"
    assert other.span_id == f"{trace.trace_id}/serve.drain#0"
    assert second.attrs == {"depth": 1}


def test_timed_records_the_body_interval():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    trace = tracer.begin(KEYS[0])
    with trace.timed("work", tag="x"):
        pass
    (span,) = trace.spans
    assert span.name == "work"
    assert span.end >= span.start
    assert span.attrs == {"tag": "x"}


def test_finish_counts_spans_once():
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, registry=registry)
    trace = tracer.begin(KEYS[0])
    trace.span("a", 0.0, 0.1)
    trace.span("b", 0.0, 0.1)
    tracer.finish(trace)
    tracer.finish(trace)  # idempotent
    tracer.finish(None)  # tolerated
    assert tracer.counters()["spans"] == 2


def test_export_and_summary_shapes():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    trace = tracer.begin(KEYS[0], kind="next_step")
    trace.span("a", 0.0, 0.002)
    trace.span("a", 0.0, 0.004)
    (exported,) = tracer.export()
    assert exported["trace_id"] == trace.trace_id
    assert exported["attrs"] == {"kind": "next_step"}
    assert [span["name"] for span in exported["spans"]] == ["a", "a"]
    assert all(span["duration_ms"] > 0 for span in exported["spans"])
    summary = tracer.summary()
    assert summary["a"]["count"] == 2
    assert summary["a"]["max_ms"] >= summary["a"]["mean_ms"]


def test_reset_clears_traces_and_sequences():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    first = tracer.begin(KEYS[0]).trace_id
    tracer.reset()
    assert tracer.trace_ids() == []
    # Sequences restart: the same key maps to its ordinal-0 identity again.
    assert tracer.begin(KEYS[0]).trace_id == first


def test_batch_sink_broadcast_and_targeting():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    traced = tracer.begin(KEYS[0])
    sink = BatchSink([traced, None])
    assert bool(sink)
    sink.batch_span("beam.depth", 0.0, 0.1, depth=0)
    sink.request_span(0, "cache.decision", 0.0, 0.1, outcome="hit")
    sink.request_span(1, "cache.decision", 0.0, 0.1, outcome="hit")  # untraced slot
    sink.request_span(99, "cache.decision", 0.0, 0.1, outcome="hit")  # out of range
    assert [span.name for span in traced.spans] == ["beam.depth", "cache.decision"]


def test_empty_sink_is_falsy_and_use_sink_skips_it():
    sink = BatchSink([None, None])
    assert not sink
    with use_sink(sink):
        assert current_sink() is None
    with use_sink(None):
        assert current_sink() is None


def test_use_sink_installs_and_restores():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    outer = BatchSink([tracer.begin(KEYS[0])])
    inner = BatchSink([tracer.begin(KEYS[1])])
    assert current_sink() is None
    with use_sink(outer):
        assert current_sink() is outer
        with use_sink(inner):
            assert current_sink() is inner
        assert current_sink() is outer
    assert current_sink() is None


def test_sink_is_thread_local():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    sink = BatchSink([tracer.begin(KEYS[0])])
    seen = []

    def worker():
        seen.append(current_sink())
        with use_sink(sink):
            seen.append(current_sink())

    with use_sink(sink):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # The spawned thread starts with no sink (thread-local), then installs
    # the captured one explicitly — the shard-worker re-entry pattern.
    assert seen == [None, sink]


def test_concurrent_span_appends_are_safe():
    tracer = Tracer(enabled=True, registry=MetricsRegistry())
    trace = tracer.begin(KEYS[0])
    rounds = 200

    def append():
        for _ in range(rounds):
            trace.span("shard.gather", 0.0, 0.1)

    threads = [threading.Thread(target=append) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(trace.spans) == 4 * rounds
    assert len({span.span_id for span in trace.spans}) == 4 * rounds
