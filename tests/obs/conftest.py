"""Fixtures for the observability suite.

The backbone and contexts are session-scoped (read-only); planners,
tracers and registries are built per test — tracing retains state and the
contracts under test are about fresh instruments anyway.
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives

MAX_LENGTH = 5


@pytest.fixture(scope="session")
def obs_irn(tiny_split):
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=50,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="session")
def obs_contexts(tiny_split):
    instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


@pytest.fixture()
def make_planner(obs_irn, tiny_split):
    """Factory for fresh planners sharing the package backbone."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)
        return BeamSearchPlanner(obs_irn, **kwargs).fit(tiny_split)

    return build
