"""Exporters: JSON and Prometheus text over one atomic snapshot."""

from __future__ import annotations

import json

from repro.obs.export import (
    metrics_snapshot,
    metrics_to_json,
    metrics_to_prometheus,
    traces_to_json,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.loop.0.served").inc(12)
    registry.gauge("serve.loop.0.queue0.depth").set(3)
    histogram = registry.histogram("serve.loop.0.latency.latency_ms", buckets=(1.0, 10.0))
    histogram.observe_many([0.5, 5.0, 50.0])
    return registry


def test_metrics_snapshot_prefix_filter():
    registry = build_registry()
    registry.counter("other.n").inc()
    snapshot = metrics_snapshot(registry, prefix="serve.loop.0")
    assert "other.n" not in snapshot["counters"]
    assert snapshot["counters"]["serve.loop.0.served"] == 12


def test_metrics_to_json_round_trips():
    payload = json.loads(metrics_to_json(build_registry()))
    assert payload["counters"]["serve.loop.0.served"] == 12
    assert payload["gauges"]["serve.loop.0.queue0.depth"] == 3
    assert payload["histograms"]["serve.loop.0.latency.latency_ms"]["count"] == 3


def test_prometheus_text_format():
    text = metrics_to_prometheus(build_registry())
    lines = text.splitlines()
    assert "# TYPE serve_loop_0_served_total counter" in lines
    assert "serve_loop_0_served_total 12" in lines
    assert "serve_loop_0_queue0_depth 3" in lines
    # Histograms are cumulative with an explicit +Inf series.
    assert 'serve_loop_0_latency_latency_ms_bucket{le="1.0"} 1' in lines
    assert 'serve_loop_0_latency_latency_ms_bucket{le="10.0"} 2' in lines
    assert 'serve_loop_0_latency_latency_ms_bucket{le="+Inf"} 3' in lines
    assert "serve_loop_0_latency_latency_ms_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_empty_registry_is_empty_text():
    assert metrics_to_prometheus(MetricsRegistry()) == ""


def test_traces_to_json_payload():
    tracer = Tracer(enabled=True, sample_rate=1.0, registry=MetricsRegistry())
    trace = tracer.begin(("history", 3, None), kind="next_step")
    trace.span("serve.drain", 0.0, 0.005, shard=0)
    tracer.finish(trace)
    payload = json.loads(traces_to_json(tracer))
    assert payload["sample_rate"] == 1.0
    assert payload["counters"]["traces"] == 1
    (exported,) = payload["traces"]
    assert exported["trace_id"] == trace.trace_id
    assert payload["summary"]["serve.drain"]["count"] == 1
