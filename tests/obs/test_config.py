"""Config resolvers: trace switches, sampling rate, log level."""

from __future__ import annotations

import logging

import pytest

from repro.obs.config import (
    DEFAULT_TRACE_ENABLED,
    DEFAULT_TRACE_SAMPLE_RATE,
    resolve_trace_enabled,
    resolve_trace_sample_rate,
)
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import resolve_log_level


def test_trace_enabled_defaults_off(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert DEFAULT_TRACE_ENABLED is False
    assert resolve_trace_enabled() is False


@pytest.mark.parametrize("raw,expected", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("false", False), ("No", False), ("off", False),
    (True, True), (False, False),
])
def test_trace_enabled_parses_switch_values(raw, expected):
    assert resolve_trace_enabled(raw) is expected


def test_trace_enabled_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert resolve_trace_enabled() is True
    assert resolve_trace_enabled(False) is False  # explicit beats environment


def test_trace_enabled_rejects_junk():
    with pytest.raises(ConfigurationError, match="trace_enabled"):
        resolve_trace_enabled("maybe")


def test_sample_rate_defaults_to_full(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_SAMPLE_RATE", raising=False)
    assert resolve_trace_sample_rate() == DEFAULT_TRACE_SAMPLE_RATE == 1.0


def test_sample_rate_env_and_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SAMPLE_RATE", "0.25")
    assert resolve_trace_sample_rate() == 0.25
    assert resolve_trace_sample_rate("0.5") == 0.5


@pytest.mark.parametrize("raw", ["-0.1", "1.5", "nan", "lots"])
def test_sample_rate_rejects_out_of_range(raw):
    with pytest.raises(ConfigurationError, match="trace_sample_rate"):
        resolve_trace_sample_rate(raw)


def test_log_level_defaults_to_info(monkeypatch):
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    assert resolve_log_level() == logging.INFO


@pytest.mark.parametrize("raw,expected", [
    ("DEBUG", logging.DEBUG),
    ("warning", logging.WARNING),
    ("10", 10),
    (logging.ERROR, logging.ERROR),
])
def test_log_level_parses_names_and_numbers(raw, expected):
    assert resolve_log_level(raw) == expected


def test_log_level_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
    assert resolve_log_level() == logging.DEBUG
    assert resolve_log_level("ERROR") == logging.ERROR  # explicit beats env


def test_log_level_rejects_junk():
    with pytest.raises(ConfigurationError, match="log level"):
        resolve_log_level("LOUD")
