"""Span lifecycle across a hot refit (the mid-trace flip satellite).

One tracer is shared by every generation's serving loops, so traces from
both sides of a flip land in one retained list.  The contract: a request
served at the flip boundary stamps exactly one ``served_generation`` on
its drain span (batches are never torn across generations), and per
serving context the stamped generation is monotone non-decreasing in
trace-sequence order.
"""

from __future__ import annotations

from repro.obs import Tracer
from repro.replica import ReplicaSet
from repro.serve import replay_lockstep

MAX_LENGTH = 5  # keep in sync with tests/obs/conftest.py


def split_trace_id(trace_id):
    key_hash, _, sequence = trace_id.partition("-")
    return key_hash, int(sequence)


def drain_generations(trace):
    return [
        span["attrs"]["served_generation"]
        for span in trace["spans"]
        if span["name"] == "serve.drain"
    ]


def test_traces_span_the_flip_with_one_generation_each(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    with ReplicaSet(lambda: make_planner(), num_replicas=2, tracer=tracer) as replica_set:
        before = replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)
        replica_set.refit()
        after = replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)

    # The shared backbone is untouched by the flip: answers are identical.
    assert after == before

    traces = tracer.export()
    assert traces
    seen_generations = set()
    for trace in traces:
        generations = drain_generations(trace)
        # Exactly one drain span, stamping exactly one generation — a trace
        # at the flip boundary is served wholly before or wholly after.
        assert len(generations) == 1
        assert len(set(generations)) == 1
        seen_generations.update(generations)
    assert seen_generations == {1, 2}

    # Per serving context (one key hash per context: the routing key omits
    # the evolving path), generations never roll back across the flip.
    per_key: "dict[str, list[tuple[int, int]]]" = {}
    for trace in traces:
        key_hash, sequence = split_trace_id(trace["trace_id"])
        per_key.setdefault(key_hash, []).append((sequence, drain_generations(trace)[0]))
    assert len(per_key) == len(obs_contexts)
    for entries in per_key.values():
        entries.sort()
        generations = [generation for _, generation in entries]
        assert generations == sorted(generations)


def test_flip_boundary_trace_ids_stay_deterministic(make_planner, obs_contexts):
    def run():
        tracer = Tracer(enabled=True, sample_rate=1.0)
        with ReplicaSet(
            lambda: make_planner(), num_replicas=2, tracer=tracer
        ) as replica_set:
            replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)
            replica_set.refit()
            replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)
        return sorted(tracer.trace_ids())

    assert run() == run()


def test_refit_keeps_replica_stats_shape_with_tracing(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    with ReplicaSet(lambda: make_planner(), num_replicas=2, tracer=tracer) as replica_set:
        replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)
        replica_set.refit()
        replay_lockstep(replica_set, obs_contexts, MAX_LENGTH)
        stats = replica_set.stats()
    assert {"served", "replicas", "refits", "admission", "dispatch"} <= set(stats)
    assert len(stats["refits"]) == 1
    assert stats["refits"][0]["generation_to"] == 2
