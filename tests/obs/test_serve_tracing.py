"""End-to-end tracing through the serving loop.

The contract under test: with tracing enabled the loop answers exactly
what it answers untraced (the parity suite's bit), and every admitted
request's trace carries the span lifecycle — admission, queue wait, drain,
per-depth beam expansion and cache decisions, plus shard scatter/gather
when the planner is worker-partitioned.  With tracing disabled (the
default) the process-wide allocation counters must not move at all.
"""

from __future__ import annotations

from repro.evaluation.protocol import rollout_next_step
from repro.obs import Tracer, get_registry
from repro.serve import ServingLoop, replay_lockstep

MAX_LENGTH = 5  # keep in sync with tests/obs/conftest.py


def run_traced(make_planner, contexts, tracer, **planner_kwargs):
    with ServingLoop(make_planner(**planner_kwargs), tracer=tracer) as loop:
        return replay_lockstep(loop, contexts, MAX_LENGTH)


def test_tracing_preserves_response_parity(make_planner, obs_contexts):
    sequential = rollout_next_step(make_planner(), obs_contexts, MAX_LENGTH)
    tracer = Tracer(enabled=True, sample_rate=1.0)
    served = run_traced(make_planner, obs_contexts, tracer)
    assert served == sequential
    assert len(tracer.trace_ids()) > 0


def test_traces_carry_the_span_lifecycle(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    run_traced(make_planner, obs_contexts, tracer)
    traces = tracer.export()
    assert traces, "full sampling must retain every request's trace"
    for trace in traces:
        names = [span["name"] for span in trace["spans"]]
        # Every served request passes admission -> queue -> drain.
        assert names.count("admission") == 1
        assert names.count("queue.wait") == 1
        assert names.count("serve.drain") == 1
        assert names.count("cache.decision") == 1
    # The first request of a context replans (beam depths); later steps hit
    # the evolving plan — both outcomes must appear across the replay.
    outcomes = {
        span["attrs"]["outcome"]
        for trace in traces
        for span in trace["spans"]
        if span["name"] == "cache.decision"
    }
    assert outcomes == {"hit", "replan"}
    assert any(
        span["name"] == "beam.depth" for trace in traces for span in trace["spans"]
    )


def test_drain_spans_stamp_generation_and_batch(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    run_traced(make_planner, obs_contexts, tracer)
    for trace in tracer.export():
        (drain,) = [span for span in trace["spans"] if span["name"] == "serve.drain"]
        assert drain["attrs"]["batch_size"] >= 1
        assert "served_generation" in drain["attrs"]
        assert "batch_tag" in drain["attrs"]


def test_sharded_planner_records_scatter_gather(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    served = run_traced(
        make_planner, obs_contexts, tracer, num_workers=2, shard_backend="thread"
    )
    assert served == rollout_next_step(make_planner(), obs_contexts, MAX_LENGTH)
    names = {
        span["name"] for trace in tracer.export() for span in trace["spans"]
    }
    assert {"shard.scatter", "shard.gather"} <= names


def test_disabled_tracing_allocates_nothing(make_planner, obs_contexts):
    registry = get_registry()
    before = registry.snapshot("obs.trace")["counters"]
    with ServingLoop(make_planner()) as loop:  # no tracer: the default path
        replay_lockstep(loop, obs_contexts, MAX_LENGTH)
        stats = loop.stats()
    after = registry.snapshot("obs.trace")["counters"]
    assert after == before
    assert stats["served"] > 0


def test_trace_ids_identical_across_reruns(make_planner, obs_contexts):
    def run():
        tracer = Tracer(enabled=True, sample_rate=1.0)
        run_traced(make_planner, obs_contexts, tracer)
        return sorted(tracer.trace_ids())

    assert run() == run()


def test_sampled_run_traces_a_strict_deterministic_subset(make_planner, obs_contexts):
    def run(rate):
        tracer = Tracer(enabled=True, sample_rate=rate)
        run_traced(make_planner, obs_contexts, tracer)
        return sorted(tracer.trace_ids()), tracer.counters()["sampled_out"]

    full_ids, _ = run(1.0)
    half_ids, sampled_out = run(0.5)
    assert half_ids == run(0.5)[0]
    assert set(half_ids) < set(full_ids)
    assert sampled_out > 0


def test_loop_stats_shape_survives_tracing(make_planner, obs_contexts):
    tracer = Tracer(enabled=True, sample_rate=1.0)
    with ServingLoop(make_planner(), tracer=tracer) as loop:
        replay_lockstep(loop, obs_contexts, MAX_LENGTH)
        stats = loop.stats()
    assert {"served", "per_queue", "service_latency", "admission", "queue_depth"} <= set(stats)
    assert stats["served"] == sum(q["micro_batch_requests"] for q in stats["per_queue"])
