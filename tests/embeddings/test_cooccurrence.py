"""Unit tests for the PPMI + SVD embeddings."""

import numpy as np
import pytest

from repro.data.interactions import SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.embeddings.cooccurrence import CooccurrenceEmbedding
from repro.utils.exceptions import ConfigurationError, NotFittedError


def _corpus() -> SequenceCorpus:
    vocab = Vocabulary([f"i{i}" for i in range(1, 7)])
    sequences = [[1, 2, 3, 1, 2, 3], [4, 5, 6, 4, 5, 6], [1, 2, 1, 2], [5, 6, 5, 6]] * 5
    return SequenceCorpus(
        name="cooc", vocab=vocab, user_ids=[f"u{i}" for i in range(20)], user_sequences=sequences
    )


class TestCooccurrenceEmbedding:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEmbedding(embedding_dim=0)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            _ = CooccurrenceEmbedding().vectors

    def test_shapes_and_padding_row(self):
        model = CooccurrenceEmbedding(embedding_dim=8).fit(_corpus())
        assert model.vectors.shape == (7, 8)
        assert np.allclose(model.vectors[0], 0.0)

    def test_cooccurring_items_more_similar(self):
        model = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus())
        assert model.similarity(1, 2) > model.similarity(1, 5)
        assert model.similarity(5, 6) > model.similarity(2, 6)

    def test_deterministic(self):
        a = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus()).vectors
        b = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus()).vectors
        assert np.allclose(a, b)

    def test_dimension_padding_when_rank_deficient(self):
        """Requesting more dimensions than the matrix rank pads with zeros."""
        model = CooccurrenceEmbedding(embedding_dim=50).fit(_corpus())
        assert model.vectors.shape == (7, 50)
        assert np.isfinite(model.vectors).all()

    def test_similarity_of_padding_is_zero(self):
        model = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus())
        assert model.similarity(0, 1) == 0.0


def _reference_counts(corpus: SequenceCorpus, window: int) -> np.ndarray:
    """The original per-pair triple loop, kept as the counting oracle."""
    size = corpus.vocab.size
    cooccurrence = np.zeros((size, size), dtype=np.float64)
    for sequence in corpus.user_sequences:
        length = len(sequence)
        for pos, center in enumerate(sequence):
            hi = min(length, pos + window + 1)
            for other_pos in range(pos + 1, hi):
                other = sequence[other_pos]
                cooccurrence[center, other] += 1.0
                cooccurrence[other, center] += 1.0
    return cooccurrence


def _reference_ppmi(corpus: SequenceCorpus, window: int, shift: float) -> np.ndarray:
    cooccurrence = _reference_counts(corpus, window)
    total = cooccurrence.sum()
    row = cooccurrence.sum(axis=1, keepdims=True)
    col = cooccurrence.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(cooccurrence * total / (row @ col))
    pmi[~np.isfinite(pmi)] = 0.0
    return np.maximum(pmi - np.log(shift), 0.0)


class _FakeVocab:
    def __init__(self, size: int) -> None:
        self.size = size


class _FakeCorpus:
    """Corpus-like duck type: just ``vocab.size`` + ``user_sequences``."""

    def __init__(self, size: int, user_sequences) -> None:
        self.vocab = _FakeVocab(size)
        self.user_sequences = user_sequences


class TestVectorizedCounting:
    def test_ppmi_bit_identical_to_reference_loop(self):
        """Vectorised np.add.at counting reproduces the loop bit-for-bit."""
        corpus = _corpus()
        for window in (1, 2, 3, 5):
            model = CooccurrenceEmbedding(embedding_dim=4, window=window, solver="dense")
            reference = _reference_counts(corpus, window)
            from repro.embeddings.cooccurrence import _iter_offset_pairs

            counted = np.zeros_like(reference)
            for left, right in _iter_offset_pairs(corpus, window):
                np.add.at(counted, (left, right), 1.0)
                np.add.at(counted, (right, left), 1.0)
            assert (counted == reference).all()
            model.fit(corpus)
            assert np.isfinite(model.vectors).all()

    def test_dense_vectors_bit_identical_to_reference_pipeline(self):
        corpus = _corpus()
        model = CooccurrenceEmbedding(embedding_dim=7, window=3, solver="dense").fit(corpus)
        ppmi = _reference_ppmi(corpus, window=3, shift=1.0)
        u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
        expected = u[:, :6] * np.sqrt(s[:6])[None, :]
        expected = np.pad(expected, ((0, 0), (0, 1)))
        expected[0] = 0.0
        assert (model.vectors == expected).all()

    def test_counting_identical_across_chunk_boundaries(self):
        import repro.embeddings.cooccurrence as cooc_mod

        corpus = _corpus()
        baseline = CooccurrenceEmbedding(embedding_dim=4, solver="dense").fit(corpus).vectors
        original = cooc_mod._CHUNK_EVENTS
        try:
            cooc_mod._CHUNK_EVENTS = 5  # force many tiny chunks
            chunked = CooccurrenceEmbedding(embedding_dim=4, solver="dense").fit(corpus).vectors
        finally:
            cooc_mod._CHUNK_EVENTS = original
        assert (baseline == chunked).all()


class TestShiftHandling:
    def test_shift_below_one_is_applied_not_ignored(self):
        """shift < 1 used to be silently ignored; it now shifts the PMI up."""
        corpus = _corpus()
        shifted = CooccurrenceEmbedding(embedding_dim=7, shift=0.5, solver="dense").fit(corpus)
        ppmi = _reference_ppmi(corpus, window=3, shift=0.5)
        gram = shifted.vectors @ shifted.vectors.T
        u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
        expected = u[:, :6] * np.sqrt(s[:6])[None, :]
        expected[0] = 0.0
        assert np.allclose(gram, expected @ expected.T)

    def test_shift_above_one_still_applied(self):
        corpus = _corpus()
        plain = _reference_ppmi(corpus, window=3, shift=1.0)
        shifted = _reference_ppmi(corpus, window=3, shift=2.0)
        assert shifted.sum() < plain.sum()  # sanity: the oracle itself shifts
        model = CooccurrenceEmbedding(embedding_dim=7, shift=2.0, solver="dense").fit(corpus)
        gram = model.vectors @ model.vectors.T
        u, s, _ = np.linalg.svd(shifted, full_matrices=False)
        expected = u[:, :6] * np.sqrt(s[:6])[None, :]
        expected[0] = 0.0
        assert np.allclose(gram, expected @ expected.T)

    def test_nonpositive_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEmbedding(shift=0.0)
        with pytest.raises(ConfigurationError):
            CooccurrenceEmbedding(shift=-1.0)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEmbedding(solver="cholesky")


class TestSparseSolver:
    def test_sparse_matches_dense_gram_at_full_rank(self):
        corpus = _corpus()
        size = corpus.vocab.size
        dense = CooccurrenceEmbedding(embedding_dim=size, solver="dense").fit(corpus)
        sparse = CooccurrenceEmbedding(
            embedding_dim=size, solver="sparse", oversample=size, power_iterations=4
        ).fit(corpus)
        assert sparse.solver_used == "sparse"
        assert dense.solver_used == "dense"
        gram_dense = dense.vectors @ dense.vectors.T
        gram_sparse = sparse.vectors @ sparse.vectors.T
        assert np.allclose(gram_dense, gram_sparse, atol=1e-10)

    def test_sparse_preserves_similarity_structure(self):
        model = CooccurrenceEmbedding(
            embedding_dim=4, solver="sparse", power_iterations=4
        ).fit(_corpus())
        assert model.similarity(1, 2) > model.similarity(1, 5)
        assert model.similarity(5, 6) > model.similarity(2, 6)
        assert np.allclose(model.vectors[0], 0.0)

    def test_sparse_deterministic(self):
        a = CooccurrenceEmbedding(embedding_dim=4, solver="sparse").fit(_corpus()).vectors
        b = CooccurrenceEmbedding(embedding_dim=4, solver="sparse").fit(_corpus()).vectors
        assert (a == b).all()

    def test_auto_solver_picks_by_vocab_size(self):
        small = CooccurrenceEmbedding(embedding_dim=4, sparse_threshold=100).fit(_corpus())
        assert small.solver_used == "dense"
        forced = CooccurrenceEmbedding(embedding_dim=4, sparse_threshold=3).fit(_corpus())
        assert forced.solver_used == "sparse"

    def test_sparse_fit_allocates_no_dense_vocab_matrix(self):
        """The headline scale contract: no (V, V) intermediate in sparse fit.

        At V=4001 a dense co-occurrence matrix alone would be ~128 MB; the
        tracemalloc peak for the whole sparse fit must stay far below that.
        """
        import tracemalloc

        rng = np.random.default_rng(7)
        size = 4001
        sequences = [
            rng.integers(1, size, sz).astype(np.int64)
            for sz in rng.integers(8, 30, 400)
        ]
        corpus = _FakeCorpus(size, sequences)
        model = CooccurrenceEmbedding(embedding_dim=16, solver="sparse")
        tracemalloc.start()
        tracemalloc.reset_peak()
        model.fit(corpus)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dense_bytes = size * size * 8
        assert peak < dense_bytes / 4, f"peak {peak} vs dense (V,V) {dense_bytes}"
        assert model.vectors.shape == (size, 16)
        assert np.isfinite(model.vectors).all()
