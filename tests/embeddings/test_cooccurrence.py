"""Unit tests for the PPMI + SVD embeddings."""

import numpy as np
import pytest

from repro.data.interactions import SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.embeddings.cooccurrence import CooccurrenceEmbedding
from repro.utils.exceptions import ConfigurationError, NotFittedError


def _corpus() -> SequenceCorpus:
    vocab = Vocabulary([f"i{i}" for i in range(1, 7)])
    sequences = [[1, 2, 3, 1, 2, 3], [4, 5, 6, 4, 5, 6], [1, 2, 1, 2], [5, 6, 5, 6]] * 5
    return SequenceCorpus(
        name="cooc", vocab=vocab, user_ids=[f"u{i}" for i in range(20)], user_sequences=sequences
    )


class TestCooccurrenceEmbedding:
    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceEmbedding(embedding_dim=0)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            _ = CooccurrenceEmbedding().vectors

    def test_shapes_and_padding_row(self):
        model = CooccurrenceEmbedding(embedding_dim=8).fit(_corpus())
        assert model.vectors.shape == (7, 8)
        assert np.allclose(model.vectors[0], 0.0)

    def test_cooccurring_items_more_similar(self):
        model = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus())
        assert model.similarity(1, 2) > model.similarity(1, 5)
        assert model.similarity(5, 6) > model.similarity(2, 6)

    def test_deterministic(self):
        a = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus()).vectors
        b = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus()).vectors
        assert np.allclose(a, b)

    def test_dimension_padding_when_rank_deficient(self):
        """Requesting more dimensions than the matrix rank pads with zeros."""
        model = CooccurrenceEmbedding(embedding_dim=50).fit(_corpus())
        assert model.vectors.shape == (7, 50)
        assert np.isfinite(model.vectors).all()

    def test_similarity_of_padding_is_zero(self):
        model = CooccurrenceEmbedding(embedding_dim=4).fit(_corpus())
        assert model.similarity(0, 1) == 0.0
