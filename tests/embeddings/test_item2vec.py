"""Unit tests for the item2vec (SGNS) embeddings."""

import numpy as np
import pytest

from repro.data.interactions import SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.embeddings.item2vec import Item2Vec
from repro.utils.exceptions import ConfigurationError, NotFittedError


def _structured_corpus() -> SequenceCorpus:
    """Two disjoint item clusters that never co-occur across sequences."""
    vocab = Vocabulary([f"i{i}" for i in range(1, 9)])
    cluster_a = [1, 2, 3, 4]
    cluster_b = [5, 6, 7, 8]
    sequences = []
    rng = np.random.default_rng(0)
    for _ in range(30):
        sequences.append(list(rng.permutation(cluster_a)) * 2)
        sequences.append(list(rng.permutation(cluster_b)) * 2)
    return SequenceCorpus(
        name="clusters", vocab=vocab, user_ids=[f"u{i}" for i in range(60)], user_sequences=sequences
    )


class TestItem2Vec:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            Item2Vec(embedding_dim=0)
        with pytest.raises(ConfigurationError):
            Item2Vec(window=0)

    def test_requires_fit_before_access(self):
        with pytest.raises(NotFittedError):
            _ = Item2Vec().vectors

    def test_vector_shapes(self):
        corpus = _structured_corpus()
        model = Item2Vec(embedding_dim=16, epochs=1, seed=0).fit(corpus)
        assert model.vectors.shape == (corpus.vocab.size, 16)
        assert model.vector(3).shape == (16,)

    def test_cooccurring_items_are_more_similar(self):
        corpus = _structured_corpus()
        model = Item2Vec(embedding_dim=16, epochs=3, seed=0).fit(corpus)
        within = np.mean([model.similarity(1, 2), model.similarity(3, 4), model.similarity(5, 6)])
        across = np.mean([model.similarity(1, 5), model.similarity(2, 7), model.similarity(4, 8)])
        assert within > across

    def test_most_similar_excludes_self_and_padding(self):
        corpus = _structured_corpus()
        model = Item2Vec(embedding_dim=8, epochs=1, seed=0).fit(corpus)
        neighbours = model.most_similar(1, top_k=3)
        assert len(neighbours) == 3
        assert all(index not in (0, 1) for index, _ in neighbours)

    def test_most_similar_prefers_same_cluster(self):
        corpus = _structured_corpus()
        model = Item2Vec(embedding_dim=16, epochs=3, seed=0).fit(corpus)
        top = [index for index, _ in model.most_similar(2, top_k=3)]
        assert set(top).issubset({1, 3, 4})

    def test_deterministic_given_seed(self):
        corpus = _structured_corpus()
        a = Item2Vec(embedding_dim=8, epochs=1, seed=5).fit(corpus).vectors
        b = Item2Vec(embedding_dim=8, epochs=1, seed=5).fit(corpus).vectors
        assert np.allclose(a, b)
