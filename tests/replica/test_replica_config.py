"""Resolver tests for the replication configuration surface."""

from __future__ import annotations

import pytest

from repro.replica.config import (
    VALID_DISPATCH_POLICIES,
    resolve_dispatch_policy,
    resolve_num_replicas,
    resolve_refit_at,
)
from repro.utils.exceptions import ConfigurationError


class TestNumReplicas:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        assert resolve_num_replicas() == 1

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICAS", "4")
        assert resolve_num_replicas(2) == 2
        assert resolve_num_replicas() == 4

    def test_empty_environment_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICAS", "")
        assert resolve_num_replicas() == 1

    @pytest.mark.parametrize("bad", [0, -1, "zero"])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            resolve_num_replicas(bad)

    def test_invalid_environment_names_its_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICAS", "many")
        with pytest.raises(ConfigurationError, match=r"\$REPRO_REPLICAS"):
            resolve_num_replicas()


class TestRefitAt:
    def test_default_is_no_refit(self, monkeypatch):
        monkeypatch.delenv("REPRO_REFIT_AT", raising=False)
        assert resolve_refit_at() is None

    def test_environment_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFIT_AT", "1.5")
        assert resolve_refit_at() == 1.5
        assert resolve_refit_at(0.25) == 0.25

    def test_empty_environment_means_no_refit(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFIT_AT", "")
        assert resolve_refit_at() is None

    @pytest.mark.parametrize("bad", [0, -0.5, float("inf"), float("nan"), "soon"])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="refit_at"):
            resolve_refit_at(bad)


class TestDispatchPolicy:
    def test_default_and_choices(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH_POLICY", raising=False)
        assert resolve_dispatch_policy() == "least_loaded"
        for policy in VALID_DISPATCH_POLICIES:
            assert resolve_dispatch_policy(policy) == policy
        assert resolve_dispatch_policy("ROUND_ROBIN") == "round_robin"

    def test_environment_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_POLICY", "round_robin")
        assert resolve_dispatch_policy() == "round_robin"

    def test_invalid_policy_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="dispatch_policy"):
            resolve_dispatch_policy("fastest")
        monkeypatch.setenv("REPRO_DISPATCH_POLICY", "fastest")
        with pytest.raises(ConfigurationError, match=r"\$REPRO_DISPATCH_POLICY"):
            resolve_dispatch_policy()
