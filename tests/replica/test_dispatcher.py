"""Unit tests of the tail-latency-aware dispatcher and replica load tracking.

These drive :class:`~repro.replica.dispatch.Dispatcher` and
:class:`~repro.replica.replica.Replica` through their public accounting API
with stub loops — no planners, no threads — so the routing rules (cold
round-robin, warm least-loaded, session affinity, health filtering) are
asserted deterministically.
"""

from __future__ import annotations

import pytest

from repro.replica.dispatch import Dispatcher
from repro.replica.replica import MIN_WARM_SAMPLES, Replica
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ConfigurationError, ServingError


class _StubLoop:
    def current_depth(self) -> int:
        return 0


def make_replica(index: int, generation: int = 1) -> Replica:
    return Replica(index, planner=object(), loop=_StubLoop(), generation=generation)


def warm_up(replica: Replica, latency_s: float, samples: int = MIN_WARM_SAMPLES) -> None:
    """Feed ``samples`` completed requests at ``latency_s`` each."""
    for _ in range(samples):
        request = ServeRequest.create("next_step", [1], 2)
        replica.on_dispatch()
        request.enqueued_at = 100.0
        request.completed_at = 100.0 + latency_s
        replica.on_complete(request)


def next_step_request(history=(1, 2), objective=3) -> ServeRequest:
    return ServeRequest.create("next_step", history, objective)


def plan_request(history=(1, 2), objective=3) -> ServeRequest:
    return ServeRequest.create("plan_paths", history, objective)


class TestColdStart:
    def test_cold_replicas_round_robin(self):
        replicas = [make_replica(i) for i in range(3)]
        dispatcher = Dispatcher(replicas)
        # Stateless requests rotate strictly while every replica is cold.
        picks = [dispatcher.pick(plan_request()).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert dispatcher.stats()["picks"]["round_robin"] == 6
        assert dispatcher.stats()["picks"]["least_loaded"] == 0

    def test_round_robin_policy_never_scores(self):
        replicas = [make_replica(i) for i in range(2)]
        for replica in replicas:
            warm_up(replica, latency_s=0.01)
        dispatcher = Dispatcher(replicas, policy="round_robin")
        picks = [dispatcher.pick(plan_request()).index for _ in range(4)]
        assert picks == [0, 1, 0, 1]
        assert dispatcher.stats()["picks"]["least_loaded"] == 0


class TestLeastLoaded:
    def test_routes_around_the_deep_replica(self):
        """A replica carrying a backlog loses to an idle one."""
        busy, idle = make_replica(0), make_replica(1)
        warm_up(busy, latency_s=0.005)
        warm_up(idle, latency_s=0.005)
        for _ in range(10):  # backlog: dispatched, never completed
            busy.on_dispatch()
        dispatcher = Dispatcher([busy, idle])
        assert dispatcher.pick(plan_request()).index == 1
        assert dispatcher.stats()["picks"]["least_loaded"] == 1

    def test_routes_around_the_slow_replica(self):
        """At equal depth, the replica with the worse recent p95 loses."""
        slow, fast = make_replica(0), make_replica(1)
        warm_up(slow, latency_s=0.5)
        warm_up(fast, latency_s=0.005)
        dispatcher = Dispatcher([slow, fast])
        assert slow.recent_p95_ms() > fast.recent_p95_ms()
        assert dispatcher.pick(plan_request()).index == 1

    def test_dispatch_failed_undoes_inflight_accounting(self):
        replica = make_replica(0)
        replica.on_dispatch()
        replica.on_dispatch_failed()
        assert replica.stats()["inflight"] == 0
        assert replica.stats()["dispatched"] == 0


class TestAffinity:
    def test_next_step_context_sticks_to_its_replica(self):
        replicas = [make_replica(i) for i in range(3)]
        dispatcher = Dispatcher(replicas)
        first = dispatcher.pick(next_step_request(history=(7, 8), objective=9))
        for _ in range(5):
            again = dispatcher.pick(next_step_request(history=(7, 8), objective=9))
            assert again is first
        assert dispatcher.stats()["picks"]["affinity"] == 5
        assert dispatcher.stats()["sessions_pinned"] == 1

    def test_plan_paths_requests_are_not_pinned(self):
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        picks = {dispatcher.pick(plan_request()).index for _ in range(4)}
        assert picks == {0, 1}
        assert dispatcher.stats()["sessions_pinned"] == 0

    def test_reset_clears_affinity(self):
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        dispatcher.pick(next_step_request())
        assert dispatcher.stats()["sessions_pinned"] == 1
        dispatcher.reset([make_replica(10), make_replica(11)])
        assert dispatcher.stats()["sessions_pinned"] == 0
        assert dispatcher.pick(next_step_request()).index in (10, 11)

    def test_forget_drops_one_replicas_sessions(self):
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        owner = dispatcher.pick(next_step_request())
        dispatcher.forget(owner)
        assert dispatcher.stats()["sessions_pinned"] == 0

    def test_unhealthy_affinity_owner_is_reassigned(self):
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        owner = dispatcher.pick(next_step_request())
        owner.mark_unhealthy()
        replacement = dispatcher.pick(next_step_request())
        assert replacement is not owner
        assert replacement.healthy

    def test_unhealthy_owner_eviction_is_counted_and_unpins(self):
        """Failure-detector eviction shows up in the dispatch accounting:
        the session unpins from the dead owner, counts as evicted, and the
        pin table reflects the re-home — not a stale owner entry."""
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        owner = dispatcher.pick(next_step_request())
        assert dispatcher.stats()["sessions_evicted"] == 0
        owner.mark_unhealthy()
        replacement = dispatcher.pick(next_step_request())
        stats = dispatcher.stats()
        assert stats["sessions_evicted"] == 1
        assert stats["sessions_pinned"] == 1  # re-pinned to the replacement
        # The re-homed replica owns the session from here on (replan once,
        # then affinity): subsequent picks hit the affinity path again.
        assert dispatcher.pick(next_step_request()) is replacement
        assert dispatcher.stats()["picks"]["affinity"] == 1
        assert dispatcher.stats()["sessions_evicted"] == 1

    def test_recovered_owner_does_not_reclaim_an_evicted_session(self):
        """Eviction is permanent per session: once re-homed, the session
        stays with its replacement even after the old owner recovers —
        the replacement replanned the context and owns its plan state."""
        replicas = [make_replica(i) for i in range(2)]
        dispatcher = Dispatcher(replicas)
        owner = dispatcher.pick(next_step_request())
        owner.mark_unhealthy()
        replacement = dispatcher.pick(next_step_request())
        owner.mark_healthy()
        assert dispatcher.pick(next_step_request()) is replacement
        assert dispatcher.stats()["sessions_evicted"] == 1

    def test_owner_removed_from_fleet_is_evicted_even_while_healthy(self):
        """A retired replica (healthy flag still up, but no longer in the
        replica list) must not keep owning sessions."""
        keep, retire = make_replica(0), make_replica(1)
        dispatcher = Dispatcher([keep, retire])
        request = next_step_request()
        owner = dispatcher.pick(request)
        survivor = keep if owner is retire else retire
        dispatcher.reset([survivor])
        # reset cleared affinity wholesale; re-pin then shrink via direct
        # list surgery to isolate the owner-not-in-fleet branch.
        owner2 = dispatcher.pick(next_step_request((9, 9), 4))
        assert owner2 is survivor
        with dispatcher._lock:
            dispatcher._replicas = [make_replica(5)]
        picked = dispatcher.pick(next_step_request((9, 9), 4))
        assert picked is not survivor
        assert dispatcher.stats()["sessions_evicted"] >= 1


class TestHealth:
    def test_unhealthy_replicas_skipped(self):
        replicas = [make_replica(i) for i in range(3)]
        replicas[0].mark_unhealthy()
        dispatcher = Dispatcher(replicas)
        picks = {dispatcher.pick(plan_request()).index for _ in range(6)}
        assert 0 not in picks
        replicas[0].mark_healthy()
        picks = {dispatcher.pick(plan_request()).index for _ in range(6)}
        assert 0 in picks

    def test_no_healthy_replica_raises(self):
        replicas = [make_replica(0)]
        replicas[0].mark_unhealthy()
        dispatcher = Dispatcher(replicas)
        with pytest.raises(ServingError, match="no healthy replica"):
            dispatcher.pick(plan_request())

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="dispatch_policy"):
            Dispatcher([make_replica(0)], policy="fastest_fingers")
