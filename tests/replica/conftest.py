"""Fixtures for the replicated serving suite.

Two factory flavours, matching the two halves of the replication contract:

* ``make_factory`` — planners over ONE session-scoped fitted backbone
  (cheap; all replicas trivially share a generation's weights).  Used by
  the parity suite: what must hold is that *routing* never changes
  answers.
* ``fresh_factory`` — a genuinely independent backbone fitted per call
  (deterministic config + seed, so weights are identical across calls).
  Used by the refit suite: the coordinator must be able to train standby
  replicas off-path without touching a serving backbone.
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives

MAX_LENGTH = 5

_IRN_KWARGS = dict(
    embedding_dim=16,
    user_dim=4,
    num_heads=2,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_sequence_length=50,
    seed=0,
)


@pytest.fixture(scope="session")
def replica_irn(tiny_split):
    return IRN(**_IRN_KWARGS).fit(tiny_split)


@pytest.fixture(scope="session")
def replica_contexts(tiny_split):
    instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=9)
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


@pytest.fixture()
def make_factory(replica_irn, tiny_split):
    """Factory-of-factories over the shared session backbone."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)

        def factory():
            return BeamSearchPlanner(replica_irn, **kwargs).fit(tiny_split)

        return factory

    return build


@pytest.fixture()
def fresh_factory(tiny_split):
    """A factory fitting an independent (but bit-identical) backbone per call."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)

        def factory():
            backbone = IRN(**_IRN_KWARGS).fit(tiny_split)
            return BeamSearchPlanner(backbone, **kwargs).fit(tiny_split)

        return factory

    return build


@pytest.fixture()
def sequential_paths(replica_irn, tiny_split, replica_contexts):
    """The sequential single-planner reference trace."""
    from repro.evaluation.protocol import rollout_next_step

    planner = BeamSearchPlanner(replica_irn, max_length=MAX_LENGTH).fit(tiny_split)
    return rollout_next_step(planner, replica_contexts, MAX_LENGTH)
