"""End-to-end parity of replicated serving at a shared generation.

Acceptance contract of the replication PR (mirror of ``tests/serve``'s
suite for the async-serving rung): with every replica at one generation,
:class:`~repro.replica.set.ReplicaSet` responses are bit-identical to
single-replica (and therefore to sequential) serving — for the serial and
thread planner backends, at 1, 2 and 3 replicas, under either dispatch
policy.  Replication changes *where* work happens, never what is answered.
"""

from __future__ import annotations

import pytest

from repro.replica import ReplicaSet
from repro.serve import replay_lockstep
from repro.utils.exceptions import ConfigurationError, ServingError

BACKENDS = ["serial", "thread"]
MAX_LENGTH = 5  # keep in sync with tests/replica/conftest.py


class TestReplicaSetParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_replicas", [1, 2, 3])
    def test_lockstep_replay_bit_identical(
        self, make_factory, replica_contexts, sequential_paths, backend, num_replicas
    ):
        factory = make_factory(shard_backend=backend)
        with ReplicaSet(factory, num_replicas=num_replicas) as replica_set:
            served = replay_lockstep(replica_set, replica_contexts, MAX_LENGTH)
        assert served == sequential_paths

    @pytest.mark.parametrize("dispatch_policy", ["least_loaded", "round_robin"])
    def test_parity_across_dispatch_policies(
        self, make_factory, replica_contexts, sequential_paths, dispatch_policy
    ):
        with ReplicaSet(
            make_factory(), num_replicas=2, dispatch_policy=dispatch_policy
        ) as replica_set:
            served = replay_lockstep(replica_set, replica_contexts, MAX_LENGTH)
        assert served == sequential_paths

    def test_plan_paths_futures_match_plan_path(self, make_factory, replica_contexts):
        reference = make_factory()()
        expected = [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in replica_contexts
        ]
        with ReplicaSet(make_factory(), num_replicas=2) as replica_set:
            futures = [
                replica_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in replica_contexts
            ]
            assert [future.result() for future in futures] == expected

    def test_mixed_kind_submissions_match_sequential(
        self, make_factory, replica_contexts
    ):
        reference = make_factory()()
        with ReplicaSet(make_factory(), num_replicas=2) as replica_set:
            next_futures = [
                replica_set.submit_next_step(history, objective, [], user_index=user)
                for history, objective, user in replica_contexts
            ]
            plan_futures = [
                replica_set.submit_plan_paths(history, objective, user_index=user)
                for history, objective, user in replica_contexts
            ]
            next_items = [future.result() for future in next_futures]
            plans = [future.result() for future in plan_futures]
        assert next_items == [
            reference.next_step(history, objective, [], user_index=user)
            for history, objective, user in replica_contexts
        ]
        assert plans == [
            reference.plan_path(history, objective, user_index=user)
            for history, objective, user in replica_contexts
        ]

    def test_session_affinity_pins_contexts_to_one_replica(
        self, make_factory, replica_contexts
    ):
        """Every answered request of one serving context names the same
        replica — the invariant that makes replicated parity structural."""
        with ReplicaSet(make_factory(), num_replicas=3) as replica_set:
            owners: "dict[int, set[int]]" = {}
            for _round in range(3):
                futures = []
                for index, (history, objective, user) in enumerate(replica_contexts):
                    request_future = replica_set.submit_next_step(
                        history, objective, [], user_index=user
                    )
                    futures.append((index, request_future))
                for index, future in futures:
                    future.result()
            # replica_index is stamped on the envelope at dispatch; re-submit
            # once more and record the owners directly off the envelopes.
            from repro.serve.request import ServeRequest

            for index, (history, objective, user) in enumerate(replica_contexts):
                request = ServeRequest.create(
                    "next_step", history, objective, user_index=user
                )
                replica_set.enqueue(request).result()
                owners.setdefault(index, set()).add(request.replica_index)
            stats = replica_set.stats()
        assert all(len(owner_set) == 1 for owner_set in owners.values())
        assert stats["dispatch"]["sessions_pinned"] >= len(replica_contexts)
        assert stats["dispatch"]["picks"]["affinity"] > 0

    def test_stats_expose_fleet_and_per_replica_accounting(
        self, make_factory, replica_contexts
    ):
        with ReplicaSet(make_factory(), num_replicas=2) as replica_set:
            replay_lockstep(replica_set, replica_contexts, MAX_LENGTH)
            stats = replica_set.stats()
        assert stats["num_replicas"] == 2
        assert stats["generation"] == 1
        assert stats["served"] > 0
        assert len(stats["replicas"]) == 2
        # Per-replica admission scopes survive into the fleet aggregate.
        per_replica = stats["admission"]["per_replica"]
        assert sorted(entry["scope"] for entry in per_replica) == [
            "replica-0",
            "replica-1",
        ]
        assert stats["admission"]["admitted"] == sum(
            entry["admitted"] for entry in per_replica
        )
        assert stats["queue_depth"]["max"] >= 1
        assert stats["micro_batches"]["count"] >= 1

    def test_enqueue_after_close_raises(self, make_factory, replica_contexts):
        replica_set = ReplicaSet(make_factory(), num_replicas=2)
        replica_set.start()
        replica_set.close()
        history, objective, user = replica_contexts[0]
        with pytest.raises(ServingError):
            replica_set.submit_next_step(history, objective, [], user_index=user)

    def test_factory_must_be_callable_and_produce_planners(self):
        with pytest.raises(ConfigurationError, match="planner_factory"):
            ReplicaSet("not-a-factory")
        with pytest.raises(ConfigurationError, match="plan_for_requests"):
            ReplicaSet(lambda: object(), num_replicas=1)

    def test_num_replicas_resolved_from_environment(self, make_factory, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICAS", "3")
        replica_set = ReplicaSet(make_factory())
        try:
            assert replica_set.num_replicas == 3
            assert len(replica_set.active_replicas()) == 3
        finally:
            replica_set.close()
