"""Hot-refit correctness: atomic generation flips under live traffic.

The satellite contract of the replication PR: requests enqueued during the
flip window all answer from exactly one generation — no torn micro-batch
mixes generations — under the serial and thread planner backends; no
admitted request is ever dropped or errored by a refit; per serving
context the answering generation is monotone in submission order.
"""

from __future__ import annotations

import threading

import pytest

from repro.replica import ReplicaSet
from repro.utils.exceptions import ServingError, StaleGenerationError

MAX_LENGTH = 5  # keep in sync with tests/replica/conftest.py


def _drain(requests):
    """Resolve every future loudly; returns the envelopes."""
    for request in requests:
        request.future.result()
    return requests


def _submit_round(replica_set, contexts):
    from repro.serve.request import ServeRequest

    requests = []
    for history, objective, user in contexts:
        request = ServeRequest.create("next_step", history, objective, user_index=user)
        replica_set.enqueue(request)
        requests.append(request)
    return requests


class TestRefitRace:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_flip_window_requests_answer_from_exactly_one_generation(
        self, fresh_factory, replica_contexts, backend
    ):
        factory = fresh_factory(shard_backend=backend)
        with ReplicaSet(factory, num_replicas=2) as replica_set:
            # Phase 1: pre-refit traffic is all generation 1.
            before = _drain(_submit_round(replica_set, replica_contexts))
            assert {r.served_generation for r in before} == {1}

            # Phase 2: keep submitting while the refit trains and flips.
            during: list = []
            refit_report: dict = {}

            def run_refit():
                refit_report.update(replica_set.refit())

            refitter = threading.Thread(target=run_refit)
            refitter.start()
            # Bounded pressure: keep the flip window busy without letting a
            # slow CI box accumulate an unbounded backlog (the block policy
            # already throttles producers at the queue bound).
            while refitter.is_alive() and len(during) < 1800:
                during.extend(_submit_round(replica_set, replica_contexts))
            refitter.join()
            _drain(during)

            # Phase 3: post-refit traffic is all generation 2.
            after = _drain(_submit_round(replica_set, replica_contexts))
            assert {r.served_generation for r in after} == {2}

        # Every admitted request resolved with an answer at a generation.
        everything = before + during + after
        assert all(r.future.done() for r in everything)
        assert all(r.served_generation in (1, 2) for r in everything)

        # No torn micro-batch: group by the drain's batch tag — each batch
        # was answered at exactly one generation, by exactly one replica.
        batches: "dict[int, set]" = {}
        owners: "dict[int, set]" = {}
        for request in everything:
            batches.setdefault(request.batch_tag, set()).add(request.served_generation)
            owners.setdefault(request.batch_tag, set()).add(request.replica_index)
        assert all(len(generations) == 1 for generations in batches.values())
        assert all(len(replicas) == 1 for replicas in owners.values())

        # Per serving context, the answering generation is monotone in
        # submission order: once a context sees the new model it never
        # falls back to the old one.
        per_context: "dict[tuple, list[int]]" = {}
        for request in everything:
            per_context.setdefault(request.routing_key(), []).append(
                request.served_generation
            )
        for generations in per_context.values():
            assert generations == sorted(generations)

        assert refit_report["generation_from"] == 1
        assert refit_report["generation_to"] == 2
        assert replica_set.fit_generation == 2

    def test_refit_retires_old_replicas_and_reports(self, fresh_factory, replica_contexts):
        with ReplicaSet(fresh_factory(), num_replicas=2) as replica_set:
            old_replicas = replica_set.active_replicas()
            _drain(_submit_round(replica_set, replica_contexts))
            report = replica_set.refit()
            # Old loops are closed (drained dry), new ones serve.
            assert all(replica.loop.queues[0].closed for replica in old_replicas)
            new_replicas = replica_set.active_replicas()
            assert {r.generation for r in new_replicas} == {2}
            assert not (set(id(r) for r in new_replicas) & set(id(r) for r in old_replicas))
            after = _drain(_submit_round(replica_set, replica_contexts))
            assert {r.served_generation for r in after} == {2}
            stats = replica_set.stats()
        assert report["train_seconds"] >= 0
        assert report["flip_seconds"] < 0.5  # the flip is pointer swaps, not training
        assert report["num_replicas"] == 2
        assert stats["retired_replicas"] == 2
        assert len(stats["refits"]) == 1
        assert stats["refits"][0]["generation_to"] == 2
        # The old generation collapsed into counter snapshots — its models
        # are gone from the live set, but its work still counts fleet-wide.
        archived = replica_set.archived_stats()
        assert len(archived) == 2
        assert sum(snapshot["loop"]["served"] for snapshot in archived) == report[
            "retired_served"
        ]
        assert len(stats["replicas"]) == 2  # live (new-generation) replicas only
        assert stats["served"] >= report["retired_served"] + len(replica_contexts)
        assert stats["admission"]["admitted"] >= stats["served"]

    def test_second_concurrent_refit_rejected(self, fresh_factory):
        with ReplicaSet(fresh_factory(), num_replicas=1) as replica_set:
            coordinator = replica_set.refit_coordinator
            coordinator._refit_lock.acquire()  # simulate an in-progress refit
            try:
                with pytest.raises(ServingError, match="already in progress"):
                    replica_set.refit()
                assert coordinator.refitting
            finally:
                coordinator._refit_lock.release()
            assert not coordinator.refitting

    def test_refit_on_closed_set_rejected(self, fresh_factory):
        replica_set = ReplicaSet(fresh_factory(), num_replicas=1)
        replica_set.start()
        replica_set.close()
        with pytest.raises(ServingError, match="closed"):
            replica_set.refit()

    def test_successive_refits_keep_bumping_the_generation(
        self, fresh_factory, replica_contexts
    ):
        with ReplicaSet(fresh_factory(), num_replicas=1) as replica_set:
            assert replica_set.fit_generation == 1
            replica_set.refit()
            replica_set.refit()
            assert replica_set.fit_generation == 3
            after = _drain(_submit_round(replica_set, replica_contexts))
            assert {r.served_generation for r in after} == {3}
            assert [r["generation_to"] for r in replica_set.stats()["refits"]] == [2, 3]


class TestGenerationPinning:
    def test_pinned_planner_rejects_in_place_retrain(self, fresh_factory, tiny_split):
        """The protocol violation the pin exists for: retraining a serving
        replica's backbone in place raises instead of serving mixed
        generations or silently invalidating."""
        planner = fresh_factory()()
        pinned = planner.pin_generation()
        assert pinned == planner.backbone.fit_generation
        assert planner.serving_generation == pinned
        planner.backbone.fit(tiny_split)  # in-place retrain under the pin
        with pytest.raises(StaleGenerationError, match="pinned"):
            planner.next_step([1, 2], 3, [])

    def test_pin_carries_the_replica_sets_generation_tag(self, fresh_factory):
        planner = fresh_factory()()
        planner.pin_generation(serving_generation=7)
        assert planner.serving_generation == 7
        # Enforcement still keys on the backbone's own fit_generation.
        assert planner._pinned_generation == planner.backbone.fit_generation

    def test_unpinned_planner_still_invalidates_silently(self, fresh_factory, tiny_split):
        """The pre-replication behaviour is unchanged for unpinned planners:
        a backbone retrain invalidates caches and replans, no error."""
        planner = fresh_factory()()
        first = planner.next_step([1, 2], 3, [])
        planner.backbone.fit(tiny_split)
        again = planner.next_step([1, 2], 3, [])
        assert again == first  # deterministic retrain -> identical weights

    def test_generation_guard_detects_mid_dispatch_retrain(self):
        """The executor-level torn-dispatch check: a guard value changing
        across a fused dispatch raises StaleGenerationError."""
        from repro.shard.executor import ShardedExecutor

        executor = ShardedExecutor(num_workers=2, backend="serial")
        generation = {"value": 1}

        def bump_mid_shard(shard, payload):
            generation["value"] += 1
            return [item * 10 for item in payload]

        with pytest.raises(StaleGenerationError, match="generation changed"):
            executor.map_partitioned(
                [1, 2, 3, 4],
                ["a", "b", "c", "d"],
                bump_mid_shard,
                generation_guard=lambda: generation["value"],
            )
        # A stable guard passes through untouched.
        results = executor.map_partitioned(
            [1, 2, 3, 4],
            ["a", "b", "c", "d"],
            lambda shard, payload: [item * 10 for item in payload],
            generation_guard=lambda: generation["value"],
        )
        assert results == [10, 20, 30, 40]

    def test_generation_guard_single_worker_path(self):
        from repro.shard.executor import ShardedExecutor

        executor = ShardedExecutor(num_workers=1, backend="serial")
        generation = {"value": 1}

        def bump(shard, payload):
            generation["value"] += 1
            return [0 for _ in payload]

        with pytest.raises(StaleGenerationError, match="single-worker"):
            executor.map_partitioned(
                [1, 2], ["a", "b"], bump, generation_guard=lambda: generation["value"]
            )


class TestCloseRefitRace:
    def test_flip_refused_when_set_closes_during_training(self, fresh_factory):
        """close() racing the training phase must not let the flip install a
        live standby set into a closed ReplicaSet (leaked drain threads)."""
        import threading as _threading

        base_factory = fresh_factory()
        replica_set_box: dict = {}
        calls = {"count": 0}

        def closing_factory():
            calls["count"] += 1
            if calls["count"] == 2:  # the refit's standby build: close mid-train
                replica_set_box["set"].close()
            return base_factory()

        replica_set = ReplicaSet(closing_factory, num_replicas=1)
        replica_set_box["set"] = replica_set
        replica_set.start()
        before = _threading.active_count()
        with pytest.raises(ServingError, match="closed"):
            replica_set.refit()
        # No generation landed, no refit recorded, no drain thread leaked.
        assert replica_set.fit_generation == 1
        assert replica_set.stats()["refits"] == []
        assert _threading.active_count() <= before

    def test_close_after_flip_covers_the_new_generation(self, fresh_factory):
        replica_set = ReplicaSet(fresh_factory(), num_replicas=1)
        replica_set.start()
        replica_set.refit()
        new_replicas = replica_set.active_replicas()
        replica_set.close()
        assert all(replica.loop.queues[0].closed for replica in new_replicas)
