"""Unit tests for the IRS evaluator wrapper and evaluator selection."""

import numpy as np
import pytest

from repro.evaluation.evaluator import IRSEvaluator, select_evaluator
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.utils.exceptions import ConfigurationError


class TestIRSEvaluator:
    def test_requires_fitted_backbone(self):
        with pytest.raises(ConfigurationError):
            IRSEvaluator(Popularity())

    def test_probability_matches_model_distribution(self, fitted_markov, markov_evaluator):
        sequence = [1, 2, 3]
        probs = fitted_markov.probabilities(sequence)
        item = int(np.argmax(probs))
        assert markov_evaluator.probability(item, sequence) == pytest.approx(probs[item])

    def test_log_probability_is_clamped(self, markov_evaluator):
        value = markov_evaluator.log_probability(0, [1, 2])  # padding has probability 0
        assert value >= np.log(1e-12)

    def test_distribution_sums_to_one(self, markov_evaluator):
        assert markov_evaluator.distribution([1, 2, 3]).sum() == pytest.approx(1.0)

    def test_rank_consistency(self, fitted_markov, markov_evaluator):
        sequence = [2, 3]
        assert markov_evaluator.rank(5, sequence) == fitted_markov.rank_of(sequence, 5)

    def test_path_log_probabilities_length_and_prefix_semantics(self, markov_evaluator):
        history, path = [1, 2], [3, 4, 5]
        values = markov_evaluator.path_log_probabilities(history, path)
        assert len(values) == 3
        # first entry conditions on the bare history
        assert values[0] == pytest.approx(markov_evaluator.log_probability(3, history))
        # second entry conditions on history + first path item
        assert values[1] == pytest.approx(markov_evaluator.log_probability(4, history + [3]))

    def test_objective_log_probabilities_has_one_extra_entry(self, markov_evaluator):
        history, path = [1, 2], [3, 4]
        values = markov_evaluator.objective_log_probabilities(history, path, objective=9)
        assert len(values) == 3
        assert values[0] == pytest.approx(markov_evaluator.log_probability(9, history))
        assert values[-1] == pytest.approx(markov_evaluator.log_probability(9, history + path))

    def test_name_property(self, markov_evaluator):
        assert markov_evaluator.name == "Markov"


class TestSelectEvaluator:
    def test_selects_best_hit_ratio(self, tiny_split):
        selection = select_evaluator(
            {"Markov": MarkovChainRecommender(), "POP": Popularity()}, tiny_split
        )
        assert set(selection.scores) == {"Markov", "POP"}
        best = max(selection.scores.items(), key=lambda kv: (kv[1]["hr@20"], kv[1]["mrr"]))[0]
        assert selection.best_name() == best

    def test_empty_candidates_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            select_evaluator({}, tiny_split)

    def test_prefitted_candidates_not_refitted(self, tiny_split, fitted_markov):
        selection = select_evaluator({"Markov": fitted_markov}, tiny_split, fit=False)
        assert selection.evaluator.model is fitted_markov
