"""Unit and property tests for the IRS metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.evaluation.metrics import (
    hit_ratio_at_k,
    increase_of_interest,
    increment_of_rank,
    log_perplexity,
    mean_reciprocal_rank,
    success_rate,
)
from repro.evaluation.protocol import PathRecord
from repro.utils.exceptions import ConfigurationError


def _record(history, objective, path):
    return PathRecord(user_index=0, history=tuple(history), objective=objective, path=tuple(path))


class _UniformEvaluator:
    """Fake evaluator with a constant distribution (for metric algebra tests)."""

    def __init__(self, vocab_size=10):
        self.vocab_size = vocab_size

    def log_probability(self, item, sequence):
        return float(np.log(1.0 / self.vocab_size))

    def rank(self, item, sequence):
        return 5

    def path_log_probabilities(self, history, path):
        return [self.log_probability(i, history) for i in path]


class _SequenceAwareEvaluator(_UniformEvaluator):
    """Fake evaluator whose objective probability grows with sequence length."""

    def log_probability(self, item, sequence):
        return float(np.log(min(0.9, 0.05 * (1 + len(sequence)))))

    def rank(self, item, sequence):
        return max(1, 10 - len(sequence))


class TestSuccessRate:
    def test_counts_paths_containing_objective(self):
        records = [
            _record([1], 5, [2, 5]),
            _record([1], 6, [2, 3]),
            _record([1], 7, [7]),
            _record([1], 8, []),
        ]
        assert success_rate(records) == pytest.approx(0.5)

    def test_empty_records_rejected(self):
        with pytest.raises(ConfigurationError):
            success_rate([])

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_property_matches_fraction(self, reached_flags):
        records = [
            _record([1], 99, [99] if reached else [1]) for reached in reached_flags
        ]
        assert success_rate(records) == pytest.approx(sum(reached_flags) / len(reached_flags))


class TestInterestAndRank:
    def test_uniform_evaluator_gives_zero_change(self):
        records = [_record([1, 2], 5, [3, 4])]
        evaluator = _UniformEvaluator()
        assert increase_of_interest(records, evaluator) == pytest.approx(0.0)
        assert increment_of_rank(records, evaluator) == pytest.approx(0.0)

    def test_growing_interest_is_positive(self):
        records = [_record([1, 2], 5, [3, 4, 6])]
        evaluator = _SequenceAwareEvaluator()
        assert increase_of_interest(records, evaluator) > 0
        assert increment_of_rank(records, evaluator) > 0

    def test_rank_improvement_sign_convention(self):
        """IoR is positive when the rank number decreases (objective climbs)."""

        class _Worsening(_UniformEvaluator):
            def rank(self, item, sequence):
                return 2 + len(sequence)

        assert increment_of_rank([_record([1], 5, [2, 3])], _Worsening()) < 0


class TestLogPerplexity:
    def test_matches_mean_negative_log_probability(self):
        evaluator = _UniformEvaluator(vocab_size=4)
        records = [_record([1], 5, [2, 3])]
        assert log_perplexity(records, evaluator) == pytest.approx(np.log(4.0))

    def test_empty_paths_are_skipped(self):
        evaluator = _UniformEvaluator(vocab_size=4)
        records = [_record([1], 5, []), _record([1], 5, [2])]
        assert log_perplexity(records, evaluator) == pytest.approx(np.log(4.0))

    def test_all_paths_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            log_perplexity([_record([1], 5, [])], _UniformEvaluator())

    def test_lower_is_smoother(self, markov_evaluator, tiny_split):
        """A path of frequent transitions scores lower PPL than a random path."""
        sequence = tiny_split.train[0].items
        history, smooth_path = list(sequence[:4]), list(sequence[4:9])
        rng = np.random.default_rng(0)
        random_path = list(rng.integers(1, tiny_split.corpus.vocab.size, size=len(smooth_path)))
        smooth = log_perplexity([_record(history, 1, smooth_path)], markov_evaluator)
        rough = log_perplexity([_record(history, 1, random_path)], markov_evaluator)
        assert smooth < rough


class TestRankingMetrics:
    def test_hit_ratio(self):
        assert hit_ratio_at_k([1, 5, 21, 40], k=20) == pytest.approx(0.5)

    def test_mrr(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    def test_empty_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            hit_ratio_at_k([])
        with pytest.raises(ConfigurationError):
            mean_reciprocal_rank([])

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=100))
    def test_property_bounds(self, ranks):
        assert 0.0 <= hit_ratio_at_k(ranks, k=20) <= 1.0
        assert 0.0 < mean_reciprocal_rank(ranks) <= 1.0

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=50))
    def test_property_hr_monotone_in_k(self, ranks):
        assert hit_ratio_at_k(ranks, k=5) <= hit_ratio_at_k(ranks, k=20) <= hit_ratio_at_k(ranks, k=50)
