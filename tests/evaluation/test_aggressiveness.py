"""Tests for the aggressiveness-degree sweeps (§IV-D3 / Figure 7)."""

from __future__ import annotations

import pytest

from repro.core.irn import IRN
from repro.evaluation.aggressiveness import (
    AggressivenessPoint,
    sweep_irn_aggressiveness,
    sweep_rec2inf_aggressiveness,
)
from repro.evaluation.protocol import IRSEvaluationProtocol
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity


@pytest.fixture(scope="module")
def protocol(tiny_split, markov_evaluator):
    return IRSEvaluationProtocol(
        tiny_split,
        markov_evaluator,
        max_length=8,
        min_objective_interactions=2,
        max_instances=10,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_irn(tiny_split):
    model = IRN(
        embedding_dim=12,
        user_dim=4,
        num_heads=1,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=16,
        seed=0,
    )
    return model.fit(tiny_split)


class TestRec2InfSweep:
    def test_one_point_per_level(self, tiny_split, protocol):
        points = sweep_rec2inf_aggressiveness(
            Popularity(), tiny_split, protocol, levels=(5, 15, 30)
        )
        assert [point.level for point in points] == [5.0, 15.0, 30.0]
        for point in points:
            assert point.framework == "Rec2Inf-POP"
            assert 0.0 <= point.result.success <= 1.0

    def test_fits_unfitted_backbone_once(self, tiny_split, protocol):
        backbone = MarkovChainRecommender()
        assert backbone.corpus is None
        sweep_rec2inf_aggressiveness(backbone, tiny_split, protocol, levels=(5,))
        assert backbone.corpus is tiny_split.corpus

    def test_larger_candidate_sets_do_not_reduce_reach(self, tiny_split, protocol):
        points = sweep_rec2inf_aggressiveness(
            MarkovChainRecommender(), tiny_split, protocol, levels=(1, 40)
        )
        success = [point.result.success for point in points]
        # k = 1 is the vanilla recommender; a 40-item candidate set can only
        # add opportunities to steer toward the objective.
        assert success[1] >= success[0]

    def test_as_row_shape(self, tiny_split, protocol):
        points = sweep_rec2inf_aggressiveness(Popularity(), tiny_split, protocol, levels=(10,))
        row = points[0].as_row()
        assert row["framework"] == "Rec2Inf-POP"
        assert row["level"] == 10.0
        assert "log(PPL)" in row


class TestIrnSweep:
    def test_requires_fitted_base_model_when_not_retraining(self, tiny_split, protocol):
        with pytest.raises(ValueError):
            sweep_irn_aggressiveness(tiny_split, protocol, levels=(0.0, 1.0), base_model=None)

    def test_reuses_base_model_and_restores_weight(self, tiny_split, protocol, tiny_irn):
        points = sweep_irn_aggressiveness(
            tiny_split, protocol, levels=(0.0, 0.5, 1.0), base_model=tiny_irn
        )
        assert [point.level for point in points] == [0.0, 0.5, 1.0]
        # the sweep must leave the shared model at the default weight
        assert tiny_irn.objective_weight == pytest.approx(1.0)
        for point in points:
            assert isinstance(point, AggressivenessPoint)
            assert point.framework == "IRN"

    def test_result_names_encode_the_level(self, tiny_split, protocol, tiny_irn):
        points = sweep_irn_aggressiveness(
            tiny_split, protocol, levels=(0.25,), base_model=tiny_irn
        )
        assert points[0].result.framework == "IRN(wt=0.25)"
