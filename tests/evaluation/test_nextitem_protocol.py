"""Tests for the next-item protocol, objective sampling and the IRS protocol."""

import numpy as np
import pytest

from repro.core.pf2inf import Pf2Inf
from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.evaluation.nextitem import evaluate_next_item
from repro.evaluation.protocol import IRSEvaluationProtocol, sample_objectives
from repro.evaluation.aggressiveness import sweep_rec2inf_aggressiveness
from repro.models.pop import Popularity
from repro.utils.exceptions import ConfigurationError


class TestNextItemEvaluation:
    def test_result_fields_and_bounds(self, fitted_markov, tiny_split):
        result = evaluate_next_item(fitted_markov, tiny_split)
        assert 0.0 <= result.hit_ratio <= 1.0
        assert 0.0 < result.mrr <= 1.0
        assert result.model == "Markov"
        row = result.as_row()
        assert row["hr@20"] == pytest.approx(result.hit_ratio, abs=1e-4)

    def test_max_instances_caps_work(self, fitted_markov, tiny_split):
        result = evaluate_next_item(fitted_markov, tiny_split, max_instances=5)
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_markov_is_competitive_with_popularity(self, tiny_split, fitted_markov):
        """The sequential signal in the synthetic data is learnable.

        On the tiny test corpus the two models are close, so the assertion is
        deliberately loose (Markov within 20% of POP on MRR and at least as
        good on HR@20 up to the same slack).
        """
        pop_result = evaluate_next_item(Popularity().fit(tiny_split), tiny_split)
        markov_result = evaluate_next_item(fitted_markov, tiny_split)
        assert markov_result.mrr >= 0.8 * pop_result.mrr
        assert markov_result.hit_ratio >= 0.8 * pop_result.hit_ratio


class TestObjectiveSampling:
    def test_constraints_respected(self, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=3, seed=0)
        popularity = tiny_split.corpus.item_popularity()
        for instance in instances:
            assert instance.objective not in instance.history
            assert popularity[instance.objective] >= 3
            assert instance.objective != 0

    def test_deterministic_given_seed(self, tiny_split):
        a = sample_objectives(tiny_split, seed=4)
        b = sample_objectives(tiny_split, seed=4)
        assert [i.objective for i in a] == [i.objective for i in b]

    def test_max_instances(self, tiny_split):
        instances = sample_objectives(tiny_split, seed=0, max_instances=7)
        assert len(instances) <= 7

    def test_impossible_constraint_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            sample_objectives(tiny_split, min_objective_interactions=10_000)


class TestIRSProtocol:
    @pytest.fixture(scope="class")
    def protocol(self, tiny_split, markov_evaluator):
        return IRSEvaluationProtocol(
            tiny_split, markov_evaluator, max_length=6, max_instances=12, seed=0
        )

    def test_same_instances_shared_across_frameworks(self, protocol, tiny_split, fitted_markov):
        rec2inf = Rec2Inf(fitted_markov, candidate_k=5, fit_backbone=False).fit(tiny_split)
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        records_a = protocol.generate_records(rec2inf)
        records_b = protocol.generate_records(vanilla)
        assert [r.objective for r in records_a] == [r.objective for r in records_b]
        assert [r.history for r in records_a] == [r.history for r in records_b]

    def test_evaluate_returns_complete_result(self, protocol, tiny_split, fitted_markov):
        rec2inf = Rec2Inf(fitted_markov, candidate_k=5, fit_backbone=False).fit(tiny_split)
        result = protocol.evaluate(rec2inf)
        assert 0.0 <= result.success <= 1.0
        assert np.isfinite(result.log_ppl)
        assert len(result.records) == len(protocol.instances)
        row = result.as_row()
        assert "SR6" in row and "IoI6" in row and "IoR6" in row and "log(PPL)" in row

    def test_paths_respect_max_length(self, protocol, tiny_split, fitted_markov):
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        for record in protocol.generate_records(vanilla):
            assert len(record.path) <= 6

    def test_rec2inf_outreaches_vanilla(self, protocol, tiny_split, fitted_markov):
        """The Rec2Inf adaptation reaches the objective at least as often as vanilla."""
        rec2inf = Rec2Inf(
            fitted_markov, candidate_k=tiny_split.corpus.num_items, fit_backbone=False
        ).fit(tiny_split)
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        assert protocol.evaluate(rec2inf).success >= protocol.evaluate(vanilla).success

    def test_stepwise_probabilities_shapes(self, protocol, tiny_split, fitted_markov):
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        records = protocol.generate_records(vanilla)
        series = protocol.stepwise_probabilities(records)
        assert set(series) == {"objective", "item"}
        assert len(series["objective"]) == len(series["item"])
        assert len(series["objective"]) >= 1

    def test_pf2inf_integration(self, protocol, tiny_split):
        pf2inf = Pf2Inf("dijkstra").fit(tiny_split)
        result = protocol.evaluate(pf2inf)
        assert 0.0 <= result.success <= 1.0


class TestAggressivenessSweep:
    def test_rec2inf_sweep_levels(self, tiny_split, markov_evaluator, fitted_markov):
        protocol = IRSEvaluationProtocol(
            tiny_split, markov_evaluator, max_length=5, max_instances=10, seed=0
        )
        points = sweep_rec2inf_aggressiveness(
            fitted_markov, tiny_split, protocol, levels=(2, tiny_split.corpus.num_items)
        )
        assert [p.level for p in points] == [2.0, float(tiny_split.corpus.num_items)]
        # a full-catalog candidate set reaches the objective at least as often
        assert points[-1].result.success >= points[0].result.success
        assert "SR5" in points[0].as_row()
