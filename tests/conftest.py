"""Shared fixtures.

Expensive objects (corpora, splits, fitted models, the fast experiment
pipeline) are session-scoped so the full suite stays fast; tests must treat
them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.preprocessing import build_corpus
from repro.data.splitting import split_corpus
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.models.markov import MarkovChainRecommender
from repro.evaluation.evaluator import IRSEvaluator


def make_tiny_dataset(seed: int = 0, name: str = "tiny-synthetic"):
    """A very small synthetic dataset used across unit tests."""
    config = SyntheticConfig(
        name=name,
        num_users=40,
        num_items=60,
        num_genres=6,
        min_sequence_length=14,
        max_sequence_length=28,
        seed=seed,
    )
    return generate_synthetic_dataset(config)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Raw synthetic interaction dataset (session-scoped, read-only)."""
    return make_tiny_dataset()


@pytest.fixture(scope="session")
def tiny_corpus(tiny_dataset):
    """Preprocessed sequence corpus for the tiny dataset."""
    return build_corpus(tiny_dataset, min_interactions=3)


@pytest.fixture(scope="session")
def tiny_split(tiny_corpus):
    """Train/validation/test split of the tiny corpus."""
    return split_corpus(tiny_corpus, l_min=6, l_max=14, validation_fraction=0.1, seed=0)


@pytest.fixture(scope="session")
def fitted_markov(tiny_split):
    """A fitted Markov-chain recommender (cheap evaluator/backbone)."""
    return MarkovChainRecommender().fit(tiny_split)


@pytest.fixture(scope="session")
def markov_evaluator(fitted_markov):
    """An IRS evaluator backed by the Markov model."""
    return IRSEvaluator(fitted_markov)


@pytest.fixture(scope="session")
def fast_pipeline():
    """A fast-profile experiment pipeline (used by integration tests)."""
    config = ExperimentConfig.fast("movielens", seed=0)
    config.scale = 0.25
    config.max_eval_instances = 15
    return ExperimentPipeline(config)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
