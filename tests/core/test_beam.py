"""Tests for the beam-search influence-path planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import influential_registry
from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.core.pim import MaskType
from repro.evaluation.protocol import sample_objectives
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def tiny_irn(tiny_split):
    model = IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=2,
        batch_size=32,
        max_sequence_length=20,
        mask_type=MaskType.PERSONALIZED,
        seed=0,
    )
    return model.fit(tiny_split)


@pytest.fixture(scope="module")
def planner(tiny_irn, tiny_split):
    return BeamSearchPlanner(tiny_irn, beam_width=3, branch_factor=3).fit(tiny_split)


class TestConfiguration:
    def test_registered(self):
        assert influential_registry.get("beam") is BeamSearchPlanner

    def test_requires_objective_scorer(self):
        class _NoScorer:
            pass

        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(_NoScorer())

    def test_invalid_beam_parameters(self, tiny_irn):
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(tiny_irn, beam_width=0)
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(tiny_irn, branch_factor=0)
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(tiny_irn, objective_bonus=-0.5)

    def test_fit_requires_fitted_backbone(self, tiny_split):
        unfitted = IRN(epochs=1)
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(unfitted).fit(tiny_split)

    def test_name_derives_from_backbone(self, planner):
        assert planner.name == "IRN-beam"


class TestPlanning:
    def test_plan_respects_max_length(self, planner, tiny_split):
        instance = tiny_split.test[0]
        path = planner.plan_path(list(instance.history), instance.target, max_length=6)
        assert len(path) <= 6

    def test_plan_has_no_repeats_except_objective(self, planner, tiny_split):
        instance = tiny_split.test[1]
        path = planner.plan_path(list(instance.history), instance.target, max_length=10)
        non_objective = [item for item in path if item != instance.target]
        assert len(non_objective) == len(set(non_objective))
        for item in non_objective:
            assert item not in instance.history

    def test_objective_terminates_path(self, planner, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
        for instance in instances:
            path = planner.plan_path(list(instance.history), instance.objective, max_length=10)
            if instance.objective in path:
                assert path[-1] == instance.objective

    def test_invalid_max_length(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan_path([1, 2], 3, max_length=0)

    def test_generate_path_matches_plan_path(self, planner, tiny_split):
        instance = tiny_split.test[2]
        plan = planner.plan_path(
            list(instance.history), instance.target, user_index=instance.user_index, max_length=8
        )
        generated = planner.generate_path(
            list(instance.history), instance.target, user_index=instance.user_index, max_length=8
        )
        assert generated == plan

    def test_next_step_serves_planned_path(self, planner, tiny_split):
        instance = tiny_split.test[3]
        history = list(instance.history)
        plan = planner.plan_path(
            history, instance.target, user_index=instance.user_index, max_length=20
        )
        if plan:
            first = planner.next_step(history, instance.target, [], user_index=instance.user_index)
            assert first == plan[0]
            if len(plan) >= 2:
                second = planner.next_step(
                    history, instance.target, [plan[0]], user_index=instance.user_index
                )
                assert second == plan[1]

    def test_reaches_at_least_as_often_as_greedy(self, planner, tiny_irn, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=8)
        beam_reached = greedy_reached = 0
        for instance in instances:
            beam_path = planner.plan_path(
                list(instance.history),
                instance.objective,
                user_index=instance.user_index,
                max_length=12,
            )
            greedy_path = tiny_irn.generate_path(
                list(instance.history),
                instance.objective,
                user_index=instance.user_index,
                max_length=12,
            )
            beam_reached += int(instance.objective in beam_path)
            greedy_reached += int(instance.objective in greedy_path)
        # Beam search explores a superset of the greedy trajectory plus a
        # completion bonus, so it should not reach the objective less often
        # (allow one instance of slack for tie-breaking noise).
        assert beam_reached >= greedy_reached - 1

    def test_log_softmax_normalises(self, planner):
        scores = np.array([-np.inf, 1.0, 2.0, 0.5])
        log_probs = planner._log_softmax(scores)
        assert log_probs[0] == -np.inf
        assert np.exp(log_probs[1:]).sum() == pytest.approx(1.0)
