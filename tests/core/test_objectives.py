"""Tests for objective sets (collection / category objectives)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import ItemDistance
from repro.core.objectives import (
    CategoryObjective,
    ItemSetObjective,
    SetPathRecord,
    SingleItemObjective,
    generate_path_to_set,
    resolve_target,
    set_increase_of_interest,
    set_success_rate,
)
from repro.core.rec2inf import Rec2Inf
from repro.models.markov import MarkovChainRecommender
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def rec2inf_markov(tiny_split):
    return Rec2Inf(MarkovChainRecommender(), candidate_k=15).fit(tiny_split)


@pytest.fixture(scope="module")
def genre_distance(tiny_corpus):
    return ItemDistance.from_genres(tiny_corpus)


class TestObjectiveSets:
    def test_single_item_members(self, tiny_corpus):
        objective = SingleItemObjective(3)
        assert objective.members(tiny_corpus) == [3]
        assert objective.contains(3, tiny_corpus)
        assert not objective.contains(4, tiny_corpus)

    def test_item_set_deduplicates_and_sorts(self, tiny_corpus):
        objective = ItemSetObjective([5, 3, 5, 9])
        assert objective.members(tiny_corpus) == [3, 5, 9]

    def test_item_set_requires_items(self):
        with pytest.raises(ConfigurationError):
            ItemSetObjective([])

    def test_category_members_share_the_genre(self, tiny_corpus):
        genre = tiny_corpus.genre_names[0]
        objective = CategoryObjective(genre, min_interactions=1)
        members = objective.members(tiny_corpus)
        assert members
        for item in members:
            assert genre in tiny_corpus.item_genres(item)

    def test_category_unknown_genre(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            CategoryObjective("no-such-genre").members(tiny_corpus)

    def test_category_respects_popularity_threshold(self, tiny_corpus):
        genre = tiny_corpus.genre_names[0]
        popularity = tiny_corpus.item_popularity()
        members = CategoryObjective(genre, min_interactions=3).members(tiny_corpus)
        loose_members = CategoryObjective(genre, min_interactions=0).members(tiny_corpus)
        assert set(members) <= set(loose_members)
        if any(popularity[item] >= 3 for item in loose_members):
            for item in members:
                assert popularity[item] >= 3

    def test_validate_rejects_out_of_range(self, tiny_corpus):
        objective = ItemSetObjective([tiny_corpus.vocab.size + 5])
        with pytest.raises(ConfigurationError):
            objective.validate(tiny_corpus)

    @given(item=st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_single_item_contains_only_itself(self, item):
        objective = SingleItemObjective(item)
        assert objective.item == item
        assert objective.name == f"item:{item}"


class TestResolveTarget:
    def test_single_member_shortcut(self, tiny_corpus):
        assert resolve_target(SingleItemObjective(7), tiny_corpus, [1, 2, 3]) == 7

    def test_popular_strategy_picks_most_popular(self, tiny_corpus):
        popularity = tiny_corpus.item_popularity()
        candidates = list(np.argsort(-popularity)[:5])
        candidates = [int(item) for item in candidates if item != 0][:3]
        objective = ItemSetObjective(candidates)
        target = resolve_target(objective, tiny_corpus, [], strategy="popular")
        assert popularity[target] == max(popularity[item] for item in candidates)

    def test_first_strategy_is_deterministic(self, tiny_corpus):
        objective = ItemSetObjective([9, 4, 6])
        assert resolve_target(objective, tiny_corpus, [1], strategy="first") == 4

    def test_nearest_strategy_uses_distance(self, tiny_corpus, genre_distance):
        history = tiny_corpus.user_sequences[0][-5:]
        genre = tiny_corpus.genre_names[0]
        objective = CategoryObjective(genre, min_interactions=0)
        target = resolve_target(
            objective, tiny_corpus, history, distance=genre_distance, strategy="nearest"
        )
        assert target in objective.members(tiny_corpus)

    def test_nearest_without_distance_falls_back(self, tiny_corpus):
        objective = ItemSetObjective([3, 4, 5])
        target = resolve_target(objective, tiny_corpus, [1, 2], distance=None, strategy="nearest")
        assert target in {3, 4, 5}

    def test_unknown_strategy(self, tiny_corpus):
        with pytest.raises(ConfigurationError):
            resolve_target(ItemSetObjective([3, 4]), tiny_corpus, [], strategy="bogus")


class TestGeneratePathToSet:
    def test_stops_when_any_member_reached(self, tiny_corpus, tiny_split, rec2inf_markov):
        instance = tiny_split.test[0]
        genre = tiny_corpus.genre_names[1]
        objective = CategoryObjective(genre, min_interactions=0)
        record = generate_path_to_set(
            rec2inf_markov,
            instance.history,
            objective,
            tiny_corpus,
            user_index=instance.user_index,
            max_length=15,
        )
        assert len(record.path) <= 15
        if record.reached:
            members = set(record.members)
            assert record.path[-1] in members
            assert record.reached_item in members

    def test_invalid_max_length(self, tiny_corpus, rec2inf_markov):
        with pytest.raises(ConfigurationError):
            generate_path_to_set(
                rec2inf_markov, [1, 2], SingleItemObjective(3), tiny_corpus, max_length=0
            )

    def test_single_member_set_matches_plain_algorithm1(
        self, tiny_corpus, tiny_split, rec2inf_markov
    ):
        instance = tiny_split.test[0]
        objective_item = tiny_split.test[1].target
        record = generate_path_to_set(
            rec2inf_markov,
            instance.history,
            SingleItemObjective(objective_item),
            tiny_corpus,
            user_index=instance.user_index,
            max_length=10,
        )
        plain = rec2inf_markov.generate_path(
            list(instance.history),
            objective_item,
            user_index=instance.user_index,
            max_length=10,
        )
        assert list(record.path) == plain

    def test_resolved_targets_are_members(self, tiny_corpus, tiny_split, rec2inf_markov, genre_distance):
        instance = tiny_split.test[2]
        genre = tiny_corpus.genre_names[2]
        objective = CategoryObjective(genre, min_interactions=0)
        record = generate_path_to_set(
            rec2inf_markov,
            instance.history,
            objective,
            tiny_corpus,
            distance=genre_distance,
            user_index=instance.user_index,
            max_length=8,
            retarget=True,
        )
        members = set(record.members)
        for target in record.resolved_targets:
            assert target in members

    def test_no_retarget_keeps_single_target(self, tiny_corpus, tiny_split, rec2inf_markov):
        instance = tiny_split.test[3]
        objective = ItemSetObjective(
            [item for item in range(1, tiny_corpus.vocab.size) if item not in instance.history][:4]
        )
        record = generate_path_to_set(
            rec2inf_markov,
            instance.history,
            objective,
            tiny_corpus,
            user_index=instance.user_index,
            max_length=6,
            retarget=False,
            strategy="popular",
        )
        assert len(set(record.resolved_targets)) == 1


class TestSetMetrics:
    def _record(self, members, path):
        return SetPathRecord(
            user_index=0,
            history=(1, 2),
            objective_name="set",
            members=tuple(members),
            resolved_targets=tuple(members[:1]),
            path=tuple(path),
        )

    def test_empty_records_raise(self, markov_evaluator):
        with pytest.raises(ConfigurationError):
            set_success_rate([])
        with pytest.raises(ConfigurationError):
            set_increase_of_interest([], markov_evaluator)

    def test_success_rate_counts_any_member(self):
        records = [self._record([5, 6], [3, 6]), self._record([5, 6], [3, 4])]
        assert set_success_rate(records) == pytest.approx(0.5)

    def test_increase_of_interest_finite(self, markov_evaluator, tiny_split):
        instance = tiny_split.test[0]
        record = SetPathRecord(
            user_index=instance.user_index,
            history=tuple(instance.history),
            objective_name="set",
            members=(instance.target, max(1, instance.target - 1)),
            resolved_targets=(instance.target,),
            path=(instance.target,),
        )
        value = set_increase_of_interest([record], markov_evaluator)
        assert np.isfinite(value)
