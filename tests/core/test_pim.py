"""Unit and property tests for the Personalized Impressionability Mask."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pim import (
    MaskType,
    build_pim,
    causal_history_mask,
    objective_column_indicator,
)
from repro.data.padding import PAD_INDEX
from repro.nn.attention import NEG_INF
from repro.utils.exceptions import ConfigurationError


def _items(batch: int = 2, length: int = 6, pads: int = 2) -> np.ndarray:
    items = np.arange(1, batch * length + 1).reshape(batch, length)
    items[:, :pads] = PAD_INDEX
    return items


class TestCausalHistoryMask:
    def test_future_positions_blocked(self):
        mask = causal_history_mask(_items(pads=0))
        batch, length = 2, 6
        for j in range(length):
            for k in range(length):
                if k > j:
                    assert mask[0, j, k] == NEG_INF

    def test_padding_keys_blocked_for_all_queries(self):
        mask = causal_history_mask(_items(pads=2))
        assert np.all(mask[:, :, :2] == NEG_INF)

    def test_history_weight_applied_to_visible_positions(self):
        mask = causal_history_mask(_items(pads=0), history_weight=0.5)
        assert mask[0, 3, 2] == 0.5
        assert mask[0, 3, 4] == NEG_INF

    def test_rejects_non_2d_items(self):
        with pytest.raises(ConfigurationError):
            causal_history_mask(np.array([1, 2, 3]))


class TestObjectiveIndicator:
    def test_only_last_column_marked(self):
        indicator = objective_column_indicator(5)
        assert indicator.sum() == 4
        assert np.all(indicator[:4, 4] == 1.0)
        assert indicator[4, 4] == 0.0

    def test_degenerate_length(self):
        assert objective_column_indicator(1).sum() == 0.0


class TestBuildPim:
    def test_type1_keeps_objective_hidden(self):
        pim = build_pim(_items(), mask_type=MaskType.CAUSAL)
        assert np.all(pim[:, :-1, -1] == NEG_INF)

    def test_type2_reveals_objective_with_uniform_weight(self):
        pim = build_pim(_items(), mask_type=MaskType.OBJECTIVE, objective_weight=0.7)
        assert np.allclose(pim[:, :-1, -1], 0.7)
        # causal structure for everything else is untouched
        assert pim[0, 1, 3] == NEG_INF

    def test_type3_scales_by_impressionability(self):
        impressionability = np.array([0.5, 2.0])
        pim = build_pim(
            _items(),
            mask_type=MaskType.PERSONALIZED,
            objective_weight=1.0,
            impressionability=impressionability,
        )
        assert np.allclose(pim[0, :-1, -1], 0.5)
        assert np.allclose(pim[1, :-1, -1], 2.0)

    def test_type3_requires_impressionability(self):
        with pytest.raises(ConfigurationError):
            build_pim(_items(), mask_type=MaskType.PERSONALIZED)

    def test_zero_weight_type2_equals_revealed_causal(self):
        """w_t = 0 still reveals the objective but with no extra pull."""
        pim = build_pim(_items(), mask_type=MaskType.OBJECTIVE, objective_weight=0.0)
        assert np.allclose(pim[:, :-1, -1], 0.0)

    def test_history_weight_less_than_objective_weight(self):
        """The paper's w_t > w_h requirement is representable."""
        pim = build_pim(
            _items(pads=0), mask_type=MaskType.OBJECTIVE, objective_weight=1.0, history_weight=0.2
        )
        visible_history = pim[0, 3, 1]
        objective = pim[0, 3, -1]
        assert objective > visible_history

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=12),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_pim_only_modifies_objective_column(self, batch, length, weight):
        rng = np.random.default_rng(0)
        items = rng.integers(1, 50, size=(batch, length))
        base = build_pim(items, mask_type=MaskType.CAUSAL)
        revealed = build_pim(items, mask_type=MaskType.OBJECTIVE, objective_weight=weight)
        difference = revealed != base
        # only entries in the final column (excluding the last row) may differ
        assert not difference[:, :, :-1].any()
        assert not difference[:, -1, :].any()
