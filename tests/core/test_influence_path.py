"""Unit tests for Algorithm 1 (the influence-path loop)."""

import pytest

from repro.core.base import InfluentialRecommender
from repro.core.influence_path import generate_influence_path
from repro.utils.exceptions import ConfigurationError


class _ScriptedRecommender(InfluentialRecommender):
    """Deterministic stub: returns items from a script, then None."""

    name = "scripted"

    def __init__(self, script):
        super().__init__()
        self.script = list(script)
        self.calls = []

    def fit(self, split):
        return self

    def next_step(self, history, objective, path_so_far, user_index=None):
        self.calls.append((tuple(history), objective, tuple(path_so_far)))
        if len(path_so_far) < len(self.script):
            return self.script[len(path_so_far)]
        return None


class TestGenerateInfluencePath:
    def test_stops_at_objective(self):
        recommender = _ScriptedRecommender([5, 6, 7, 8])
        path = generate_influence_path(recommender, [1, 2], objective=7, max_length=10)
        assert path == [5, 6, 7]

    def test_respects_max_length(self):
        recommender = _ScriptedRecommender(list(range(10, 30)))
        path = generate_influence_path(recommender, [1], objective=999, max_length=5)
        assert len(path) == 5

    def test_stops_when_recommender_returns_none(self):
        recommender = _ScriptedRecommender([4, 5])
        path = generate_influence_path(recommender, [1], objective=99, max_length=10)
        assert path == [4, 5]

    def test_passes_growing_path_to_recommender(self):
        recommender = _ScriptedRecommender([3, 4, 5])
        generate_influence_path(recommender, [1, 2], objective=5, max_length=10)
        assert recommender.calls[0] == ((1, 2), 5, ())
        assert recommender.calls[1] == ((1, 2), 5, (3,))
        assert recommender.calls[2] == ((1, 2), 5, (3, 4))

    def test_invalid_max_length(self):
        recommender = _ScriptedRecommender([1])
        with pytest.raises(ConfigurationError):
            generate_influence_path(recommender, [1], objective=2, max_length=0)

    def test_objective_as_first_recommendation(self):
        recommender = _ScriptedRecommender([42])
        assert generate_influence_path(recommender, [1], objective=42, max_length=10) == [42]

    def test_method_on_base_class_delegates(self):
        recommender = _ScriptedRecommender([9, 8])
        assert recommender.generate_path([1], objective=8, max_length=10) == [9, 8]
