"""Unit tests for item-graph construction."""

import networkx as nx

from repro.core.item_graph import build_item_graph


class TestBuildItemGraph:
    def test_consecutive_items_are_connected(self):
        graph = build_item_graph([[1, 2, 3], [3, 4]])
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)
        assert graph.has_edge(3, 4)
        assert not graph.has_edge(1, 3)

    def test_graph_is_undirected_with_unit_weights(self):
        graph = build_item_graph([[1, 2], [2, 1]])
        assert isinstance(graph, nx.Graph)
        assert graph[1][2]["weight"] == 1.0
        assert graph[1][2]["count"] == 2

    def test_count_weights_option(self):
        graph = build_item_graph([[1, 2], [1, 2], [2, 3]], count_weights=True)
        assert graph[1][2]["weight"] == 0.5
        assert graph[2][3]["weight"] == 1.0

    def test_self_loops_ignored(self):
        graph = build_item_graph([[1, 1, 2]])
        assert not graph.has_edge(1, 1)
        assert graph.has_edge(1, 2)

    def test_isolated_items_still_present_as_nodes(self):
        graph = build_item_graph([[7], [1, 2]])
        assert 7 in graph
        assert graph.degree(7) == 0

    def test_paper_figure3_example(self):
        """The Figure 3 toy graph: a path from i1 to i11 exists via i6 and i4."""
        sequences = [
            [1, 6, 4, 11],
            [2, 6, 5],
            [3, 4, 10],
            [7, 8, 9],
            [9, 12],
        ]
        graph = build_item_graph(sequences)
        path = nx.dijkstra_path(graph, 1, 11)
        assert path == [1, 6, 4, 11]
        # i10 and i12 are in different components (the Pf2Inf failure case).
        assert not nx.has_path(graph, 10, 12)
