"""Unit tests for the Pf2Inf path-finding framework."""

import pytest

from repro.core.pf2inf import Pf2Inf
from repro.data.interactions import SequenceCorpus
from repro.data.splitting import DatasetSplit, TestInstance, UserSequence
from repro.data.vocab import Vocabulary
from repro.utils.exceptions import ConfigurationError, NotFittedError


def _toy_split() -> DatasetSplit:
    """The Figure 3 toy graph as a dataset split."""
    vocab = Vocabulary([f"i{i}" for i in range(1, 13)])
    sequences = [
        UserSequence(0, (1, 6, 4, 11)),
        UserSequence(1, (2, 6, 5)),
        UserSequence(2, (3, 4, 10)),
        UserSequence(3, (7, 8, 9)),
        UserSequence(4, (9, 12)),
    ]
    corpus = SequenceCorpus(
        name="figure3",
        vocab=vocab,
        user_ids=[f"u{i}" for i in range(5)],
        user_sequences=[list(s.items) for s in sequences],
    )
    test = [TestInstance(0, (1,), 11)]
    return DatasetSplit(corpus=corpus, train=sequences, validation=[], test=test, l_min=2, l_max=5)


class TestPf2Inf:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            Pf2Inf(method="astar")

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            Pf2Inf().plan_path([1], 2)

    def test_dijkstra_reproduces_paper_example(self):
        """Figure 3: history ending at i1 with objective i11 -> {i6, i4, i11}."""
        model = Pf2Inf("dijkstra").fit(_toy_split())
        assert model.generate_path([1], 11) == [6, 4, 11]

    def test_disconnected_objective_yields_empty_path(self):
        """Figure 3 failure case: i10 and i12 live in different components."""
        model = Pf2Inf("dijkstra").fit(_toy_split())
        assert model.generate_path([3, 4, 10], 12) == []

    def test_unknown_source_yields_empty_path(self):
        model = Pf2Inf("dijkstra").fit(_toy_split())
        assert model.generate_path([], 11) == []

    def test_path_truncated_to_max_length(self):
        model = Pf2Inf("dijkstra").fit(_toy_split())
        path = model.generate_path([1], 11, max_length=2)
        assert path == [6, 4]

    def test_mst_paths_stay_within_tree(self):
        model = Pf2Inf("mst").fit(_toy_split())
        path = model.generate_path([1], 11)
        assert path[-1] == 11
        tree = model._search_graph
        previous = 1
        for item in path:
            assert tree.has_edge(previous, item)
            previous = item

    def test_next_step_follows_planned_path(self):
        model = Pf2Inf("dijkstra").fit(_toy_split())
        assert model.next_step([1], 11, []) == 6
        assert model.next_step([1], 11, [6]) == 4
        assert model.next_step([1], 11, [6, 4]) == 11

    def test_next_step_returns_none_when_no_path(self):
        model = Pf2Inf("dijkstra").fit(_toy_split())
        assert model.next_step([10], 12, []) is None

    def test_algorithm1_loop_matches_direct_plan(self, markov_evaluator):
        model = Pf2Inf("dijkstra").fit(_toy_split())
        from repro.core.influence_path import generate_influence_path

        assert generate_influence_path(model, [1], 11, max_length=20) == [6, 4, 11]

    def test_count_weighted_graph_prefers_frequent_edges(self):
        split = _toy_split()
        model = Pf2Inf("dijkstra", count_weights=True).fit(split)
        path = model.generate_path([1], 11)
        assert path[-1] == 11
