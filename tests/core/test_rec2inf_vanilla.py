"""Unit tests for the Rec2Inf and vanilla adaptations."""

import numpy as np
import pytest

from repro.core.distance import ItemDistance
from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.utils.exceptions import ConfigurationError


class TestRec2Inf:
    def test_invalid_candidate_k(self, fitted_markov):
        with pytest.raises(ConfigurationError):
            Rec2Inf(fitted_markov, candidate_k=0)

    def test_unfitted_backbone_with_fit_backbone_false(self, tiny_split):
        with pytest.raises(ConfigurationError):
            Rec2Inf(Popularity(), fit_backbone=False).fit(tiny_split)

    def test_default_distance_uses_genres_when_available(self, tiny_split, fitted_markov):
        adapted = Rec2Inf(fitted_markov, fit_backbone=False, candidate_k=5).fit(tiny_split)
        assert adapted.distance is not None
        assert adapted.distance.vocab_size == tiny_split.corpus.vocab.size

    def test_next_step_picks_candidate_closest_to_objective(self, tiny_split, fitted_markov):
        adapted = Rec2Inf(fitted_markov, fit_backbone=False, candidate_k=8).fit(tiny_split)
        history = list(tiny_split.train[0].items[:5])
        objective = tiny_split.train[1].objective
        step = adapted.next_step(history, objective, [])
        candidates = fitted_markov.top_k(history, 8, exclude=history)
        assert step in candidates
        distances = adapted.distance.distances_to(objective)
        assert distances[step] == min(distances[c] for c in candidates)

    def test_candidate_k_one_degenerates_to_vanilla(self, tiny_split, fitted_markov):
        adapted = Rec2Inf(fitted_markov, fit_backbone=False, candidate_k=1).fit(tiny_split)
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        history = list(tiny_split.train[2].items[:6])
        objective = tiny_split.train[3].objective
        assert adapted.next_step(history, objective, []) == vanilla.next_step(history, objective, [])

    def test_objective_can_be_selected_when_in_candidates(self, tiny_split, fitted_markov):
        vocab_size = tiny_split.corpus.vocab.size
        adapted = Rec2Inf(fitted_markov, fit_backbone=False, candidate_k=vocab_size).fit(tiny_split)
        history = list(tiny_split.train[0].items[:5])
        objective = tiny_split.train[4].objective
        if objective in history:
            pytest.skip("objective already in history")
        assert adapted.next_step(history, objective, []) == objective

    def test_path_items_not_repeated(self, tiny_split, fitted_markov):
        adapted = Rec2Inf(fitted_markov, fit_backbone=False, candidate_k=5).fit(tiny_split)
        history = list(tiny_split.train[0].items[:5])
        objective = tiny_split.train[5].objective
        path = adapted.generate_path(history, objective, max_length=8)
        assert len(path) == len(set(path))
        assert not set(path) & set(history) - {objective}

    def test_custom_distance_is_respected(self, tiny_split, fitted_markov):
        vocab_size = tiny_split.corpus.vocab.size
        # custom degenerate distance: every item identical -> ties broken by rank
        distance = ItemDistance(np.ones((vocab_size, 3)))
        adapted = Rec2Inf(
            fitted_markov, distance=distance, fit_backbone=False, candidate_k=6
        ).fit(tiny_split)
        history = list(tiny_split.train[1].items[:5])
        candidates = fitted_markov.top_k(history, 6, exclude=history)
        # pick an objective outside the candidate set so the re-ranking (not the
        # direct-objective shortcut) decides, and ties fall back to backbone rank
        objective = next(i for i in range(1, vocab_size) if i not in candidates and i not in history)
        assert adapted.next_step(history, objective, []) == candidates[0]


class TestVanilla:
    def test_ignores_objective(self, tiny_split, fitted_markov):
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        history = list(tiny_split.train[0].items[:5])
        step_a = vanilla.next_step(history, objective=1, path_so_far=[])
        step_b = vanilla.next_step(history, objective=20, path_so_far=[])
        assert step_a == step_b

    def test_fits_backbone_when_requested(self, tiny_split):
        vanilla = VanillaInfluential(MarkovChainRecommender()).fit(tiny_split)
        assert vanilla.backbone.corpus is not None

    def test_unfitted_backbone_rejected(self, tiny_split):
        with pytest.raises(ConfigurationError):
            VanillaInfluential(Popularity(), fit_backbone=False).fit(tiny_split)

    def test_generated_path_has_requested_length(self, tiny_split, fitted_markov):
        vanilla = VanillaInfluential(fitted_markov, fit_backbone=False).fit(tiny_split)
        history = list(tiny_split.train[0].items[:5])
        # pick an objective that popularity-style recommendation will not hit
        path = vanilla.generate_path(history, objective=tiny_split.corpus.vocab.size - 1, max_length=6)
        assert len(path) <= 6
        assert len(path) > 0
