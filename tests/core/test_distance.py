"""Unit tests for item distances."""

import numpy as np
import pytest

from repro.core.distance import ItemDistance
from repro.data.interactions import SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.utils.exceptions import ConfigurationError


def _genre_corpus() -> SequenceCorpus:
    vocab = Vocabulary(["a", "b", "c", "d"])
    genres = np.array(
        [
            [False, False],
            [True, False],   # a: genre 0
            [True, False],   # b: genre 0
            [False, True],   # c: genre 1
            [True, True],    # d: both
        ]
    )
    return SequenceCorpus(
        name="g",
        vocab=vocab,
        user_ids=["u"],
        user_sequences=[[1, 2, 3, 4]],
        genre_names=["g0", "g1"],
        item_genre_matrix=genres,
    )


class TestItemDistance:
    def test_requires_2d_matrix(self):
        with pytest.raises(ConfigurationError):
            ItemDistance(np.zeros(5))

    def test_identical_items_have_zero_distance(self):
        distance = ItemDistance(np.eye(4))
        assert distance.distance(2, 2) == 0.0

    def test_genre_distance_orders_items_sensibly(self):
        distance = ItemDistance.from_genres(_genre_corpus())
        assert distance.distance(1, 2) == pytest.approx(0.0)      # same genre
        assert distance.distance(1, 3) == pytest.approx(1.0)      # disjoint genres
        assert 0.0 < distance.distance(1, 4) < 1.0                # overlapping

    def test_from_genres_requires_metadata(self):
        corpus = SequenceCorpus("plain", Vocabulary(["a"]), ["u"], [[1]])
        with pytest.raises(ConfigurationError):
            ItemDistance.from_genres(corpus)

    def test_distances_to_vector(self):
        distance = ItemDistance.from_genres(_genre_corpus())
        distances = distance.distances_to(1)
        assert distances.shape == (5,)
        assert distances[1] == 0.0
        assert distances[2] == pytest.approx(0.0)

    def test_closest_to_picks_minimum_distance(self):
        distance = ItemDistance.from_genres(_genre_corpus())
        assert distance.closest_to(1, [3, 4, 2]) == 2

    def test_closest_to_breaks_ties_by_candidate_order(self):
        distance = ItemDistance.from_genres(_genre_corpus())
        # 1 and 2 are both at distance 0 from each other; candidate order decides.
        assert distance.closest_to(1, [2, 1]) == 2
        assert distance.closest_to(1, [1, 2]) == 1

    def test_closest_to_empty_candidates(self):
        distance = ItemDistance.from_genres(_genre_corpus())
        with pytest.raises(ConfigurationError):
            distance.closest_to(1, [])

    def test_from_embeddings(self, rng):
        vectors = rng.normal(size=(6, 4))
        distance = ItemDistance.from_embeddings(vectors)
        assert distance.vocab_size == 6
        assert distance.distance(1, 1) == 0.0
        assert 0.0 <= distance.distance(1, 2) <= 2.0
