"""Parity and behaviour tests for the incremental-decoding cache subsystem.

Acceptance contract of the cache PR: cached planning must produce paths
identical to uncached planning (the existing stable tie-breaking makes this
exact), per-depth cached logits must match the uncached batched scorer
within the documented BLAS tolerance, the plan/serving LRUs must be bounded
and invalidated on retrain, and ``next_step`` serving over interleaved
contexts must reproduce dedicated-planner (isolated) semantics instead of
thrashing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import (
    IRSEvaluationProtocol,
    rollout_next_step,
    sample_objectives,
)
from repro.utils.exceptions import ConfigurationError

RTOL, ATOL = 1e-7, 1e-8


def _make_irn(tiny_split, num_layers: int, max_sequence_length: int = 50) -> IRN:
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=num_layers,
        epochs=1,
        batch_size=32,
        max_sequence_length=max_sequence_length,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="module")
def irn_one_layer(tiny_split):
    """Single layer: incremental prefix K/V reuse is exact under the PIM."""
    return _make_irn(tiny_split, num_layers=1)


@pytest.fixture(scope="module")
def irn_two_layer(tiny_split):
    """Two layers: objective sessions must fall back (moving objective)."""
    return _make_irn(tiny_split, num_layers=2)


@pytest.fixture(scope="module")
def instances(tiny_split):
    return sample_objectives(tiny_split, min_objective_interactions=2, max_instances=8)


def _contexts(instances):
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


class TestSessionScoringParity:
    """Cached-vs-uncached logits at every decoding depth."""

    @pytest.mark.parametrize("layers", [1, 2])
    def test_depthwise_logit_parity(self, tiny_split, irn_one_layer, irn_two_layer, layers, rng):
        irn = irn_one_layer if layers == 1 else irn_two_layer
        sequences = [[], [3], [5, 7, 9], [2, 4, 6, 8, 10, 12]]
        objectives = [5, 7, 11, 14]
        users = [0, None, 2, 10_000]
        scores, session = irn.begin_decoding_session(sequences, objectives, users)
        reference = irn.score_with_objective_batch(sequences, objectives, users)
        np.testing.assert_allclose(scores, reference, rtol=RTOL, atol=ATOL)
        assert session.incremental == (layers == 1)
        grown = [list(sequence) for sequence in sequences]
        for _ in range(5):
            new = [int(rng.integers(1, irn.vocab_size)) for _ in grown]
            scores = irn.advance_decoding_session(session, new)
            for row, item in zip(grown, new):
                row.append(item)
            reference = irn.score_with_objective_batch(grown, objectives, users)
            np.testing.assert_allclose(scores, reference, rtol=RTOL, atol=ATOL)

    def test_parity_under_row_gather_and_duplication(self, irn_one_layer, rng):
        irn = irn_one_layer
        sequences = [[1, 2, 3], [4, 5], [6]]
        objectives = [7, 8, 9]
        users = [0, 1, 2]
        _, session = irn.begin_decoding_session(sequences, objectives, users)
        parent_rows = [2, 0, 0, 1]  # prune row 1's slot, duplicate row 0
        grown = [list(sequences[row]) for row in parent_rows]
        grown_objectives = [objectives[row] for row in parent_rows]
        grown_users = [users[row] for row in parent_rows]
        new = [int(rng.integers(1, irn.vocab_size)) for _ in grown]
        scores = irn.advance_decoding_session(session, new, parent_rows)
        for row, item in zip(grown, new):
            row.append(item)
        reference = irn.score_with_objective_batch(grown, grown_objectives, grown_users)
        np.testing.assert_allclose(scores, reference, rtol=RTOL, atol=ATOL)

    def test_causal_sessions_exact_at_two_layers(self, irn_two_layer, rng):
        """Objective-free (causal) decoding stays incremental at any depth."""
        irn = irn_two_layer
        histories = [[], [3], [5, 7, 9, 11]]
        users = [0, 1, None]
        scores, session = irn.begin_decoding_session(histories, None, users)
        assert session.incremental
        np.testing.assert_allclose(
            scores, irn.score_next_batch(histories, users), rtol=RTOL, atol=ATOL
        )
        grown = [list(history) for history in histories]
        for _ in range(3):
            new = [int(rng.integers(1, irn.vocab_size)) for _ in grown]
            scores = irn.advance_decoding_session(session, new)
            for row, item in zip(grown, new):
                row.append(item)
            np.testing.assert_allclose(
                scores, irn.score_next_batch(grown, users), rtol=RTOL, atol=ATOL
            )
        assert irn.decode_stats.tokens_incremental > 0

    def test_two_layer_objective_session_uses_fallback(self, irn_two_layer):
        irn = irn_two_layer
        before = irn.decode_stats.snapshot()
        _, session = irn.begin_decoding_session([[1, 2]], [5], [0])
        assert not session.incremental
        irn.advance_decoding_session(session, [9])
        after = irn.decode_stats.snapshot()
        assert after["tokens_fallback"] > before["tokens_fallback"]
        assert after["tokens_incremental"] == before["tokens_incremental"]

    def test_session_degrades_when_window_slides(self, tiny_split):
        """Outgrowing the model window flips the session to exact fallback."""
        irn = _make_irn(tiny_split, num_layers=1, max_sequence_length=6)
        history = [1, 2, 3, 4]  # clipped prefix is already near the window
        _, session = irn.begin_decoding_session([history], [5], [0])
        assert session.incremental
        grown = list(history)
        for item in (7, 9, 11, 13):
            scores = irn.advance_decoding_session(session, [item])
            grown.append(item)
            reference = irn.score_with_objective_batch([grown], [5], [0])
            np.testing.assert_allclose(scores, reference, rtol=RTOL, atol=ATOL)
        assert not session.incremental

    def test_empty_batch_rejected(self, irn_one_layer):
        with pytest.raises(ConfigurationError):
            irn_one_layer.begin_decoding_session([], [], [])


class TestCachedPlanningParity:
    @pytest.mark.parametrize("layers", [1, 2])
    def test_session_plans_identical_to_uncached(
        self, tiny_split, irn_one_layer, irn_two_layer, instances, layers
    ):
        irn = irn_one_layer if layers == 1 else irn_two_layer
        contexts = _contexts(instances)
        cached = BeamSearchPlanner(irn, beam_width=4, branch_factor=4).fit(tiny_split)
        uncached = BeamSearchPlanner(
            irn, beam_width=4, branch_factor=4, use_decoding_sessions=False, plan_cache_size=0
        ).fit(tiny_split)
        plans_cached = cached.plan_paths_batch(
            [c[0] for c in contexts], [c[1] for c in contexts], [c[2] for c in contexts],
            max_length=8,
        )
        plans_uncached = uncached.plan_paths_batch(
            [c[0] for c in contexts], [c[1] for c in contexts], [c[2] for c in contexts],
            max_length=8,
        )
        assert plans_cached == plans_uncached

    def test_one_layer_planning_is_mostly_incremental(self, tiny_split, irn_one_layer, instances):
        contexts = _contexts(instances)
        args = (
            [c[0] for c in contexts],
            [c[1] for c in contexts],
            [c[2] for c in contexts],
        )
        planner_on = BeamSearchPlanner(
            irn_one_layer, beam_width=4, branch_factor=4, plan_cache_size=0
        ).fit(tiny_split)
        planner_off = BeamSearchPlanner(
            irn_one_layer, beam_width=4, branch_factor=4,
            plan_cache_size=0, use_decoding_sessions=False,
        ).fit(tiny_split)
        before = irn_one_layer.decode_stats.snapshot()
        planner_on.plan_paths_batch(*args, max_length=6)
        middle = irn_one_layer.decode_stats.snapshot()
        planner_off.plan_paths_batch(*args, max_length=6)
        after = irn_one_layer.decode_stats.snapshot()
        on_delta = {k: middle[k] - before[k] for k in middle}
        off_delta = {k: after[k] - middle[k] for k in after}
        assert on_delta["tokens_incremental"] > 0
        assert on_delta["tokens_fallback"] == 0
        # every post-initial depth encodes 2 tokens/hypothesis instead of the
        # full right-aligned window, so total token-work shrinks sharply
        assert on_delta["tokens_encoded"] * 2 < off_delta["tokens_encoded"]

    def test_plan_cache_short_circuits_replanning(self, tiny_split, irn_one_layer, instances):
        contexts = _contexts(instances)
        planner = BeamSearchPlanner(irn_one_layer, beam_width=4, branch_factor=4).fit(tiny_split)
        args = (
            [c[0] for c in contexts],
            [c[1] for c in contexts],
            [c[2] for c in contexts],
        )
        first = planner.plan_paths_batch(*args, max_length=6)
        before = irn_one_layer.decode_stats.snapshot()
        second = planner.plan_paths_batch(*args, max_length=6)
        after = irn_one_layer.decode_stats.snapshot()
        assert first == second
        assert after["tokens_encoded"] == before["tokens_encoded"]  # zero model work
        info = planner.plan_cache.cache_info()
        assert info["hits"] == len(contexts)

    def test_max_length_participates_in_the_key(self, tiny_split, irn_one_layer, instances):
        context = _contexts(instances)[0]
        planner = BeamSearchPlanner(irn_one_layer, beam_width=2, branch_factor=2).fit(tiny_split)
        planner.plan_path(context[0], context[1], user_index=context[2], max_length=4)
        before = irn_one_layer.decode_stats.snapshot()
        planner.plan_path(context[0], context[1], user_index=context[2], max_length=6)
        after = irn_one_layer.decode_stats.snapshot()
        assert after["tokens_encoded"] > before["tokens_encoded"]  # different key -> replans

    def test_plan_cache_eviction_bound(self, tiny_split, irn_one_layer, instances):
        contexts = _contexts(instances)[:4]
        planner = BeamSearchPlanner(
            irn_one_layer, beam_width=2, branch_factor=2, plan_cache_size=2
        ).fit(tiny_split)
        for history, objective, user in contexts:
            planner.plan_path(history, objective, user_index=user, max_length=4)
        info = planner.plan_cache.cache_info()
        assert len(planner.plan_cache) <= 2
        assert info["evictions"] >= len(contexts) - 2


class TestNextStepServing:
    def test_serves_planned_path(self, tiny_split, irn_one_layer, instances):
        history, objective, user = _contexts(instances)[0]
        planner = BeamSearchPlanner(irn_one_layer, beam_width=4, branch_factor=4).fit(tiny_split)
        plan = planner.plan_path(history, objective, user_index=user)
        served = []
        while True:
            item = planner.next_step(history, objective, served, user_index=user)
            if item is None or len(served) >= len(plan):
                break
            served.append(item)
        assert served == plan

    def test_interleaved_serving_matches_isolated(self, tiny_split, irn_one_layer, instances):
        """The acceptance scenario: lockstep multi-context serving must equal
        dedicated-planner-per-context semantics (the old single replan slot
        thrashed here), while replanning each context only once."""
        contexts = _contexts(instances)
        isolated = []
        for context in contexts:
            planner = BeamSearchPlanner(
                irn_one_layer, beam_width=4, branch_factor=4, max_length=6
            ).fit(tiny_split)
            isolated.append(rollout_next_step(planner, [context], 6)[0])
        shared = BeamSearchPlanner(
            irn_one_layer, beam_width=4, branch_factor=4, max_length=6
        ).fit(tiny_split)
        interleaved = rollout_next_step(shared, contexts, 6)
        assert interleaved == isolated
        info = shared.cache_info()
        assert info["serving"]["replans"] == len(contexts)  # one plan per context
        assert info["serving"]["served_from_plan"] > 0

    def test_divergence_triggers_replan_from_context(self, tiny_split, irn_one_layer, instances):
        history, objective, user = _contexts(instances)[0]
        planner = BeamSearchPlanner(irn_one_layer, beam_width=4, branch_factor=4).fit(tiny_split)
        plan = planner.plan_path(history, objective, user_index=user)
        if not plan:
            pytest.skip("planner produced an empty plan for this instance")
        # The user went off-plan: the served item must extend the diverged
        # context, exactly as an uncached replan from that context would.
        diverged = [plan[0] + 1 if plan[0] + 1 < irn_one_layer.vocab_size else 1]
        served = planner.next_step(history, objective, diverged, user_index=user)
        uncached = BeamSearchPlanner(
            irn_one_layer, beam_width=4, branch_factor=4,
            use_decoding_sessions=False, plan_cache_size=0,
        ).fit(tiny_split)
        expected = uncached.plan_path(
            list(history) + diverged, objective, user_index=user,
            max_length=planner.max_length - len(diverged),
        )
        assert served == (expected[0] if expected else None)

    def test_constructor_max_length_bounds_the_horizon(self, tiny_split, irn_one_layer, instances):
        """Satellite: the hardcoded 20 is now the constructor-level default."""
        history, objective, user = _contexts(instances)[0]
        short = BeamSearchPlanner(
            irn_one_layer, beam_width=2, branch_factor=2, max_length=3
        ).fit(tiny_split)
        assert len(short.plan_path(history, objective, user_index=user)) <= 3
        path = rollout_next_step(short, [(history, objective, user)], 10)[0]
        assert len(path) <= 3
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(irn_one_layer, max_length=0)

    def test_refit_invalidates_caches(self, tiny_split, instances):
        irn = _make_irn(tiny_split, num_layers=1)
        history, objective, user = _contexts(instances)[0]
        planner = BeamSearchPlanner(irn, beam_width=2, branch_factor=2).fit(tiny_split)
        planner.plan_path(history, objective, user_index=user, max_length=4)
        planner.next_step(history, objective, [], user_index=user)
        assert len(planner.plan_cache) > 0
        irn.fit(tiny_split)  # retrain under the planner
        before = irn.decode_stats.snapshot()
        planner.plan_path(history, objective, user_index=user, max_length=4)
        after = irn.decode_stats.snapshot()
        assert after["tokens_encoded"] > before["tokens_encoded"]  # replanned, not served
        assert planner.plan_cache.invalidations >= 1


class TestProtocolStepwise:
    def test_stepwise_records_match_batched_records(
        self, tiny_split, irn_one_layer, markov_evaluator
    ):
        protocol = IRSEvaluationProtocol(
            tiny_split,
            markov_evaluator,
            max_length=6,
            min_objective_interactions=2,
            max_instances=6,
        )
        planner = BeamSearchPlanner(
            irn_one_layer, beam_width=4, branch_factor=4, max_length=6
        ).fit(tiny_split)
        batched = protocol.generate_records(planner)
        stepwise = protocol.generate_records_stepwise(planner)
        assert [record.path for record in stepwise] == [record.path for record in batched]
