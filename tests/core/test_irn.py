"""Unit and behavioural tests for the Influential Recommender Network."""

import numpy as np
import pytest

from repro.core.irn import IRN
from repro.core.pim import MaskType
from repro.data.padding import PAD_INDEX
from repro.utils.exceptions import ConfigurationError, NotFittedError


def _tiny_irn(**overrides) -> IRN:
    params = dict(
        embedding_dim=12,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=2,
        batch_size=32,
        max_sequence_length=16,
        item2vec_init=False,
        seed=0,
    )
    params.update(overrides)
    return IRN(**params)


@pytest.fixture(scope="module")
def fitted_irn(tiny_split):
    return _tiny_irn().fit(tiny_split)


class TestConstruction:
    def test_invalid_objective_weight(self):
        with pytest.raises(ConfigurationError):
            IRN(objective_weight=-1.0)
        with pytest.raises(ConfigurationError):
            IRN(objective_logit_scale=0.0)

    def test_requires_fit_before_scoring(self):
        with pytest.raises(NotFittedError):
            _tiny_irn().score_next([1, 2])

    def test_registered_in_both_registries(self):
        from repro.core.base import influential_registry
        from repro.models.base import model_registry

        assert "irn" in model_registry
        assert "irn" in influential_registry


class TestTraining:
    def test_loss_decreases(self, fitted_irn):
        history = fitted_irn.training_history
        assert history[-1]["train_loss"] < history[0]["train_loss"] + 0.05

    def test_item2vec_initialisation_changes_embeddings(self, tiny_split):
        random_init = _tiny_irn(epochs=1, seed=1).fit(tiny_split)
        pretrained = _tiny_irn(epochs=1, seed=1, item2vec_init=True).fit(tiny_split)
        assert not np.allclose(
            random_init.module.item_embedding.weight.data,
            pretrained.module.item_embedding.weight.data,
        )

    def test_mask_type_round_trips_from_int(self, tiny_split):
        model = _tiny_irn(mask_type=2, epochs=1).fit(tiny_split)
        assert model.mask_type == MaskType.OBJECTIVE


class TestScoring:
    def test_score_next_shape_and_padding(self, fitted_irn, tiny_split):
        scores = fitted_irn.score_next([1, 2, 3], user_index=0)
        assert scores.shape == (tiny_split.corpus.vocab.size,)
        assert scores[PAD_INDEX] == -np.inf

    def test_score_with_objective_differs_from_objective_free(self, fitted_irn):
        history = [1, 2, 3, 4]
        with_objective = fitted_irn.score_with_objective(history, objective=9, user_index=0)
        without = fitted_irn.score_next(history, user_index=0)
        assert not np.allclose(with_objective, without)

    def test_objective_changes_the_recommendation_distribution(self, fitted_irn):
        history = [1, 2, 3, 4]
        scores_a = fitted_irn.score_with_objective(history, objective=8, user_index=0)
        scores_b = fitted_irn.score_with_objective(history, objective=20, user_index=0)
        assert not np.allclose(scores_a, scores_b)

    def test_empty_history_with_objective(self, fitted_irn):
        scores = fitted_irn.score_with_objective([], objective=5, user_index=0)
        assert np.isfinite(scores[1:]).all()

    def test_unknown_user_falls_back_gracefully(self, fitted_irn):
        scores = fitted_irn.score_with_objective([1, 2], objective=5, user_index=10_000)
        assert np.isfinite(scores[1:]).all()


class TestPathGeneration:
    def test_next_step_excludes_session_items_except_objective(self, fitted_irn):
        history = [1, 2, 3, 4, 5]
        step = fitted_irn.next_step(history, objective=9, path_so_far=[6, 7])
        assert step not in set(history) | {6, 7} or step == 9

    def test_generate_path_terminates(self, fitted_irn, tiny_split):
        history = list(tiny_split.test[0].history)[:10]
        objective = tiny_split.train[3].objective
        path = fitted_irn.generate_path(history, objective, user_index=0, max_length=8)
        assert 0 < len(path) <= 8
        if objective in path:
            assert path[-1] == objective

    def test_higher_objective_weight_pulls_paths_closer(self, tiny_split, markov_evaluator):
        """With a much stronger w_t the average rank of the objective improves."""
        weak = _tiny_irn(objective_weight=0.0, epochs=2, seed=3).fit(tiny_split)
        strong = _tiny_irn(objective_weight=1.0, objective_logit_scale=10.0, epochs=2, seed=3).fit(
            tiny_split
        )
        history = list(tiny_split.test[0].history)[:10]
        objective = tiny_split.train[7].objective

        def objective_rank_after_path(model):
            path = model.generate_path(history, objective, user_index=0, max_length=6)
            return markov_evaluator.rank(objective, history + path)

        # Not guaranteed per-instance, so average over a few objectives.
        weak_ranks, strong_ranks = [], []
        for sequence in tiny_split.train[5:11]:
            target = sequence.objective
            if target in history:
                continue
            weak_path = weak.generate_path(history, target, user_index=0, max_length=6)
            strong_path = strong.generate_path(history, target, user_index=0, max_length=6)
            weak_ranks.append(target in weak_path)
            strong_ranks.append(target in strong_path)
        assert sum(strong_ranks) >= sum(weak_ranks)


class TestImpressionability:
    def test_factors_shape_and_variation(self, fitted_irn, tiny_split):
        factors = fitted_irn.impressionability_factors()
        assert factors.shape == (tiny_split.corpus.num_users,)
        assert np.isfinite(factors).all()

    def test_factors_start_near_bias_initialisation(self, tiny_split):
        untrained = _tiny_irn(epochs=1)
        untrained.corpus = tiny_split.corpus
        untrained.module = untrained._build(tiny_split.corpus, np.random.default_rng(0))
        factors = untrained.impressionability_factors()
        assert np.allclose(factors, 1.0, atol=0.2)
