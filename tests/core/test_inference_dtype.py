"""The opt-in float32 inference mode: resolution, scoping and parity.

Float32 applies to the fused attention compute and the K/V arenas only;
parameters and the autograd graph stay float64, so scores differ from the
float64 reference by single-precision roundoff.  The documented tolerance
(see :func:`repro.nn.tensor.resolve_inference_dtype`) is ``5e-4`` absolute
on logits; beam plans must be identical at the default beam widths on the
test corpus (argmax/top-k selections sit far enough from ties — a corpus
with near-tied candidates could flip, which is why the tolerance is
documented on scores, not plans, for other data).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.nn.tensor import (
    INFERENCE_DTYPE_ENV,
    inference_dtype,
    inference_dtype_scope,
    resolve_inference_dtype,
)
from repro.utils.exceptions import ConfigurationError

LOGIT_TOL = 5e-4


class TestResolveInferenceDtype:
    def test_default_is_float64(self, monkeypatch):
        monkeypatch.delenv(INFERENCE_DTYPE_ENV, raising=False)
        assert resolve_inference_dtype() == np.float64

    def test_explicit_values(self):
        assert resolve_inference_dtype("float32") == np.float32
        assert resolve_inference_dtype("FLOAT64") == np.float64
        assert resolve_inference_dtype(np.float32) == np.float32
        assert resolve_inference_dtype(np.dtype(np.float64)) == np.float64

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv(INFERENCE_DTYPE_ENV, "float32")
        assert resolve_inference_dtype() == np.float32
        monkeypatch.setenv(INFERENCE_DTYPE_ENV, "")
        assert resolve_inference_dtype() == np.float64

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_inference_dtype("float16")
        with pytest.raises(ConfigurationError):
            resolve_inference_dtype(np.int64)
        monkeypatch.setenv(INFERENCE_DTYPE_ENV, "bfloat16")
        with pytest.raises(ConfigurationError):
            resolve_inference_dtype()

    def test_explicit_value_beats_environment(self, monkeypatch):
        monkeypatch.setenv(INFERENCE_DTYPE_ENV, "float32")
        assert resolve_inference_dtype("float64") == np.float64


class TestInferenceDtypeScope:
    def test_sets_and_restores(self):
        assert inference_dtype() == np.float64
        with inference_dtype_scope("float32"):
            assert inference_dtype() == np.float32
            with inference_dtype_scope("float64"):
                assert inference_dtype() == np.float64
            assert inference_dtype() == np.float32
        assert inference_dtype() == np.float64

    def test_none_leaves_current_dtype(self):
        with inference_dtype_scope("float32"):
            with inference_dtype_scope(None):
                assert inference_dtype() == np.float32
        assert inference_dtype() == np.float64

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_dtype_scope("float32"):
                raise RuntimeError("boom")
        assert inference_dtype() == np.float64


@pytest.fixture(scope="module")
def parity_irn(tiny_split):
    """Single-layer IRN (incremental decoding exact under the PIM)."""
    return IRN(
        embedding_dim=12,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=2,
        batch_size=32,
        max_sequence_length=16,
        seed=0,
    ).fit(tiny_split)


def contexts_for(split, count: int = 4):
    instances = split.test[:count]
    sequences = [list(inst.history) for inst in instances]
    users = [inst.user_index for inst in instances]
    objectives = [inst.target for inst in instances]
    return sequences, objectives, users


class TestIRNConstruction:
    def test_ctor_kwarg_and_env(self, monkeypatch):
        assert IRN().inference_dtype == np.float64
        assert IRN(inference_dtype="float32").inference_dtype == np.float32
        monkeypatch.setenv(INFERENCE_DTYPE_ENV, "float32")
        assert IRN().inference_dtype == np.float32
        assert IRN(inference_dtype="float64").inference_dtype == np.float64


class TestFloat32ScoringParity:
    def test_score_with_objective_batch_within_tolerance(self, parity_irn, tiny_split):
        sequences, objectives, users = contexts_for(tiny_split)
        reference = parity_irn.score_with_objective_batch(sequences, objectives, users)
        parity_irn.inference_dtype = resolve_inference_dtype("float32")
        try:
            approx = parity_irn.score_with_objective_batch(sequences, objectives, users)
        finally:
            parity_irn.inference_dtype = resolve_inference_dtype("float64")
        finite = np.isfinite(reference)
        assert np.array_equal(finite, np.isfinite(approx))
        np.testing.assert_allclose(
            approx[finite], reference[finite], rtol=0, atol=LOGIT_TOL
        )
        assert np.max(np.abs(approx[finite] - reference[finite])) > 0  # really ran f32

    def test_score_next_batch_within_tolerance(self, parity_irn, tiny_split):
        sequences, _, users = contexts_for(tiny_split)
        reference = parity_irn.score_next_batch(sequences, users)
        parity_irn.inference_dtype = resolve_inference_dtype("float32")
        try:
            approx = parity_irn.score_next_batch(sequences, users)
        finally:
            parity_irn.inference_dtype = resolve_inference_dtype("float64")
        finite = np.isfinite(reference)
        np.testing.assert_allclose(
            approx[finite], reference[finite], rtol=0, atol=LOGIT_TOL
        )

    def test_incremental_decoding_within_tolerance(self, parity_irn, tiny_split):
        """f32 sessions track the f64 sessions step for step (same tokens)."""
        sequences, objectives, users = contexts_for(tiny_split, count=3)

        ref_scores, ref_session = parity_irn.begin_decoding_session(
            sequences, objectives, users
        )
        assert ref_session.incremental
        steps = [np.argmax(ref_scores, axis=1)]
        ref_trace = [ref_scores]
        for _ in range(3):
            ref_scores = parity_irn.advance_decoding_session(ref_session, steps[-1])
            ref_trace.append(ref_scores)
            steps.append(np.argmax(ref_scores, axis=1))

        parity_irn.inference_dtype = resolve_inference_dtype("float32")
        try:
            f32_scores, f32_session = parity_irn.begin_decoding_session(
                sequences, objectives, users
            )
            assert f32_session.state.layers[0].dtype == np.float32
            f32_trace = [f32_scores]
            for new_items in steps[:-1]:
                f32_trace.append(
                    parity_irn.advance_decoding_session(f32_session, new_items)
                )
        finally:
            parity_irn.inference_dtype = resolve_inference_dtype("float64")

        for reference, approx in zip(ref_trace, f32_trace):
            finite = np.isfinite(reference)
            np.testing.assert_allclose(
                approx[finite], reference[finite], rtol=0, atol=LOGIT_TOL
            )

    def test_beam_plans_identical_at_default_widths(self, parity_irn, tiny_split):
        sequences, objectives, users = contexts_for(tiny_split)
        planner = BeamSearchPlanner(parity_irn, plan_cache_size=0).fit(tiny_split)
        reference = planner.plan_paths_batch(sequences, objectives, users, max_length=6)
        parity_irn.inference_dtype = resolve_inference_dtype("float32")
        try:
            f32_planner = BeamSearchPlanner(parity_irn, plan_cache_size=0).fit(tiny_split)
            approx = f32_planner.plan_paths_batch(
                sequences, objectives, users, max_length=6
            )
        finally:
            parity_irn.inference_dtype = resolve_inference_dtype("float64")
        assert approx == reference
