"""Batched-vs-scalar parity tests for the fused inference engine.

The batched entry points (``score_with_objective_batch``, ``score_next_batch``,
``plan_paths_batch``, ``generate_paths_batch``, ``rank_of_batch``) must agree
with the scalar implementations they fuse — across ragged lengths, missing
user indices and empty histories — while issuing strictly fewer module
forwards.  Scores are compared under the documented floating-point tolerance
(batched rows run through padded BLAS calls whose summation order may differ
in the last ulps); plans and ranks must match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives
from repro.perf.bench import ForwardCounter, ScalarOnlyBackbone

RTOL, ATOL = 1e-7, 1e-8


@pytest.fixture(scope="module")
def irn(tiny_split):
    model = IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=20,
        seed=0,
    )
    return model.fit(tiny_split)


@pytest.fixture(scope="module")
def ragged_cases(tiny_split):
    """(sequence, objective, user_index) cases across lengths and user modes."""
    test = tiny_split.test
    return [
        ([], 5, 0),  # empty history
        ([3], 7, None),  # singleton, no user
        (list(test[0].history), test[0].target, test[0].user_index),
        (list(test[1].history)[:4], test[1].target, None),
        (list(test[2].history) * 3, test[2].target, 10_000),  # long (clipped), unknown user
        (list(test[3].history)[:9], test[3].target, test[3].user_index),
    ]


class TestObjectiveScoringParity:
    def test_batch_matches_stacked_scalar(self, irn, ragged_cases):
        sequences = [case[0] for case in ragged_cases]
        objectives = [case[1] for case in ragged_cases]
        users = [case[2] for case in ragged_cases]
        batched = irn.score_with_objective_batch(sequences, objectives, users)
        stacked = np.stack(
            [
                irn.score_with_objective(seq, obj, user_index=user)
                for seq, obj, user in ragged_cases
            ]
        )
        assert batched.shape == stacked.shape
        np.testing.assert_allclose(batched, stacked, rtol=RTOL, atol=ATOL)

    def test_batch_without_user_indices(self, irn, ragged_cases):
        sequences = [case[0] for case in ragged_cases]
        objectives = [case[1] for case in ragged_cases]
        batched = irn.score_with_objective_batch(sequences, objectives)
        stacked = np.stack(
            [irn.score_with_objective(seq, obj) for seq, obj in zip(sequences, objectives)]
        )
        np.testing.assert_allclose(batched, stacked, rtol=RTOL, atol=ATOL)

    def test_empty_batch(self, irn, tiny_split):
        scores = irn.score_with_objective_batch([], [])
        assert scores.shape == (0, tiny_split.corpus.vocab.size)

    def test_single_batch_uses_one_forward(self, irn, ragged_cases):
        sequences = [case[0] for case in ragged_cases]
        objectives = [case[1] for case in ragged_cases]
        with ForwardCounter(irn.module) as counter:
            irn.score_with_objective_batch(sequences, objectives)
        assert counter.count == 1


class TestNextItemScoringParity:
    def test_batch_matches_stacked_scalar(self, irn, ragged_cases):
        histories = [case[0] for case in ragged_cases]
        users = [case[2] for case in ragged_cases]
        batched = irn.score_next_batch(histories, users)
        stacked = np.stack(
            [irn.score_next(history, user) for history, user in zip(histories, users)]
        )
        np.testing.assert_allclose(batched, stacked, rtol=RTOL, atol=ATOL)

    def test_rank_of_batch_matches_scalar(self, irn, tiny_split):
        instances = tiny_split.test[:8]
        batched = irn.rank_of_batch(
            [list(inst.history) for inst in instances],
            [inst.target for inst in instances],
            [inst.user_index for inst in instances],
        )
        scalar = [
            irn.rank_of(list(inst.history), inst.target, user_index=inst.user_index)
            for inst in instances
        ]
        assert batched == scalar


class TestGreedyRolloutParity:
    def test_lockstep_paths_match_scalar_loop(self, irn, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=8)
        batched = irn.generate_paths_batch(
            [list(inst.history) for inst in instances],
            [inst.objective for inst in instances],
            [inst.user_index for inst in instances],
            max_length=8,
        )
        scalar = [
            irn.generate_path(
                list(inst.history), inst.objective, user_index=inst.user_index, max_length=8
            )
            for inst in instances
        ]
        assert batched == scalar

    def test_lockstep_uses_fewer_forwards(self, irn, tiny_split):
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
        histories = [list(inst.history) for inst in instances]
        objectives = [inst.objective for inst in instances]
        with ForwardCounter(irn.module) as scalar_counter:
            for history, objective in zip(histories, objectives):
                irn.generate_path(history, objective, max_length=6)
        with ForwardCounter(irn.module) as batched_counter:
            irn.generate_paths_batch(histories, objectives, max_length=6)
        assert batched_counter.count < scalar_counter.count


class TestBeamParity:
    @pytest.fixture(scope="class")
    def planners(self, irn, tiny_split):
        batched = BeamSearchPlanner(irn, beam_width=4, branch_factor=4).fit(tiny_split)
        scalar = BeamSearchPlanner(
            ScalarOnlyBackbone(irn), beam_width=4, branch_factor=4
        ).fit(tiny_split)
        return batched, scalar

    def test_plans_identical_to_scalar_expansion(self, planners, tiny_split):
        batched, scalar = planners
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
        for inst in instances:
            plan_batched = batched.plan_path(
                list(inst.history), inst.objective, user_index=inst.user_index, max_length=8
            )
            plan_scalar = scalar.plan_path(
                list(inst.history), inst.objective, user_index=inst.user_index, max_length=8
            )
            assert plan_batched == plan_scalar

    def test_lockstep_plan_paths_batch_matches_per_instance(self, planners, tiny_split):
        batched, _ = planners
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
        fused = batched.plan_paths_batch(
            [list(inst.history) for inst in instances],
            [inst.objective for inst in instances],
            [inst.user_index for inst in instances],
            max_length=8,
        )
        individual = [
            batched.plan_path(
                list(inst.history), inst.objective, user_index=inst.user_index, max_length=8
            )
            for inst in instances
        ]
        assert fused == individual

    def test_beam_width_4_uses_4x_fewer_forwards(self, planners, irn, tiny_split):
        batched, scalar = planners
        instances = sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)
        histories = [list(inst.history) for inst in instances]
        objectives = [inst.objective for inst in instances]
        users = [inst.user_index for inst in instances]
        with ForwardCounter(irn.module) as scalar_counter:
            for history, objective, user in zip(histories, objectives, users):
                scalar.plan_path(history, objective, user_index=user, max_length=8)
        with ForwardCounter(irn.module) as batched_counter:
            batched.plan_paths_batch(histories, objectives, users, max_length=8)
        assert batched_counter.count * 4 <= scalar_counter.count


class TestBatchValidation:
    def test_mismatched_lengths_raise(self, irn):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            irn.score_with_objective_batch([[1, 2], [3]], [5])
        with pytest.raises(ConfigurationError):
            irn.score_with_objective_batch([[1, 2]], [5], [0, 1])
        with pytest.raises(ConfigurationError):
            irn.generate_paths_batch([[1], [2]], [5, 6], user_indices=[0], max_length=4)
        with pytest.raises(ConfigurationError):
            irn.rank_of_batch([[1], [2]], [3])


class TestTopKTieBreaking:
    def test_boundary_ties_keep_lowest_indices(self, tiny_split):
        """argpartition may admit any tied index at the k-th boundary; the
        repair pass must restore the scalar stable-argsort choice (lowest)."""
        from repro.core.beam import _Hypothesis

        vocab = tiny_split.corpus.vocab.size
        scores = np.full(vocab, -np.inf)
        # Three clear winners and a three-way tie for the final (4th) slot.
        scores[[2, 5, 9]] = [3.0, 2.5, 2.0]
        scores[[11, 17, 23]] = 1.0

        class _TiedBackbone:
            corpus = tiny_split.corpus

            def score_with_objective(self, sequence, objective, user_index=None):
                return scores

            def score_with_objective_batch(self, sequences, objectives, user_indices):
                return np.tile(scores, (len(sequences), 1))

        planner = BeamSearchPlanner(_TiedBackbone(), beam_width=4, branch_factor=4)
        planner.corpus = tiny_split.corpus
        expansions = planner._expand_all(
            [_Hypothesis(items=(), log_probability=0.0, reached=False)],
            [[]],
            [2],
            [None],
        )
        items = [child.items[-1] for child in expansions[0]]
        assert items == [2, 5, 9, 11]  # lowest tied index wins, argsort order


class TestLogSoftmaxEdgeCases:
    def test_all_masked_scores_return_neg_inf(self, irn, tiny_split):
        """Satellite fix: an all ``-inf`` row must not crash on empty ``np.max``."""
        planner = BeamSearchPlanner(irn).fit(tiny_split)
        scores = np.full(7, -np.inf)
        log_probs = planner._log_softmax(scores)
        assert np.all(np.isneginf(log_probs))

    def test_mixed_rows(self, irn, tiny_split):
        planner = BeamSearchPlanner(irn).fit(tiny_split)
        rows = np.array([[-np.inf, 1.0, 2.0, 0.5], [-np.inf] * 4])
        log_probs = planner._log_softmax_rows(rows)
        assert np.exp(log_probs[0, 1:]).sum() == pytest.approx(1.0)
        assert log_probs[0, 0] == -np.inf
        assert np.all(np.isneginf(log_probs[1]))


class TestProtocolIntegration:
    def test_generate_records_uses_batched_rollouts(self, irn, tiny_split, markov_evaluator):
        from repro.evaluation.protocol import IRSEvaluationProtocol

        protocol = IRSEvaluationProtocol(
            tiny_split,
            markov_evaluator,
            max_length=6,
            min_objective_interactions=2,
            max_instances=6,
        )
        records = protocol.generate_records(irn)
        assert len(records) == len(protocol.instances)
        expected = [
            tuple(
                irn.generate_path(
                    protocol._history_for(inst),
                    inst.objective,
                    user_index=inst.user_index,
                    max_length=6,
                )
            )
            for inst in protocol.instances
        ]
        assert [record.path for record in records] == expected
