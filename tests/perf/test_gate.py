"""Unit tests of the CI perf gate (pure dict checks — no benchmarking).

The gate is what makes every serving contract a *required* check: CI runs
``python -m repro.perf.gate BENCH_path_planning.json --require ...`` after
the bench, so these tests pin down exactly which report shapes pass and
which fail.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.gate import collect_violations, main


def green_report() -> dict:
    return {
        "machine": {"cpu_count": 1},
        "tensor_ops": {
            "attention": {"fused_parity": True, "max_abs_diff": 0.0},
            "decode_allocation": {"no_prefix_copy": True},
            "float32": {"within_tolerance": True, "max_abs_diff": 1e-7, "tolerance": 5e-4},
            "inplace_guard_raises": True,
        },
        "beam_planning": {"plans_equal": True},
        "greedy_planning": {"plans_equal": True},
        "nextitem_evaluation": {"ranks_equal": True},
        "irs_stepwise_replanning": {"cached_paths_match_isolated": True},
        "incremental_decoding": {"plans_equal": True},
        "sharded_evaluation": {
            "workers": [
                {"num_workers": 1, "plans_equal_serial": True},
                {"num_workers": 2, "plans_equal_serial": True},
            ],
            "process_parity": True,
        },
        "async_serving": {
            "workers": [
                {"num_workers": 1, "responses_match_sequential": True},
                {"num_workers": 2, "responses_match_sequential": True},
            ]
        },
        "replicated_serving": {
            "parity": {"responses_match_single_replica": True},
            "hot_refit": {
                "errored_requests": 0,
                "rejected_requests": 0,
                "no_pause": True,
                "admission": {"policy": "block"},
                "refit": {"generation_from": 1, "generation_to": 2},
            },
        },
        "distributed_serving": {
            "fork_available": True,
            "workers": [
                {
                    "num_workers": 1,
                    "responses_match_sequential": True,
                    "burst_answers_match": True,
                },
                {
                    "num_workers": 2,
                    "responses_match_sequential": True,
                    "burst_answers_match": True,
                },
            ],
            "chaos": {
                "zero_dropped": True,
                "answers_match": True,
                "detect_seconds": 0.003,
                "budget_seconds": 0.3,
                "unhealthy_within_budget": True,
            },
        },
        "observability": {
            "disabled": {"p95_ms": 1.0, "allocation_delta": {}},
            "enabled": {"p95_ms": 1.1},
            "overhead": {"p95_delta_ms": 0.1, "budget_ms": 2.0, "within_budget": True},
            "disabled_noop": True,
            "deterministic_trace_ids": True,
            "async_parity_with_tracing": True,
            "replicated_parity_with_tracing": True,
        },
        "two_stage_retrieval": {
            "full_vocab_parity": True,
            "objective_in_candidates": True,
            "tiers": [
                {
                    "num_items": 500,
                    "vocab_size": 501,
                    "generators": {
                        "cooccurrence": {
                            "overlap_at_k": 0.8,
                            "mean_plan_regret": 0.02,
                            "requests": 4,
                            "fallbacks": 0,
                        },
                        "ann": {
                            "overlap_at_k": 0.6,
                            # None = no finite exact/pruned comparison — a
                            # legal measurement, distinct from a missing key.
                            "mean_plan_regret": None,
                            "requests": 4,
                            "fallbacks": 1,
                        },
                    },
                }
            ],
        },
    }


class TestCollectViolations:
    def test_green_report_has_no_violations(self):
        assert collect_violations(green_report()) == []

    def test_subset_report_checks_only_present_sections(self):
        assert collect_violations({"machine": {}}) == []

    def test_require_flags_missing_sections(self):
        violations = collect_violations({"machine": {}}, require=["replicated_serving"])
        assert violations == [
            "replicated_serving: required section missing from the report"
        ]

    def test_replicated_parity_false_fails(self):
        report = green_report()
        report["replicated_serving"]["parity"]["responses_match_single_replica"] = False
        assert any("parity bit false" in v for v in collect_violations(report))

    def test_refit_errored_request_fails(self):
        report = green_report()
        report["replicated_serving"]["hot_refit"]["errored_requests"] = 3
        report["replicated_serving"]["hot_refit"]["no_pause"] = False
        violations = collect_violations(report)
        assert any("errored 3 admitted request" in v for v in violations)
        assert any("no_pause" in v for v in violations)

    def test_rejection_under_block_policy_fails(self):
        report = green_report()
        report["replicated_serving"]["hot_refit"]["rejected_requests"] = 1
        violations = collect_violations(report)
        assert any("rejected under the block admission policy" in v for v in violations)

    def test_rejections_allowed_under_reject_policy(self):
        report = green_report()
        refit_run = report["replicated_serving"]["hot_refit"]
        refit_run["admission"]["policy"] = "reject"
        refit_run["rejected_requests"] = 5
        assert collect_violations(report) == []

    def test_missing_refit_fails(self):
        report = green_report()
        del report["replicated_serving"]["hot_refit"]["refit"]
        assert any("recorded no refit" in v for v in collect_violations(report))

    def test_wrong_generation_step_fails(self):
        report = green_report()
        report["replicated_serving"]["hot_refit"]["refit"]["generation_to"] = 5
        assert any("expected exactly one step" in v for v in collect_violations(report))

    def test_async_serving_mismatch_fails(self):
        report = green_report()
        report["async_serving"]["workers"][1]["responses_match_sequential"] = False
        assert any("async_serving" in v for v in collect_violations(report))

    def test_sharded_and_batched_parity_bits_checked(self):
        report = green_report()
        report["sharded_evaluation"]["workers"][1]["plans_equal_serial"] = False
        report["beam_planning"]["plans_equal"] = False
        violations = collect_violations(report)
        assert any("sharded_evaluation" in v for v in violations)
        assert any("beam_planning" in v for v in violations)

    def test_fork_parity_none_is_not_a_violation(self):
        report = green_report()
        report["sharded_evaluation"]["process_parity"] = None  # no fork on platform
        assert collect_violations(report) == []

    def test_fused_parity_false_fails(self):
        report = green_report()
        report["tensor_ops"]["attention"]["fused_parity"] = False
        assert any("fused attention diverged" in v for v in collect_violations(report))

    def test_prefix_copy_fails(self):
        report = green_report()
        report["tensor_ops"]["decode_allocation"]["no_prefix_copy"] = False
        assert any(
            "no_prefix_copy bit false" in v for v in collect_violations(report)
        )

    def test_float32_out_of_tolerance_fails(self):
        report = green_report()
        report["tensor_ops"]["float32"]["within_tolerance"] = False
        assert any(
            "deviates beyond the documented" in v for v in collect_violations(report)
        )

    def test_inplace_guard_not_raising_fails(self):
        report = green_report()
        report["tensor_ops"]["inplace_guard_raises"] = False
        assert any(
            "did not refuse to run under grad" in v for v in collect_violations(report)
        )

    def test_observability_disabled_allocation_fails(self):
        report = green_report()
        report["observability"]["disabled_noop"] = False
        report["observability"]["disabled"]["allocation_delta"] = {"traces": 3}
        violations = collect_violations(report)
        assert any("zero-cost-when-off" in v and "'traces': 3" in v for v in violations)

    def test_observability_overhead_over_budget_fails(self):
        report = green_report()
        report["observability"]["overhead"]["within_budget"] = False
        assert any(
            "overhead exceeded its budget" in v for v in collect_violations(report)
        )

    def test_observability_nondeterministic_trace_ids_fail(self):
        report = green_report()
        report["observability"]["deterministic_trace_ids"] = False
        assert any(
            "trace IDs differ" in v for v in collect_violations(report)
        )

    def test_observability_parity_bits_checked(self):
        for bit in ("async_parity_with_tracing", "replicated_parity_with_tracing"):
            report = green_report()
            report["observability"][bit] = False
            assert any(
                "changed with tracing enabled" in v for v in collect_violations(report)
            )


class TestDistributedServingGate:
    def test_lockstep_mismatch_fails(self):
        report = green_report()
        report["distributed_serving"]["workers"][1]["responses_match_sequential"] = False
        assert any(
            "lockstep responses at 2 worker(s) differ" in v
            for v in collect_violations(report)
        )

    def test_burst_mismatch_fails(self):
        report = green_report()
        report["distributed_serving"]["workers"][0]["burst_answers_match"] = False
        assert any(
            "burst answers at 1 worker(s) differ" in v
            for v in collect_violations(report)
        )

    def test_empty_workers_fail(self):
        report = green_report()
        report["distributed_serving"]["workers"] = []
        assert any(
            "recorded no worker counts" in v for v in collect_violations(report)
        )

    def test_missing_chaos_run_fails(self):
        report = green_report()
        del report["distributed_serving"]["chaos"]
        assert any("recorded no chaos run" in v for v in collect_violations(report))

    def test_dropped_requests_fail(self):
        report = green_report()
        report["distributed_serving"]["chaos"]["zero_dropped"] = False
        assert any(
            "zero_dropped bit false" in v for v in collect_violations(report)
        )

    def test_chaos_answer_drift_fails(self):
        report = green_report()
        report["distributed_serving"]["chaos"]["answers_match"] = False
        assert any(
            "changed under the SIGKILL chaos run" in v
            for v in collect_violations(report)
        )

    def test_detection_over_budget_fails(self):
        report = green_report()
        chaos = report["distributed_serving"]["chaos"]
        chaos["unhealthy_within_budget"] = False
        chaos["detect_seconds"] = 0.9
        assert any(
            "over the missed-heartbeat budget" in v
            for v in collect_violations(report)
        )

    def test_codec_only_report_without_fork_passes(self):
        # A non-fork platform records codec numbers only; nothing to gate.
        report = green_report()
        report["distributed_serving"] = {
            "fork_available": False,
            "codec": {"request_encode_ns": 1200.0},
        }
        assert collect_violations(report) == []

    def test_require_distributed_serving_flags_missing_section(self):
        violations = collect_violations(
            {"machine": {}}, require=["distributed_serving"]
        )
        assert violations == [
            "distributed_serving: required section missing from the report"
        ]


class TestTwoStageRetrievalGate:
    def test_parity_bit_false_fails(self):
        report = green_report()
        report["two_stage_retrieval"]["full_vocab_parity"] = False
        assert any(
            "full_vocab_parity false" in v for v in collect_violations(report)
        )

    def test_missing_objective_fails(self):
        report = green_report()
        report["two_stage_retrieval"]["objective_in_candidates"] = False
        assert any(
            "missing its objective" in v for v in collect_violations(report)
        )

    def test_empty_tiers_fail(self):
        report = green_report()
        report["two_stage_retrieval"]["tiers"] = []
        assert any("no vocab tiers" in v for v in collect_violations(report))

    def test_tier_without_generators_fails(self):
        report = green_report()
        report["two_stage_retrieval"]["tiers"][0]["generators"] = {}
        assert any(
            "no generator backends" in v for v in collect_violations(report)
        )

    def test_missing_or_out_of_range_overlap_fails(self):
        for bad in (None, 1.5, -0.1):
            report = green_report()
            generators = report["two_stage_retrieval"]["tiers"][0]["generators"]
            generators["ann"]["overlap_at_k"] = bad
            assert any(
                "no valid overlap@k" in v and "'ann'" in v
                for v in collect_violations(report)
            )

    def test_missing_regret_key_fails_but_none_value_passes(self):
        # None regret (no finite comparison) is a recorded measurement and
        # must pass; a MISSING key means the bench never measured it.
        assert collect_violations(green_report()) == []
        report = green_report()
        del report["two_stage_retrieval"]["tiers"][0]["generators"]["cooccurrence"][
            "mean_plan_regret"
        ]
        assert any(
            "no plan-regret measurement" in v and "'cooccurrence'" in v
            for v in collect_violations(report)
        )

    def test_more_fallbacks_than_requests_fails(self):
        report = green_report()
        generators = report["two_stage_retrieval"]["tiers"][0]["generators"]
        generators["ann"]["fallbacks"] = 9
        assert any(
            "more fallbacks than requests" in v for v in collect_violations(report)
        )

    def test_require_two_stage_retrieval_flags_missing_section(self):
        violations = collect_violations(
            {"machine": {}}, require=["two_stage_retrieval"]
        )
        assert violations == [
            "two_stage_retrieval: required section missing from the report"
        ]


class TestGateMain:
    @pytest.fixture()
    def report_file(self, tmp_path):
        def write(report: dict):
            path = tmp_path / "bench.json"
            path.write_text(json.dumps(report))
            return str(path)

        return write

    def test_green_report_exits_zero(self, report_file, capsys):
        assert main([report_file(green_report())]) == 0
        assert "perf gate ok" in capsys.readouterr().out

    def test_violation_exits_nonzero_and_prints(self, report_file, capsys):
        report = green_report()
        report["replicated_serving"]["hot_refit"]["no_pause"] = False
        assert main([report_file(report)]) == 1
        assert "PERF GATE FAIL" in capsys.readouterr().err

    def test_require_missing_section_exits_nonzero(self, report_file, capsys):
        assert (
            main([report_file({"machine": {}}), "--require", "replicated_serving"]) == 1
        )
        assert "required section missing" in capsys.readouterr().err
