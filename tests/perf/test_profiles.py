"""Bench profile resolution and the scale profile's shape (no benchmarking).

The ``--profile`` flag resolves through :func:`repro.perf.bench.resolve_profile`
eagerly — unknown names must fail with the known-profile list before any
model trains — and the ``scale`` profile's retrieval tiers are env-tunable
via ``REPRO_BENCH_SCALE_TIERS``.
"""

from __future__ import annotations

import pytest

from repro.perf.bench import (
    BENCH_PROFILES,
    bench_config,
    default_config,
    machine_info,
    peak_rss_kb,
    resolve_profile,
    scale_config,
    smoke_config,
)
from repro.utils.exceptions import ConfigurationError


class TestResolveProfile:
    def test_known_profiles(self):
        assert BENCH_PROFILES == ("smoke", "default", "scale")
        for name in BENCH_PROFILES:
            assert resolve_profile(name) == name

    def test_whitespace_and_case_normalised(self):
        assert resolve_profile(" Scale ") == "scale"

    def test_unknown_profile_lists_known(self):
        with pytest.raises(ConfigurationError, match="smoke, default, scale"):
            resolve_profile("quantum")

    def test_bench_config_dispatch(self):
        assert bench_config("smoke")["profile"] == "smoke"
        assert bench_config("default")["profile"] == "default"
        assert bench_config("scale")["profile"] == "scale"


class TestProfileShapes:
    def test_every_profile_carries_a_retrieval_config(self):
        for config in (smoke_config(), default_config(), scale_config()):
            retrieval = config["retrieval"]
            assert retrieval["vocab_tiers"]
            assert retrieval["num_candidates"] >= retrieval["overlap_k"]
            assert retrieval["beam_width"] >= 1

    def test_scale_profile_defaults_to_1e4_and_1e5_tiers(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE_TIERS", raising=False)
        assert scale_config()["retrieval"]["vocab_tiers"] == [10_000, 100_000]

    def test_scale_tiers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE_TIERS", "1000, 1000000")
        assert scale_config()["retrieval"]["vocab_tiers"] == [1_000, 1_000_000]

    def test_scale_tiers_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE_TIERS", "ten")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_SCALE_TIERS"):
            scale_config()
        monkeypatch.setenv("REPRO_BENCH_SCALE_TIERS", "50")
        with pytest.raises(ConfigurationError, match="REPRO_BENCH_SCALE_TIERS"):
            scale_config()

    def test_scale_profile_shares_the_smoke_corpus_for_other_sections(self):
        scale, smoke = scale_config(), smoke_config()
        assert scale["synthetic"] == smoke["synthetic"]
        assert scale["irn"] == smoke["irn"]


class TestPeakRss:
    def test_machine_info_records_peak_rss(self):
        info = machine_info()
        assert "peak_rss_kb" in info

    def test_peak_rss_positive_on_posix(self):
        import sys

        if not sys.platform.startswith(("linux", "darwin")):
            pytest.skip("ru_maxrss unavailable off-POSIX")
        rss = peak_rss_kb()
        assert rss is not None and rss > 0
