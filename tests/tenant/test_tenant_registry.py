"""TenantRegistry: construction, routing, batch grouping, failure scoping."""

from __future__ import annotations

import pytest

from repro.serve.request import ServeRequest
from repro.tenant import TenantRegistry
from repro.utils.exceptions import ConfigurationError, ServingError


def _envelope(kind, history, objective, tenant=None, **kwargs):
    return ServeRequest.create(kind, history, objective, tenant=tenant, **kwargs)


class TestConstruction:
    def test_duplicate_and_bad_names_are_rejected(self, fitted_markov):
        registry = TenantRegistry()
        registry.add("zoo", fitted_markov)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.add("zoo", fitted_markov)
        with pytest.raises(ConfigurationError, match="non-empty string"):
            registry.add("", fitted_markov)

    def test_uniform_builds_count_tenants_over_one_model(self, fitted_markov):
        registry = TenantRegistry.uniform(fitted_markov, 3)
        assert registry.names == ("tenant-0", "tenant-1", "tenant-2")
        assert len(registry) == 3
        with pytest.raises(ConfigurationError, match="positive integer"):
            TenantRegistry.uniform(fitted_markov, 0)

    def test_unknown_tenant_lookup_names_the_registered_ones(self, fitted_markov):
        registry = TenantRegistry()
        registry.add("zoo", fitted_markov)
        with pytest.raises(ServingError, match="zoo"):
            registry.get("ghost")


class TestRouting:
    def test_assign_is_deterministic_and_covers_tenants(self, fitted_markov):
        registry = TenantRegistry.uniform(fitted_markov, 2)
        keys = [("t", (i,), i) for i in range(40)]
        first = [registry.assign(key) for key in keys]
        assert first == [registry.assign(key) for key in keys]
        assert set(first) == {"tenant-0", "tenant-1"}

    def test_resolve_writes_the_assigned_tenant_onto_the_envelope(
        self, fitted_markov
    ):
        registry = TenantRegistry.uniform(fitted_markov, 2)
        request = _envelope("rank", [1, 2], 5)
        assert request.tenant is None
        binding = registry.resolve(request)
        assert request.tenant == binding.name
        # A tenanted request resolves to its own binding, untouched.
        tenanted = _envelope("rank", [1, 2], 5, tenant="tenant-1")
        assert registry.resolve(tenanted).name == "tenant-1"


class TestPlanBatch:
    def test_mixed_batch_answers_align_with_per_tenant_oracles(
        self, make_planner, fitted_markov, tenant_contexts
    ):
        planner = make_planner()
        reference = make_planner()
        registry = TenantRegistry()
        registry.add("irs", planner)
        registry.add("zoo", fitted_markov)
        history, objective, user = tenant_contexts[0]
        batch = [
            _envelope("next_step", history, objective, tenant="irs", user_index=user),
            _envelope("rank", history, 5, tenant="zoo", user_index=user),
            _envelope("next_step", history, objective, tenant="irs", user_index=user),
        ]
        answers, generations, failures = registry.plan_batch(batch)
        assert failures == {}
        [expected_step] = reference.plan_for_requests(
            [("next_step", tuple(history), objective, (), user, None)]
        )
        assert answers[0] == expected_step
        assert answers[2] == expected_step
        assert answers[1] == [
            int(item) for item in fitted_markov.top_k(history, 5, user_index=user)
        ]
        assert set(generations) == {"irs", "zoo"}

    def test_failures_are_confined_to_the_offending_tenant(
        self, tenant_graph, fitted_markov, tenant_contexts
    ):
        registry = TenantRegistry()
        registry.add("kg", tenant_graph)
        registry.add("zoo", fitted_markov)
        history, objective, user = tenant_contexts[0]
        batch = [
            # The bare graph cannot serve next_step: this tenant's whole
            # sub-batch fails...
            _envelope("next_step", history, objective, tenant="kg"),
            _envelope("rank", history, 5, tenant="zoo", user_index=user),
            _envelope("next_step", history, objective, tenant="kg"),
        ]
        answers, _, failures = registry.plan_batch(batch)
        assert sorted(failures) == [0, 2]
        assert all(isinstance(exc, ServingError) for exc in failures.values())
        # ...while the neighbour's slot in the same drain still answered.
        assert answers[1] == [
            int(item) for item in fitted_markov.top_k(history, 5, user_index=user)
        ]


class TestPinGeneration:
    def test_stamps_versionable_models_and_skips_the_rest(
        self, make_planner, tenant_graph, fitted_markov
    ):
        planner = make_planner()
        registry = TenantRegistry()
        registry.add("irs", planner)
        registry.add("zoo", fitted_markov)
        registry.add("kg", tenant_graph)
        registry.pin_generation(7)
        assert planner.serving_generation == 7
        assert registry.get("irs").adapter.serving_generation == 7
        # The graph has no pin hook and no generation; the recommender
        # keeps reporting its own fit_generation.
        assert registry.get("kg").adapter.serving_generation is None
