"""The online A/B harness: cohorts through the fleet, uplift + SLO readout."""

from __future__ import annotations

import pytest

from repro.evaluation.evaluator import IRSEvaluator
from repro.serve import ServingLoop
from repro.tenant import TenantRegistry
from repro.tenant.ab import ABReport, ServingTenantRecommender, TenantArm, run_ab
from repro.utils.exceptions import ConfigurationError

from tests.tenant.conftest import MAX_LENGTH


@pytest.fixture()
def ab_loop(make_planner, fitted_markov):
    registry = TenantRegistry()
    registry.add("control", fitted_markov)
    registry.add("treatment", make_planner())
    with ServingLoop(None, tenants=registry) as loop:
        yield loop


@pytest.fixture(scope="session")
def ab_evaluator(tenant_irn):
    return IRSEvaluator(tenant_irn)


class TestValidation:
    def test_needs_instances_and_distinct_tenants(self, ab_loop, ab_evaluator):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_ab(ab_loop, "control", "treatment", [], ab_evaluator)
        with pytest.raises(ConfigurationError, match="different tenants"):
            run_ab(
                ab_loop, "control", "control", [object()], ab_evaluator
            )


class TestShimAndReport:
    def test_shim_serves_tenanted_steps_and_records_latency(
        self, ab_loop, tenant_contexts
    ):
        shim = ServingTenantRecommender(ab_loop, "treatment")
        history, objective, user = tenant_contexts[0]
        step = shim.next_step(history, objective, (), user_index=user)
        assert step is None or isinstance(step, int)
        assert len(shim.latencies_s) == 1
        assert shim.latencies_s[0] >= 0.0

    def test_report_shape_uplift_and_slo_grading(
        self, ab_loop, ab_evaluator, tenant_instances
    ):
        report = run_ab(
            ab_loop,
            TenantArm("control"),
            TenantArm("treatment"),
            tenant_instances,
            ab_evaluator,
            max_steps=2 * MAX_LENGTH,
            seed=3,
            slo_p95_ms=60_000.0,  # generous: grading logic, not timing
        )
        assert isinstance(report, ABReport)
        assert report.control.tenant == "control"
        assert report.treatment.tenant == "treatment"
        assert report.control.requests > 0
        assert report.treatment.requests > 0
        assert report.uplift == pytest.approx(
            report.treatment.metrics.interactive_success_rate
            - report.control.metrics.interactive_success_rate
        )
        for arm in (report.control, report.treatment):
            assert 0.0 <= arm.latency_p50_ms <= arm.latency_p95_ms
            assert arm.slo_met is True
            row = arm.as_row()
            assert row["slo_p95_ms"] == 60_000.0
            assert row["requests"] == arm.requests
        summary = report.summary()
        assert set(summary) == {"control", "treatment", "uplift"}

    def test_cohorts_are_arm_independent(
        self, make_planner, fitted_markov, ab_evaluator, tenant_instances
    ):
        """Both arms bound to the SAME static model must tie exactly —
        the seeds that drive the simulated users never see the arm."""
        registry = TenantRegistry()
        registry.add("a", fitted_markov)
        registry.add("b", fitted_markov)
        with ServingLoop(None, tenants=registry) as loop:
            report = run_ab(
                loop,
                TenantArm("a"),
                TenantArm("b"),
                tenant_instances,
                ab_evaluator,
                max_steps=2 * MAX_LENGTH,
                seed=7,
            )
        assert report.uplift == 0.0
        assert report.control.requests == report.treatment.requests
        assert (
            report.control.metrics.as_row("x") == report.treatment.metrics.as_row("x")
        )
