"""The in-process multi-tenant surface: parity, isolation, refit opacity."""

from __future__ import annotations

import pytest

from repro.replica.set import ReplicaSet
from repro.serve import ServingLoop
from repro.serve.api import (
    KGPathRequest,
    NextStepRequest,
    PlanRequest,
    RankRequest,
)
from repro.tenant import TenantRegistry
from repro.utils.exceptions import QueueFullError

from tests.tenant.conftest import MAX_LENGTH


@pytest.fixture()
def zoo_registry(make_planner, fitted_markov, tenant_graph):
    def build() -> TenantRegistry:
        registry = TenantRegistry()
        registry.add("irs", make_planner())
        registry.add("zoo", fitted_markov)
        registry.add("kg", tenant_graph)
        return registry

    return build


class TestFourKindParity:
    def test_every_kind_matches_its_direct_model_oracle(
        self, zoo_registry, make_planner, fitted_markov, tenant_graph, tenant_contexts
    ):
        reference = make_planner()
        contexts = tenant_contexts[:6]
        with ServingLoop(None, tenants=zoo_registry()) as loop:
            for history, objective, user in contexts:
                responses = [
                    loop.serve(request).result()
                    for request in (
                        NextStepRequest(
                            history=history, objective=objective,
                            user_index=user, tenant="irs",
                        ),
                        PlanRequest(
                            history=history, objective=objective, user_index=user,
                            max_length=MAX_LENGTH, tenant="irs",
                        ),
                        RankRequest(history=history, k=5, user_index=user, tenant="zoo"),
                        KGPathRequest(
                            source=history[-1], target=objective, tenant="kg"
                        ),
                    )
                ]
                expected = [
                    reference.plan_for_requests(
                        [("next_step", tuple(history), objective, (), user, None)]
                    )[0],
                    reference.plan_for_requests(
                        [("plan_paths", tuple(history), objective, (), user, MAX_LENGTH)]
                    )[0],
                    [
                        int(item)
                        for item in fitted_markov.top_k(history, 5, user_index=user)
                    ],
                    [
                        int(item)
                        for item in tenant_graph.shortest_item_path(
                            history[-1], objective
                        )
                    ],
                ]
                assert [response.answer for response in responses] == expected
                assert [response.tenant for response in responses] == [
                    "irs", "irs", "zoo", "kg",
                ]
                assert all(response.latency_s >= 0.0 for response in responses)

    def test_tenant_stats_key_by_tenant_id(self, zoo_registry, tenant_contexts):
        history, objective, user = tenant_contexts[0]
        with ServingLoop(None, tenants=zoo_registry()) as loop:
            loop.serve(
                RankRequest(history=history, k=5, user_index=user, tenant="zoo")
            ).result()
            stats = loop.stats()
        assert set(stats["tenants"]) == {"irs", "zoo", "kg"}
        assert stats["tenants"]["zoo"]["served"] == 1
        assert stats["tenants"]["irs"]["served"] == 0
        assert stats["tenants"]["zoo"]["kinds"] == ["rank", "next_step"]


class TestCrossTenantIsolation:
    def test_bounded_tenant_overflow_never_touches_its_neighbour(
        self, make_planner, fitted_markov, tenant_contexts
    ):
        bound, attempts = 2, 6
        registry = TenantRegistry()
        registry.add("noisy", make_planner(), max_inflight=bound, admission_policy="reject")
        registry.add("neighbour", fitted_markov)
        loop = ServingLoop(None, tenants=registry)
        history, objective, user = tenant_contexts[0]
        futures, rejects = [], 0
        # Not started: admitted envelopes hold their tenant's in-flight
        # slots, so the bounded tenant overflows deterministically.
        for _ in range(attempts):
            try:
                futures.append(
                    loop.enqueue(
                        NextStepRequest(
                            history=history, objective=objective,
                            user_index=user, tenant="noisy",
                        ).to_envelope()
                    )
                )
            except QueueFullError:
                rejects += 1
        for _ in range(attempts):
            futures.append(
                loop.enqueue(
                    RankRequest(
                        history=history, k=5, user_index=user, tenant="neighbour"
                    ).to_envelope()
                )
            )
        with loop:
            for future in futures:
                future.result()
        stats = loop.stats()["tenants"]
        assert rejects == attempts - bound
        assert stats["noisy"]["served"] == bound
        assert stats["noisy"]["admission"]["rejected"] == rejects
        # The neighbour's full cohort served, zero rejects anywhere near it.
        assert stats["neighbour"]["served"] == attempts
        assert "admission" not in stats["neighbour"]


class TestRefitOpacity:
    def test_refit_is_invisible_to_a_static_tenant(
        self, make_planner, fitted_markov, tenant_contexts
    ):
        """A fleet refit flips every replica's planner generation; a tenant
        bound to a static recommender keeps answering identically."""

        def tenant_factory() -> TenantRegistry:
            registry = TenantRegistry()
            registry.add("zoo", fitted_markov)
            return registry

        history, objective, user = tenant_contexts[0]
        request = RankRequest(history=history, k=5, user_index=user, tenant="zoo")
        with ReplicaSet(
            make_planner, num_replicas=2, tenant_factory=tenant_factory
        ) as replica_set:
            before = replica_set.serve(request).result()
            report = replica_set.refit()
            after = replica_set.serve(request).result()
        assert report["generation_to"] == 2
        assert after.answer == before.answer
        assert after.tenant == before.tenant == "zoo"
