"""Kind adapters: the model zoo behind the positional serving protocol."""

from __future__ import annotations

import pytest

from repro.tenant.adapters import (
    KGAdapter,
    KindAdapter,
    PlannerAdapter,
    RecommenderAdapter,
    adapt,
)
from repro.utils.exceptions import ConfigurationError, ServingError


def _tuple(kind, history, objective, path_so_far=(), user_index=None, max_length=None):
    return (kind, tuple(history), objective, tuple(path_so_far), user_index, max_length)


class TestAdaptSniffing:
    def test_planner_becomes_planner_adapter(self, make_planner):
        assert isinstance(adapt(make_planner()), PlannerAdapter)

    def test_recommender_becomes_recommender_adapter(self, fitted_markov):
        assert isinstance(adapt(fitted_markov), RecommenderAdapter)

    def test_bare_graph_becomes_kg_adapter(self, tenant_graph):
        adapter = adapt(tenant_graph)
        assert isinstance(adapter, KGAdapter)
        assert adapter.kinds == ("kg_path",)

    def test_prebuilt_adapter_passes_through(self, fitted_markov):
        adapter = RecommenderAdapter(fitted_markov)
        assert adapt(adapter) is adapter

    def test_unadaptable_object_raises_naming_the_surfaces(self):
        with pytest.raises(ConfigurationError, match="plan_for_requests"):
            adapt(object())

    def test_each_adapter_validates_its_model(self):
        with pytest.raises(ConfigurationError, match="plan_for_requests"):
            PlannerAdapter(object())
        with pytest.raises(ConfigurationError, match="top_k"):
            RecommenderAdapter(object())
        with pytest.raises(ConfigurationError, match="ItemKnowledgeGraph"):
            KGAdapter()


class TestRecommenderAdapter:
    def test_rank_matches_top_k(self, fitted_markov, tenant_contexts):
        adapter = RecommenderAdapter(fitted_markov)
        history, _, user = tenant_contexts[0]
        [answer] = adapter.plan_for_requests(
            [_tuple("rank", history, 5, user_index=user)]
        )
        assert answer == [
            int(item) for item in fitted_markov.top_k(history, 5, user_index=user)
        ]

    def test_next_step_is_objective_blind_top_one(self, fitted_markov, tenant_contexts):
        """The A/B control arm: best unseen item, objective ignored."""
        adapter = RecommenderAdapter(fitted_markov)
        history, objective, user = tenant_contexts[0]
        answers = adapter.plan_for_requests(
            [
                _tuple("next_step", history, objective, user_index=user),
                _tuple("next_step", history, objective + 1, user_index=user),
            ]
        )
        exclude = [item for item in history if item != 0]
        ranked = fitted_markov.top_k(history, 1, user_index=user, exclude=exclude)
        expected = int(ranked[0]) if ranked else None
        assert answers == [expected, expected]

    def test_serving_generation_reflects_fit_generation(self, fitted_markov):
        adapter = RecommenderAdapter(fitted_markov)
        expected = getattr(fitted_markov, "fit_generation", None)
        assert adapter.serving_generation == (
            int(expected) if expected is not None else None
        )


class TestKGAdapter:
    def test_kg_path_matches_shortest_item_path(self, tenant_graph, tenant_contexts):
        adapter = KGAdapter(graph=tenant_graph)
        history, objective, _ = tenant_contexts[0]
        [answer] = adapter.plan_for_requests([_tuple("kg_path", [history[-1]], objective)])
        assert answer == [
            int(item)
            for item in tenant_graph.shortest_item_path(history[-1], objective)
        ]

    def test_unsupported_kind_fails_the_whole_sub_batch(self, tenant_graph):
        adapter = KGAdapter(graph=tenant_graph)
        with pytest.raises(ServingError, match="next_step"):
            adapter.plan_for_requests(
                [_tuple("kg_path", [1], 2), _tuple("next_step", [1], 2)]
            )


class TestPlannerAdapter:
    def test_delegates_the_whole_batch_bit_identically(
        self, make_planner, tenant_contexts
    ):
        planner = make_planner()
        reference = make_planner()
        adapter = PlannerAdapter(planner)
        batch = [
            _tuple("next_step", history, objective, user_index=user)
            for history, objective, user in tenant_contexts[:4]
        ]
        assert adapter.plan_for_requests(batch) == reference.plan_for_requests(
            list(batch)
        )

    def test_base_adapter_answer_is_abstract(self):
        adapter = KindAdapter()
        adapter.kinds = ("next_step",)
        with pytest.raises(NotImplementedError):
            adapter.plan_for_requests([_tuple("next_step", [1], 2)])
