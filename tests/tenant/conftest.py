"""Fixtures for the in-process multi-tenant suite.

The model zoo is one fitted backbone's worth of tenants: a beam planner
(the IRS tenant), the Markov recommender (the zoo/control tenant) and the
bare item knowledge graph (the kg tenant).  Planners are built per test —
serving mutates their caches — while the backbone, recommender and graph
are session-scoped read-only.
"""

from __future__ import annotations

import pytest

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives
from repro.kg.graph import ItemKnowledgeGraph

MAX_LENGTH = 5


@pytest.fixture(scope="session")
def tenant_irn(tiny_split):
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=50,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="session")
def tenant_graph(tiny_corpus):
    return ItemKnowledgeGraph().build(tiny_corpus)


@pytest.fixture(scope="session")
def tenant_contexts(tiny_split):
    instances = sample_objectives(
        tiny_split, min_objective_interactions=2, max_instances=9
    )
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


@pytest.fixture(scope="session")
def tenant_instances(tiny_split):
    return sample_objectives(tiny_split, min_objective_interactions=2, max_instances=6)


@pytest.fixture()
def make_planner(tenant_irn, tiny_split):
    """Factory for fresh planners sharing the session backbone."""

    def build(**kwargs):
        kwargs.setdefault("max_length", MAX_LENGTH)
        return BeamSearchPlanner(tenant_irn, **kwargs).fit(tiny_split)

    return build
