"""Tests for session metrics aggregation and the interactive experiment driver."""

from __future__ import annotations

import pytest

from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.evaluation.protocol import sample_objectives
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.simulation.experiment import run_interactive_experiment
from repro.simulation.metrics import aggregate_sessions
from repro.simulation.session import SessionResult, StepOutcome
from repro.utils.exceptions import ConfigurationError


def _session(reached: bool, accepted: int, rejected: int, abandoned: bool = False) -> SessionResult:
    result = SessionResult(user_index=0, history=(1, 2), objective=99)
    step = 0
    for _ in range(accepted):
        result.steps.append(StepOutcome(step, item=10 + step, accepted=True, acceptance_probability=0.8))
        step += 1
    for _ in range(rejected):
        result.steps.append(StepOutcome(step, item=50 + step, accepted=False, acceptance_probability=0.1))
        step += 1
    result.reached = reached
    result.abandoned = abandoned
    return result


class TestAggregateSessions:
    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            aggregate_sessions([])

    def test_success_and_abandonment_rates(self):
        sessions = [
            _session(reached=True, accepted=3, rejected=1),
            _session(reached=False, accepted=1, rejected=3, abandoned=True),
        ]
        metrics = aggregate_sessions(sessions)
        assert metrics.interactive_success_rate == pytest.approx(0.5)
        assert metrics.abandonment_rate == pytest.approx(0.5)
        assert metrics.num_sessions == 2

    def test_acceptance_rate_average(self):
        sessions = [
            _session(reached=True, accepted=4, rejected=0),
            _session(reached=False, accepted=1, rejected=1),
        ]
        metrics = aggregate_sessions(sessions)
        assert metrics.acceptance_rate == pytest.approx((1.0 + 0.5) / 2)

    def test_steps_to_success_only_counts_successes(self):
        sessions = [
            _session(reached=True, accepted=2, rejected=0),
            _session(reached=False, accepted=5, rejected=5),
        ]
        metrics = aggregate_sessions(sessions)
        assert metrics.mean_steps_to_success == pytest.approx(2.0)

    def test_as_row_shape(self):
        metrics = aggregate_sessions([_session(True, 2, 1)])
        row = metrics.as_row("IRN")
        assert row["framework"] == "IRN"
        assert set(row) == {
            "framework",
            "interactive_SR",
            "acceptance_rate",
            "abandonment_rate",
            "mean_steps",
            "mean_accepted",
            "steps_to_success",
        }


class TestRunInteractiveExperiment:
    @pytest.fixture(scope="class")
    def frameworks(self, tiny_split):
        return {
            "Vanilla Markov": VanillaInfluential(MarkovChainRecommender()).fit(tiny_split),
            "Rec2Inf POP": Rec2Inf(Popularity(), candidate_k=20).fit(tiny_split),
        }

    @pytest.fixture(scope="class")
    def instances(self, tiny_split):
        return sample_objectives(tiny_split, min_objective_interactions=2, max_instances=8, seed=1)

    def test_requires_frameworks_and_instances(self, markov_evaluator, instances):
        with pytest.raises(ConfigurationError):
            run_interactive_experiment({}, instances, markov_evaluator)

    def test_rows_have_one_entry_per_framework(self, frameworks, instances, markov_evaluator):
        comparison = run_interactive_experiment(
            frameworks, instances, markov_evaluator, max_steps=6, seed=0
        )
        rows = comparison.rows()
        assert {row["framework"] for row in rows} == set(frameworks)
        for row in rows:
            assert 0.0 <= row["interactive_SR"] <= 1.0
            assert 0.0 <= row["acceptance_rate"] <= 1.0

    def test_deterministic_across_runs(self, frameworks, instances, markov_evaluator):
        first = run_interactive_experiment(
            frameworks, instances, markov_evaluator, max_steps=6, seed=4
        )
        second = run_interactive_experiment(
            frameworks, instances, markov_evaluator, max_steps=6, seed=4
        )
        assert first.rows() == second.rows()

    def test_keep_sessions_returns_raw_results(self, frameworks, instances, markov_evaluator):
        comparison = run_interactive_experiment(
            frameworks, instances, markov_evaluator, max_steps=4, keep_sessions=True
        )
        assert set(comparison.sessions) == set(frameworks)
        for sessions in comparison.sessions.values():
            assert len(sessions) == len(instances)
