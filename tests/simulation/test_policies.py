"""Tests for the replanning policies."""

from __future__ import annotations

import pytest

from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.models.markov import MarkovChainRecommender
from repro.simulation.policies import (
    AggressivenessBackoffPolicy,
    ExcludeRejectedPolicy,
    PersistentPolicy,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def vanilla_markov(tiny_split):
    return VanillaInfluential(MarkovChainRecommender()).fit(tiny_split)


@pytest.fixture(scope="module")
def rec2inf_markov(tiny_split):
    return Rec2Inf(MarkovChainRecommender(), candidate_k=10).fit(tiny_split)


def _instance(tiny_split):
    test = tiny_split.test[0]
    history = list(test.history)
    objective = test.target
    return history, objective


class TestPersistentPolicy:
    def test_delegates_to_recommender(self, tiny_split, vanilla_markov):
        history, objective = _instance(tiny_split)
        policy = PersistentPolicy()
        direct = vanilla_markov.next_step(history, objective, [], user_index=0)
        via_policy = policy.propose(vanilla_markov, history, objective, [], [], user_index=0)
        assert via_policy == direct

    def test_may_repeat_rejected_item(self, tiny_split, vanilla_markov):
        history, objective = _instance(tiny_split)
        policy = PersistentPolicy()
        first = policy.propose(vanilla_markov, history, objective, [], [], user_index=0)
        again = policy.propose(vanilla_markov, history, objective, [], [first], user_index=0)
        assert again == first


class TestExcludeRejectedPolicy:
    def test_invalid_retries(self):
        with pytest.raises(ConfigurationError):
            ExcludeRejectedPolicy(max_retries=0)

    def test_avoids_rejected_items(self, tiny_split, vanilla_markov):
        history, objective = _instance(tiny_split)
        policy = ExcludeRejectedPolicy(max_retries=5)
        first = policy.propose(vanilla_markov, history, objective, [], [], user_index=0)
        assert first is not None
        second = policy.propose(vanilla_markov, history, objective, [], [first], user_index=0)
        assert second is None or second != first

    def test_gives_up_after_max_retries(self, tiny_split):
        class _Stubborn(VanillaInfluential):
            """Always proposes item 1 regardless of context."""

            def next_step(self, history, objective, path_so_far, user_index=None):
                return 1

        recommender = _Stubborn(MarkovChainRecommender()).fit(tiny_split)
        history, objective = _instance(tiny_split)
        policy = ExcludeRejectedPolicy(max_retries=3)
        assert policy.propose(recommender, history, objective, [], [1], user_index=0) is None


class TestAggressivenessBackoffPolicy:
    def test_invalid_backoff(self):
        with pytest.raises(ConfigurationError):
            AggressivenessBackoffPolicy(backoff=1.5)

    def test_rejections_shrink_rec2inf_candidate_set(self, tiny_split, rec2inf_markov):
        policy = AggressivenessBackoffPolicy(backoff=0.5)
        policy.reset(rec2inf_markov)
        original = rec2inf_markov.candidate_k
        policy.notify_rejection(rec2inf_markov, item=1)
        assert rec2inf_markov.candidate_k <= original
        policy.reset(rec2inf_markov)
        assert rec2inf_markov.candidate_k == original

    def test_candidate_k_never_below_one(self, tiny_split, rec2inf_markov):
        policy = AggressivenessBackoffPolicy(backoff=0.5)
        policy.reset(rec2inf_markov)
        for _ in range(20):
            policy.notify_rejection(rec2inf_markov, item=1)
        assert rec2inf_markov.candidate_k >= 1
        policy.reset(rec2inf_markov)

    def test_objective_weight_backoff_floor(self, tiny_split):
        class _Weighted(VanillaInfluential):
            objective_weight = 1.0

        recommender = _Weighted(MarkovChainRecommender()).fit(tiny_split)
        policy = AggressivenessBackoffPolicy(backoff=0.5, min_weight=0.2)
        policy.reset(recommender)
        for _ in range(10):
            policy.notify_rejection(recommender, item=1)
        assert recommender.objective_weight == pytest.approx(0.2)
        policy.reset(recommender)
        assert recommender.objective_weight == pytest.approx(1.0)
