"""Tests for the simulated-user acceptance model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.user import AcceptanceProfile, SimulatedUser
from repro.utils.exceptions import ConfigurationError


class TestAcceptanceProfile:
    def test_defaults_are_neutral(self):
        profile = AcceptanceProfile()
        assert profile.acceptance_bias == 0.0
        assert profile.temperature == 1.0
        assert profile.patience == 3

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceptanceProfile(temperature=0.0)

    def test_invalid_patience_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceptanceProfile(patience=0)

    def test_none_patience_allowed(self):
        assert AcceptanceProfile(patience=None).patience is None

    def test_from_impressionability_midpoint_is_neutral(self):
        profile = AcceptanceProfile.from_impressionability(0.5)
        assert profile.acceptance_bias == pytest.approx(0.0)

    def test_from_impressionability_monotone(self):
        low = AcceptanceProfile.from_impressionability(0.1)
        high = AcceptanceProfile.from_impressionability(0.9)
        assert high.acceptance_bias > low.acceptance_bias

    def test_from_impressionability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            AcceptanceProfile.from_impressionability(1.5)

    @given(value=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_from_impressionability_bias_bounded(self, value):
        profile = AcceptanceProfile.from_impressionability(value)
        assert -2.0 <= profile.acceptance_bias <= 2.0


class TestSimulatedUser:
    def test_probability_in_unit_interval(self, markov_evaluator, tiny_split):
        user = SimulatedUser(markov_evaluator)
        history = list(tiny_split.test[0].history)
        for item in range(1, min(20, tiny_split.corpus.vocab.size)):
            probability = user.acceptance_probability(item, history)
            assert 0.0 <= probability <= 1.0

    def test_higher_bias_means_higher_acceptance(self, markov_evaluator, tiny_split):
        history = list(tiny_split.test[0].history)
        item = tiny_split.test[0].target
        eager = SimulatedUser(markov_evaluator, AcceptanceProfile(acceptance_bias=3.0))
        wary = SimulatedUser(markov_evaluator, AcceptanceProfile(acceptance_bias=-3.0))
        assert eager.acceptance_probability(item, history) > wary.acceptance_probability(
            item, history
        )

    def test_relevant_item_more_acceptable_than_random(self, markov_evaluator, tiny_split):
        instance = tiny_split.test[0]
        history = list(instance.history)
        top = markov_evaluator.model.top_k(history, 1)[0]
        distribution = markov_evaluator.distribution(history)
        least = int(np.argmin(np.where(np.arange(len(distribution)) == 0, np.inf, distribution)))
        user = SimulatedUser(markov_evaluator)
        assert user.acceptance_probability(top, history) >= user.acceptance_probability(
            least, history
        )

    def test_deterministic_mode_is_threshold(self, markov_evaluator, tiny_split):
        history = list(tiny_split.test[0].history)
        user = SimulatedUser(markov_evaluator, deterministic=True)
        for item in range(1, 10):
            expected = user.acceptance_probability(item, history) >= 0.5
            assert user.accepts(item, history) is expected

    def test_accepts_reproducible_with_seed(self, markov_evaluator, tiny_split):
        history = list(tiny_split.test[0].history)
        draws_a = [
            SimulatedUser(markov_evaluator, seed=7).accepts(item, history) for item in range(1, 15)
        ]
        draws_b = [
            SimulatedUser(markov_evaluator, seed=7).accepts(item, history) for item in range(1, 15)
        ]
        assert draws_a == draws_b

    def test_abandonment_respects_patience(self, markov_evaluator):
        user = SimulatedUser(markov_evaluator, AcceptanceProfile(patience=2))
        assert not user.abandons_after(1)
        assert user.abandons_after(2)
        assert user.abandons_after(3)

    def test_no_abandonment_when_patience_none(self, markov_evaluator):
        user = SimulatedUser(markov_evaluator, AcceptanceProfile(patience=None))
        assert not user.abandons_after(10_000)
