"""Tests for the interactive session loop."""

from __future__ import annotations

import pytest

from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.models.markov import MarkovChainRecommender
from repro.simulation.policies import ExcludeRejectedPolicy, PersistentPolicy
from repro.simulation.session import InteractiveSession, SessionResult, StepOutcome
from repro.simulation.user import AcceptanceProfile, SimulatedUser
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def rec2inf_markov(tiny_split):
    return Rec2Inf(MarkovChainRecommender(), candidate_k=15).fit(tiny_split)


@pytest.fixture(scope="module")
def vanilla_markov(tiny_split):
    return VanillaInfluential(MarkovChainRecommender()).fit(tiny_split)


def _instance(tiny_split, index=0):
    test = tiny_split.test[index]
    return list(test.history), int(test.target)


class _AlwaysAcceptUser(SimulatedUser):
    def accepts(self, item, sequence):
        return True


class _AlwaysRejectUser(SimulatedUser):
    def accepts(self, item, sequence):
        return False


class TestInteractiveSession:
    def test_invalid_max_steps(self, markov_evaluator, rec2inf_markov):
        user = SimulatedUser(markov_evaluator)
        with pytest.raises(ConfigurationError):
            InteractiveSession(rec2inf_markov, user, max_steps=0)

    def test_respects_step_budget(self, tiny_split, markov_evaluator, rec2inf_markov):
        history, objective = _instance(tiny_split)
        user = _AlwaysAcceptUser(markov_evaluator)
        session = InteractiveSession(rec2inf_markov, user, max_steps=5)
        result = session.run(history, objective, user_index=0)
        assert result.num_steps <= 5

    def test_all_accepted_when_user_always_accepts(
        self, tiny_split, markov_evaluator, rec2inf_markov
    ):
        history, objective = _instance(tiny_split)
        user = _AlwaysAcceptUser(markov_evaluator)
        result = InteractiveSession(rec2inf_markov, user, max_steps=8).run(
            history, objective, user_index=0
        )
        assert result.acceptance_rate == pytest.approx(1.0)
        assert not result.abandoned
        assert result.rejected_items == []

    def test_reached_requires_objective_accepted(
        self, tiny_split, markov_evaluator, rec2inf_markov
    ):
        history, objective = _instance(tiny_split)
        user = _AlwaysAcceptUser(markov_evaluator)
        result = InteractiveSession(rec2inf_markov, user, max_steps=30).run(
            history, objective, user_index=0
        )
        if result.reached:
            assert result.accepted_items[-1] == objective

    def test_always_reject_abandons_after_patience(
        self, tiny_split, markov_evaluator, vanilla_markov
    ):
        history, objective = _instance(tiny_split)
        user = _AlwaysRejectUser(markov_evaluator, AcceptanceProfile(patience=2))
        result = InteractiveSession(
            vanilla_markov, user, policy=PersistentPolicy(), max_steps=20
        ).run(history, objective, user_index=0)
        assert result.abandoned
        assert result.num_steps == 2
        assert result.accepted_items == []
        assert not result.reached

    def test_final_sequence_appends_only_accepted(
        self, tiny_split, markov_evaluator, rec2inf_markov
    ):
        history, objective = _instance(tiny_split, index=1)
        user = SimulatedUser(markov_evaluator, seed=3)
        result = InteractiveSession(rec2inf_markov, user, max_steps=10).run(
            history, objective, user_index=1
        )
        assert result.final_sequence() == list(history) + result.accepted_items

    def test_reproducible_given_same_seed(self, tiny_split, markov_evaluator, rec2inf_markov):
        history, objective = _instance(tiny_split)
        results = []
        for _ in range(2):
            user = SimulatedUser(markov_evaluator, seed=11)
            result = InteractiveSession(rec2inf_markov, user, max_steps=10).run(
                history, objective, user_index=0
            )
            results.append([(step.item, step.accepted) for step in result.steps])
        assert results[0] == results[1]

    def test_exclude_policy_never_reproposes_rejected(
        self, tiny_split, markov_evaluator, rec2inf_markov
    ):
        history, objective = _instance(tiny_split)
        user = SimulatedUser(
            markov_evaluator, AcceptanceProfile(acceptance_bias=-2.0, patience=None), seed=5
        )
        result = InteractiveSession(
            rec2inf_markov, user, policy=ExcludeRejectedPolicy(), max_steps=15
        ).run(history, objective, user_index=0)
        rejected = result.rejected_items
        # A rejected item may appear at most once among the proposals.
        proposals = [step.item for step in result.steps]
        for item in rejected:
            assert proposals.count(item) == 1


class TestSessionResult:
    def test_properties_on_empty_session(self):
        result = SessionResult(user_index=0, history=(1, 2), objective=5)
        assert result.acceptance_rate == 0.0
        assert result.accepted_items == []
        assert result.final_sequence() == [1, 2]

    def test_properties_with_mixed_steps(self):
        result = SessionResult(user_index=0, history=(1,), objective=9)
        result.steps = [
            StepOutcome(step=0, item=3, accepted=True, acceptance_probability=0.9),
            StepOutcome(step=1, item=4, accepted=False, acceptance_probability=0.2),
            StepOutcome(step=2, item=9, accepted=True, acceptance_probability=0.8),
        ]
        result.reached = True
        assert result.accepted_items == [3, 9]
        assert result.rejected_items == [4]
        assert result.acceptance_rate == pytest.approx(2 / 3)
        assert result.final_sequence() == [1, 3, 9]
