"""LRU semantics, bounds and counters of :class:`repro.cache.memo.PlanCache`."""

from __future__ import annotations

import pytest

from repro.cache.memo import PlanCache
from repro.cache.stats import DecodeStats
from repro.utils.exceptions import ConfigurationError


class TestPlanCacheLRU:
    def test_get_put_roundtrip(self):
        cache = PlanCache(4)
        assert cache.get(("h", 1)) is None
        cache.put(("h", 1), (5, 6))
        assert cache.get(("h", 1)) == (5, 6)
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_bound_holds(self):
        cache = PlanCache(2)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 2
        assert cache.evictions == 3
        assert 3 in cache and 4 in cache  # most recent survive

    def test_lru_order_refreshed_by_get(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_refreshes_existing_key(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_size_disables(self):
        cache = PlanCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(-1)

    def test_clear_counts_invalidations_keeps_counters(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.hits == 1
        cache.clear()  # clearing an empty cache is not an invalidation
        assert cache.invalidations == 1

    def test_cache_info_reports_hit_rate(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        info = cache.cache_info()
        assert info["size"] == 1
        assert info["maxsize"] == 4
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5


class TestDecodeStats:
    def test_records_by_kind(self):
        stats = DecodeStats()
        stats.record_full(100)
        stats.record_incremental(4)
        stats.record_fallback(50)
        assert stats.forwards == 3
        assert stats.tokens_encoded == 154
        snapshot = stats.snapshot()
        assert snapshot["tokens_incremental"] == 4
        stats.reset()
        assert stats.forwards == 0 and stats.tokens_encoded == 0

    def test_delta(self):
        stats = DecodeStats()
        stats.record_full(10)
        before = stats.snapshot()
        stats.record_incremental(2)
        delta = DecodeStats.delta(before, stats.snapshot())
        assert delta["tokens_incremental"] == 2
        assert delta["tokens_full"] == 0
        assert delta["forwards"] == 1

    def test_concurrent_records_lose_no_increments(self):
        """Sharded workers record against one shared backbone's stats."""
        import threading

        stats = DecodeStats()
        per_thread = 500

        def hammer():
            for _ in range(per_thread):
                stats.record_full(3)
                stats.record_incremental(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.full_forwards == 4 * per_thread
        assert stats.tokens_encoded == 4 * per_thread * 4


class TestPlanCacheClearResetStats:
    """Satellite of the sharding PR: ``clear(reset_stats=True)`` zeroes the
    counters so recycled per-shard caches merge cleanly into one report."""

    def test_default_clear_keeps_counters(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.hits == 1 and cache.invalidations == 1

    def test_reset_stats_zeroes_everything(self):
        cache = PlanCache(2)
        for i in range(4):
            cache.put(i, i)
        cache.get(3)
        cache.get("missing")
        cache.clear(reset_stats=True)
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.evictions == 0 and cache.invalidations == 0
        info = cache.cache_info()
        assert info["hit_rate"] == 0.0 and info["size"] == 0

    def test_reusable_after_reset(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.clear(reset_stats=True)
        cache.put("b", 2)
        assert cache.get("b") == 2
        assert cache.hits == 1 and cache.misses == 0
