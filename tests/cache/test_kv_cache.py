"""Unit and parity tests for the nn-level incremental decoding cache.

The exactness contract of :mod:`repro.cache.kv`: with *causal* masks,
incremental decoding through cached prefix K/V must reproduce full
re-encoding at ANY depth of the stack; with arbitrary additive masks it is
exact for single-layer stacks.  Parities here are checked at the
:class:`~repro.nn.transformer.TransformerEncoder` level with tight
tolerances (same entries, possibly different BLAS summation order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.kv import (
    DecodingState,
    LayerKVCache,
    allocation_stats,
    reset_allocation_stats,
)
from repro.nn.tensor import Tensor, inference_dtype_scope, no_grad
from repro.nn.transformer import TransformerEncoder, causal_mask
from repro.utils.exceptions import ConfigurationError

RTOL, ATOL = 1e-9, 1e-10


class TestLayerKVCache:
    def test_extend_accumulates_and_returns_full(self, rng):
        cache = LayerKVCache()
        first = rng.normal(size=(2, 2, 3, 4))
        full_k, _ = cache.extend(first, first.copy())
        assert full_k.shape == (2, 2, 3, 4)
        assert cache.length == 3
        second = rng.normal(size=(2, 2, 1, 4))
        full_k, full_v = cache.extend(second, second.copy())
        assert full_k.shape == (2, 2, 4, 4)
        np.testing.assert_array_equal(full_k[:, :, :3], first)
        assert cache.length == 4

    def test_persist_keeps_transient_out_of_cache(self, rng):
        cache = LayerKVCache()
        new = rng.normal(size=(1, 1, 2, 4))
        full_k, _ = cache.extend(new, new.copy(), persist=1)
        assert full_k.shape[2] == 2  # both participate in this forward
        assert cache.length == 1  # only the first persists
        np.testing.assert_array_equal(cache.keys, new[:, :, :1])

    def test_reorder_gathers_rows(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(3, 1, 2, 4))
        cache.extend(keys, keys.copy())
        cache.reorder([2, 0, 0])
        assert cache.batch_size == 3
        np.testing.assert_array_equal(cache.keys[0], keys[2])
        np.testing.assert_array_equal(cache.keys[1], keys[0])
        np.testing.assert_array_equal(cache.keys[2], keys[0])

    def test_batch_mismatch_raises(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(2, 1, 2, 4))
        cache.extend(keys, keys.copy())
        with pytest.raises(ConfigurationError):
            cache.extend(keys[:1], keys[:1].copy())

    def test_invalid_persist_raises(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(1, 1, 2, 4))
        with pytest.raises(ConfigurationError):
            cache.extend(keys, keys.copy(), persist=3)


class TestArenaStorage:
    def test_extend_returns_views_into_the_arena(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(2, 1, 3, 4))
        full_k, full_v = cache.extend(keys, keys.copy())
        assert full_k.base is not None and np.shares_memory(full_k, cache.keys)
        assert full_v.base is not None and np.shares_memory(full_v, cache.values)

    def test_geometric_growth_doubles_capacity(self, rng):
        cache = LayerKVCache()
        step = rng.normal(size=(1, 1, 1, 4))
        cache.extend(step, step.copy())
        first_capacity = cache.capacity
        assert first_capacity >= cache.length
        for _ in range(first_capacity + 1):
            cache.extend(step, step.copy())
        assert cache.capacity == first_capacity * 2

    def test_appended_slice_is_the_only_copy_at_steady_state(self, rng):
        cache = LayerKVCache()
        prefix = rng.normal(size=(2, 2, 4, 4))
        cache.extend(prefix, prefix.copy())
        step = rng.normal(size=(2, 2, 1, 4))
        reset_allocation_stats()
        cache.extend(step, step.copy())  # capacity 8 holds length 5: no growth
        stats = allocation_stats()
        assert stats["arena_allocated_bytes"] == 0
        assert stats["copied_bytes"] == 2 * step.nbytes
        assert stats["concat_equivalent_bytes"] > stats["copied_bytes"]
        reset_allocation_stats()

    def test_transient_slots_are_overwritten_not_retained(self, rng):
        cache = LayerKVCache()
        first = rng.normal(size=(1, 1, 3, 2))
        cache.extend(first, first.copy(), persist=2)  # third column transient
        second = rng.normal(size=(1, 1, 2, 2))
        full_k, _ = cache.extend(second, second.copy(), persist=1)
        np.testing.assert_array_equal(full_k[:, :, :2], first[:, :, :2])
        np.testing.assert_array_equal(full_k[:, :, 2:], second)
        assert cache.length == 3

    def test_exact_growth_mode_still_avoids_concat_temporaries(self, rng):
        cache = LayerKVCache(growth="exact")
        step = rng.normal(size=(1, 1, 1, 4))
        cache.extend(step, step.copy())
        assert cache.capacity == 1  # exact: no headroom
        cache.extend(step, step.copy())
        assert cache.capacity == 2 and cache.length == 2

    def test_invalid_growth_mode_raises(self):
        with pytest.raises(ConfigurationError):
            LayerKVCache(growth="linear")

    def test_dtype_parameter_fixes_storage_precision(self, rng):
        cache = LayerKVCache(dtype="float32")
        keys = rng.normal(size=(1, 1, 2, 4))
        full_k, _ = cache.extend(keys, keys.copy())
        assert full_k.dtype == np.float32
        assert cache.keys.dtype == np.float32
        np.testing.assert_allclose(cache.keys, keys, rtol=0, atol=1e-6)

    def test_default_dtype_follows_inference_scope(self, rng):
        keys = rng.normal(size=(1, 1, 2, 4))
        with inference_dtype_scope("float32"):
            cache = LayerKVCache()
            cache.extend(keys, keys.copy())
        assert cache.dtype == np.float32
        plain = LayerKVCache()
        plain.extend(keys, keys.copy())
        assert plain.dtype == np.float64

    def test_reorder_reuses_spare_buffers_at_steady_batch(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(3, 1, 4, 4))
        cache.extend(keys, keys.copy())
        cache.reorder([2, 1, 0])  # allocates the spare pair
        reset_allocation_stats()
        cache.reorder([0, 2, 1])  # swaps buffers, no allocation
        assert allocation_stats()["arena_allocated_bytes"] == 0
        # Composition of the two gathers: [2,1,0] then [0,2,1] -> [k2,k0,k1].
        np.testing.assert_array_equal(cache.keys[1], keys[0])
        reset_allocation_stats()

    def test_reorder_changes_batch_size(self, rng):
        cache = LayerKVCache()
        keys = rng.normal(size=(4, 1, 3, 4))
        cache.extend(keys, keys.copy())
        cache.reorder([3, 0])
        assert cache.batch_size == 2
        np.testing.assert_array_equal(cache.keys[0], keys[3])
        step = rng.normal(size=(2, 1, 1, 4))
        full_k, _ = cache.extend(step, step.copy())
        assert full_k.shape == (2, 1, 4, 4)

    def test_decoding_state_forwards_dtype_and_growth(self, rng):
        state = DecodingState(2, dtype="float32", growth="exact")
        for cache in state:
            keys = rng.normal(size=(1, 1, 2, 4))
            cache.extend(keys, keys.copy())
            assert cache.dtype == np.float32
            assert cache.capacity == 2


class TestDecodingState:
    def test_layers_stay_in_lockstep(self, rng):
        state = DecodingState(3)
        assert len(state) == 3 and state.length == 0
        for cache in state:
            keys = rng.normal(size=(2, 1, 4, 4))
            cache.extend(keys, keys.copy())
        assert state.length == 4
        state.reorder([1, 0])
        assert state.batch_size == 2

    def test_requires_positive_layers(self):
        with pytest.raises(ConfigurationError):
            DecodingState(0)


@pytest.fixture(scope="module")
def encoder():
    encoder = TransformerEncoder(num_layers=3, d_model=8, num_heads=2, dropout=0.0, rng=0)
    encoder.eval()
    return encoder


class TestCausalIncrementalParity:
    def test_multi_layer_causal_decoding_matches_full(self, encoder, rng):
        """Token-by-token decoding == full forward, at three stacked layers."""
        batch, length, d_model = 3, 7, 8
        x = rng.normal(size=(batch, length, d_model))
        with no_grad():
            full = encoder(Tensor(x), mask=causal_mask(length)).data
            state = encoder.init_state()
            incremental = []
            for t in range(length):
                step_mask = np.zeros((1, t + 1))
                out = encoder(Tensor(x[:, t : t + 1, :]), mask=step_mask, state=state)
                incremental.append(out.data[:, 0, :])
        incremental = np.stack(incremental, axis=1)
        np.testing.assert_allclose(incremental, full, rtol=RTOL, atol=ATOL)

    def test_block_incremental_after_prefix(self, encoder, rng):
        """Encode a prefix once, then append several tokens in one step."""
        batch, prefix, suffix, d_model = 2, 4, 3, 8
        x = rng.normal(size=(batch, prefix + suffix, d_model))
        with no_grad():
            full = encoder(Tensor(x), mask=causal_mask(prefix + suffix)).data
            state = encoder.init_state()
            encoder(Tensor(x[:, :prefix, :]), mask=causal_mask(prefix), state=state)
            step_mask = causal_mask(prefix + suffix)[prefix:, :]
            out = encoder(Tensor(x[:, prefix:, :]), mask=step_mask, state=state).data
        np.testing.assert_allclose(out, full[:, prefix:, :], rtol=RTOL, atol=ATOL)

    def test_reordered_rows_decode_like_reordered_batch(self, encoder, rng):
        """Beam-style row gather: duplicated/pruned rows keep exact parity."""
        x = rng.normal(size=(3, 4, 8))
        gather = np.array([2, 0, 2])
        new = rng.normal(size=(3, 1, 8))
        reordered = np.concatenate([x[gather], new], axis=1)
        with no_grad():
            full = encoder(Tensor(reordered), mask=causal_mask(5)).data
            state = encoder.init_state()
            encoder(Tensor(x), mask=causal_mask(4), state=state)
            state.reorder(gather)
            out = encoder(Tensor(new), mask=np.zeros((1, 5)), state=state).data
        np.testing.assert_allclose(out[:, 0, :], full[:, -1, :], rtol=RTOL, atol=ATOL)


class TestSingleLayerObjectiveParity:
    def test_objective_style_mask_exact_for_one_layer(self, rng):
        """PIM-like masks (prefix attends a moving final column) are exact
        incrementally when the stack has a single layer: its K/V are
        projections of the fixed input embeddings."""
        encoder = TransformerEncoder(num_layers=1, d_model=8, num_heads=2, dropout=0.0, rng=1)
        encoder.eval()
        batch, prefix = 2, 5
        x = rng.normal(size=(batch, prefix + 2, 8))  # prefix + new token + objective
        length = prefix + 2
        mask = causal_mask(length)
        mask[: length - 1, length - 1] = 0.7  # reveal the objective column
        with no_grad():
            full = encoder(Tensor(x), mask=mask, state=None).data
            state = encoder.init_state()
            init_mask = causal_mask(prefix)
            encoder(Tensor(x[:, :prefix, :]), mask=init_mask, state=state, persist=prefix)
            step_mask = mask[prefix:, :]
            out = encoder(Tensor(x[:, prefix:, :]), mask=step_mask, state=state, persist=1).data
        np.testing.assert_allclose(out, full[:, prefix:, :], rtol=RTOL, atol=ATOL)

    def test_transient_column_not_cached(self, rng):
        encoder = TransformerEncoder(num_layers=1, d_model=8, num_heads=2, dropout=0.0, rng=1)
        encoder.eval()
        state = encoder.init_state()
        x = rng.normal(size=(1, 3, 8))
        with no_grad():
            encoder(Tensor(x), mask=causal_mask(3), state=state, persist=2)
        assert state.length == 2


class TestGradGuard:
    def test_kv_cache_requires_no_grad(self, encoder, rng):
        state = encoder.init_state()
        with pytest.raises(ConfigurationError):
            encoder(Tensor(rng.normal(size=(1, 2, 8))), mask=causal_mask(2), state=state)

    def test_layer_count_mismatch_raises(self, encoder, rng):
        state = DecodingState(2)  # encoder has 3 layers
        with no_grad(), pytest.raises(ConfigurationError):
            encoder(Tensor(rng.normal(size=(1, 2, 8))), mask=causal_mask(2), state=state)
