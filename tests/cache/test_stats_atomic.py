"""Atomicity of the counter snapshots (satellite of the async-serving PR).

Concurrent serving-loop drain threads read these counters while other
drains are mid-update; every read path must be one locked snapshot, never a
field-by-field walk that can observe half of an update."""

from __future__ import annotations

import threading

from repro.cache.memo import PlanCache
from repro.cache.stats import DecodeStats
from repro.shard.plancache import ShardedPlanCache


class TestDecodeStatsAtomicity:
    def test_snapshot_derived_totals_consistent_under_hammer(self):
        stats = DecodeStats()
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snapshot = stats.snapshot()
                if snapshot["forwards"] != (
                    snapshot["full_forwards"]
                    + snapshot["incremental_forwards"]
                    + snapshot["fallback_forwards"]
                ):
                    torn.append(snapshot)  # pragma: no cover - the bug case
                if snapshot["tokens_encoded"] != (
                    snapshot["tokens_full"]
                    + snapshot["tokens_incremental"]
                    + snapshot["tokens_fallback"]
                ):
                    torn.append(snapshot)  # pragma: no cover - the bug case

        def writer():
            for _ in range(2000):
                stats.record_full(3)
                stats.record_incremental(1)
                stats.record_fallback(2)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        observer = threading.Thread(target=reader)
        observer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        observer.join()
        assert torn == []
        final = stats.snapshot()
        assert final["forwards"] == 3 * 2000 * 3
        assert final["tokens_encoded"] == 3 * 2000 * (3 + 1 + 2)
        # The derived properties agree with the locked snapshot.
        assert stats.forwards == final["forwards"]
        assert stats.tokens_encoded == final["tokens_encoded"]


class TestPlanCacheCounters:
    def test_counters_snapshot_matches_cache_info(self):
        cache = PlanCache(2)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        counters = cache.counters()
        info = cache.cache_info()
        for key in ("size", "maxsize", "hits", "misses", "evictions", "invalidations"):
            assert counters[key] == info[key]
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["evictions"] == 1

    def test_sharded_counters_sum_per_shard_snapshots(self):
        cache = ShardedPlanCache(8, 4)
        for index in range(10):
            cache.get(("ctx", index))
            cache.put(("ctx", index), index)
        counters = cache.counters()
        assert counters["misses"] == 10
        assert counters["hits"] == 0
        assert counters["size"] == len(cache)
        assert cache.hits == 0 and cache.misses == 10
        per_shard = [shard.counters() for shard in cache.shards]
        assert sum(snapshot["misses"] for snapshot in per_shard) == 10

    def test_counters_consistent_under_concurrent_lookups(self):
        cache = PlanCache(64)
        barrier = threading.Barrier(4)

        def worker(offset: int):
            barrier.wait()
            for index in range(500):
                key = ("k", (offset + index) % 32)
                if cache.get(key) is None:
                    cache.put(key, index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] == 4 * 500
