"""Property-based invariants across the extension modules.

These tests use hypothesis to explore the input space of the pure-data
components added on top of the reproduction: session metrics, objective sets,
path statistics and the beam hypothesis scoring.  They never train models, so
hundreds of examples stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reports import path_length_statistics
from repro.core.beam import _Hypothesis
from repro.core.objectives import ItemSetObjective, SetPathRecord, set_success_rate
from repro.evaluation.protocol import PathRecord
from repro.simulation.metrics import aggregate_sessions
from repro.simulation.session import SessionResult, StepOutcome

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
steps_strategy = st.lists(
    st.tuples(st.integers(min_value=1, max_value=200), st.booleans()),
    min_size=0,
    max_size=25,
)


def _session_from(steps: list[tuple[int, bool]], objective: int = 999) -> SessionResult:
    result = SessionResult(user_index=0, history=(1, 2, 3), objective=objective)
    for index, (item, accepted) in enumerate(steps):
        result.steps.append(
            StepOutcome(step=index, item=item, accepted=accepted, acceptance_probability=0.5)
        )
    accepted_items = [item for item, accepted in steps if accepted]
    result.reached = objective in accepted_items
    return result


path_records_strategy = st.lists(
    st.builds(
        lambda history, path, objective: PathRecord(
            user_index=0, history=tuple(history), objective=objective, path=tuple(path)
        ),
        history=st.lists(st.integers(1, 100), min_size=1, max_size=10),
        path=st.lists(st.integers(1, 100), min_size=0, max_size=15),
        objective=st.integers(1, 100),
    ),
    min_size=1,
    max_size=10,
)


# --------------------------------------------------------------------------- #
# Session metrics
# --------------------------------------------------------------------------- #
class TestSessionMetricInvariants:
    @given(sessions=st.lists(steps_strategy, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_rates_stay_in_unit_interval(self, sessions):
        metrics = aggregate_sessions([_session_from(steps) for steps in sessions])
        assert 0.0 <= metrics.interactive_success_rate <= 1.0
        assert 0.0 <= metrics.acceptance_rate <= 1.0
        assert 0.0 <= metrics.abandonment_rate <= 1.0
        assert metrics.num_sessions == len(sessions)

    @given(sessions=st.lists(steps_strategy, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_accepted_items_never_exceed_steps(self, sessions):
        metrics = aggregate_sessions([_session_from(steps) for steps in sessions])
        assert metrics.mean_accepted_items <= metrics.mean_steps + 1e-9

    @given(steps=steps_strategy)
    @settings(max_examples=60, deadline=None)
    def test_acceptance_rate_matches_manual_count(self, steps):
        session = _session_from(steps)
        if steps:
            expected = sum(1 for _, accepted in steps if accepted) / len(steps)
            assert session.acceptance_rate == pytest.approx(expected)
        else:
            assert session.acceptance_rate == 0.0


# --------------------------------------------------------------------------- #
# Path statistics and objective sets
# --------------------------------------------------------------------------- #
class TestPathStatisticInvariants:
    @given(records=path_records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_reach_rate_bounds_and_lengths(self, records):
        statistics = path_length_statistics(records)
        assert 0.0 <= statistics["reach_rate"] <= 1.0
        assert 0.0 <= statistics["empty_paths"] <= 1.0
        assert statistics["mean_length"] >= 0.0
        max_length = max(len(record.path) for record in records)
        assert statistics["mean_length"] <= max_length + 1e-9

    @given(records=path_records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_reach_rate_matches_record_property(self, records):
        statistics = path_length_statistics(records)
        expected = sum(1 for record in records if record.objective in record.path) / len(records)
        assert statistics["reach_rate"] == pytest.approx(expected)


class TestObjectiveSetInvariants:
    @given(
        members=st.lists(st.integers(1, 50), min_size=1, max_size=8),
        paths=st.lists(st.lists(st.integers(1, 50), min_size=0, max_size=10), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_set_success_rate_consistent_with_membership(self, members, paths):
        records = [
            SetPathRecord(
                user_index=0,
                history=(1,),
                objective_name="set",
                members=tuple(sorted(set(members))),
                resolved_targets=(members[0],),
                path=tuple(path),
            )
            for path in paths
        ]
        rate = set_success_rate(records)
        expected = sum(1 for record in records if set(record.members) & set(record.path)) / len(
            records
        )
        assert rate == pytest.approx(expected)
        assert 0.0 <= rate <= 1.0

    @given(items=st.lists(st.integers(1, 100), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_item_set_objective_canonicalises(self, items):
        objective = ItemSetObjective(items)
        assert objective.items == sorted(set(objective.items))
        assert set(objective.items) == set(items)


# --------------------------------------------------------------------------- #
# Beam hypotheses
# --------------------------------------------------------------------------- #
class TestBeamHypothesisInvariants:
    @given(
        log_probs=st.lists(
            st.floats(min_value=-20.0, max_value=0.0, allow_nan=False), min_size=1, max_size=10
        ),
        bonus=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_completion_bonus_never_hurts(self, log_probs, bonus):
        items = tuple(range(1, len(log_probs) + 1))
        total = float(np.sum(log_probs))
        incomplete = _Hypothesis(items=items, log_probability=total, reached=False)
        complete = _Hypothesis(items=items, log_probability=total, reached=True)
        assert complete.score(bonus) >= incomplete.score(bonus)

    @given(
        log_probs=st.lists(
            st.floats(min_value=-20.0, max_value=0.0, allow_nan=False), min_size=1, max_size=10
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_score_is_length_normalised_log_probability(self, log_probs):
        items = tuple(range(1, len(log_probs) + 1))
        total = float(np.sum(log_probs))
        hypothesis_ = _Hypothesis(items=items, log_probability=total, reached=False)
        assert hypothesis_.score(0.0) == pytest.approx(total / len(items))
