"""overlap@k / path-score / plan-regret metric unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import overlap_at_k, path_score, plan_regret


class TestOverlapAtK:
    def test_none_candidates_is_full_overlap(self):
        row = np.array([-np.inf, 3.0, 2.0, 1.0])
        assert overlap_at_k(row, None, 2) == 1.0

    def test_full_candidate_set(self):
        row = np.array([-np.inf, 3.0, 2.0, 1.0])
        assert overlap_at_k(row, np.array([1, 2, 3]), 3) == 1.0

    def test_partial_overlap_fraction(self):
        row = np.array([-np.inf, 5.0, 4.0, 3.0, 2.0, 1.0])
        # exact top-3 = {1, 2, 3}; candidates cover two of them
        assert overlap_at_k(row, np.array([1, 3, 5]), 3) == pytest.approx(2 / 3)

    def test_tie_heavy_vocabulary_uses_stable_order(self):
        # All real items tie: the deterministic reference top-k is the
        # LOWEST k indices, so a candidate set of high-index tied items
        # scores zero overlap even though its values match.
        row = np.full(11, 7.0)
        row[0] = -np.inf
        assert overlap_at_k(row, np.array([1, 2, 3, 4]), 4) == 1.0
        assert overlap_at_k(row, np.array([7, 8, 9, 10]), 4) == 0.0
        assert overlap_at_k(row, np.array([2, 4, 8, 9]), 4) == pytest.approx(0.5)

    def test_k_clipped_to_finite_entries(self):
        row = np.array([-np.inf, 2.0, 1.0, -np.inf, -np.inf])
        # only two finite entries: reference set is {1, 2} whatever k says
        assert overlap_at_k(row, np.array([1, 2]), 4) == 1.0
        assert overlap_at_k(row, np.array([1]), 4) == pytest.approx(0.5)

    def test_all_masked_row(self):
        row = np.full(4, -np.inf)
        assert overlap_at_k(row, np.array([1]), 2) == 1.0

    def test_degenerate_k(self):
        row = np.array([-np.inf, 1.0])
        assert overlap_at_k(row, np.array([1]), 0) == 1.0

    def test_rejects_matrices(self):
        with pytest.raises(ValueError):
            overlap_at_k(np.zeros((2, 3)), np.array([1]), 1)


class TestPathScore:
    def test_empty_path_is_minus_inf(self, retrieval_irn, contexts):
        history, objective, user = contexts[0]
        assert path_score(retrieval_irn, history, objective, [], user) == -np.inf

    def test_objective_bonus_applied_when_reached(self, retrieval_irn, contexts):
        history, objective, user = contexts[0]
        path = [objective]
        with_bonus = path_score(
            retrieval_irn, history, objective, path, user, objective_bonus=1.0
        )
        without = path_score(
            retrieval_irn, history, objective, path, user, objective_bonus=0.0
        )
        assert with_bonus - without == pytest.approx(1.0, abs=1e-12)

    def test_matches_planner_ranking(self, retrieval_irn, tiny_split, contexts):
        # The planner's chosen path scores at least as well as a random
        # permutation-free alternative ending elsewhere, under the same
        # exact-score replay the planner optimises.
        from repro.core.beam import BeamSearchPlanner

        planner = BeamSearchPlanner(retrieval_irn).fit(tiny_split)
        history, objective, user = contexts[0]
        path = planner.plan_path(history, objective, user_index=user, max_length=4)
        assert path
        score = path_score(retrieval_irn, history, objective, path, user)
        assert np.isfinite(score)


class TestPlanRegret:
    def test_identical_plans_zero_regret(self, retrieval_irn, contexts):
        history, objective, user = contexts[0]
        path = [objective]
        assert plan_regret(
            retrieval_irn, history, objective, path, path, user
        ) == pytest.approx(0.0, abs=1e-12)

    def test_empty_plan_is_nan(self, retrieval_irn, contexts):
        history, objective, user = contexts[0]
        assert np.isnan(
            plan_regret(retrieval_irn, history, objective, [], [objective], user)
        )
        assert np.isnan(
            plan_regret(retrieval_irn, history, objective, [objective], [], user)
        )
