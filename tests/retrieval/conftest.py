"""Fixtures for the two-stage retrieval subsystem tests."""

from __future__ import annotations

import pytest

from repro.core.irn import IRN
from repro.evaluation.protocol import sample_objectives


@pytest.fixture(scope="module")
def retrieval_irn(tiny_split):
    return IRN(
        embedding_dim=16,
        user_dim=4,
        num_heads=2,
        num_layers=1,
        epochs=1,
        batch_size=32,
        max_sequence_length=50,
        seed=0,
    ).fit(tiny_split)


@pytest.fixture(scope="module")
def contexts(tiny_split):
    instances = sample_objectives(
        tiny_split, min_objective_interactions=2, max_instances=6
    )
    return [(list(inst.history), inst.objective, inst.user_index) for inst in instances]


def plan_args(contexts):
    return (
        [c[0] for c in contexts],
        [c[1] for c in contexts],
        [c[2] for c in contexts],
    )
