"""The exactness property behind two-stage retrieval.

Candidate-pruned top-k selection is identical to
:func:`repro.shard.topk.stable_topk` over the full scores whenever the
candidate set covers the true top-k — including under heavy ties, where
the deterministic (value desc, index asc) order is what makes the claim
well-defined.  Checked both on synthetic score matrices (pure masking
semantics) and through the IRN's gathered candidate projection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.topk import stable_topk


def _mask_outside(row: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    masked = np.full_like(row, -np.inf)
    masked[candidates] = row[candidates]
    return masked


class TestMaskedTopkIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_covering_candidates_reproduce_exact_topk(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(3, 64))
        scores[:, 0] = -np.inf
        k = 8
        top, values = stable_topk(scores, k)
        for row in range(scores.shape[0]):
            extras = rng.choice(np.arange(1, 64), size=12, replace=False)
            cover = np.unique(np.concatenate([top[row], extras]))
            masked = _mask_outside(scores[row], cover)
            pruned_top, pruned_values = stable_topk(masked[None, :], k)
            assert np.array_equal(pruned_top[0], top[row])
            assert np.array_equal(pruned_values[0], values[row])

    @pytest.mark.parametrize("seed", range(4))
    def test_tie_heavy_vocabulary(self, seed):
        # Integer-valued scores force massive ties; the stable order breaks
        # them by index, and a covering candidate set must reproduce that
        # exact selection (an excluded tied item always has a HIGHER index
        # than every selected one, so masking it cannot change winners).
        rng = np.random.default_rng(100 + seed)
        scores = rng.integers(0, 4, size=(2, 40)).astype(np.float64)
        scores[:, 0] = -np.inf
        k = 10
        top, values = stable_topk(scores, k)
        for row in range(scores.shape[0]):
            extras = rng.choice(np.arange(1, 40), size=10, replace=False)
            cover = np.unique(np.concatenate([top[row], extras]))
            masked = _mask_outside(scores[row], cover)
            pruned_top, pruned_values = stable_topk(masked[None, :], k)
            assert np.array_equal(pruned_top[0], top[row])
            assert np.array_equal(pruned_values[0], values[row])

    def test_non_covering_candidates_differ_visibly(self):
        # The counter-example guarding the property's precondition: drop the
        # argmax from the candidate set and the pruned top-k must NOT match.
        scores = np.array([[-np.inf, 5.0, 4.0, 3.0, 2.0]])
        top, _ = stable_topk(scores, 2)
        cover = np.array([2, 3, 4])  # argmax (1) excluded
        masked = _mask_outside(scores[0], cover)
        pruned_top, _ = stable_topk(masked[None, :], 2)
        assert not np.array_equal(pruned_top[0], top[0])


class TestIRNCandidateScoring:
    def test_candidate_columns_match_full_scores(self, retrieval_irn, contexts):
        histories = [c[0] for c in contexts]
        objectives = [c[1] for c in contexts]
        users = [c[2] for c in contexts]
        full = retrieval_irn.score_with_objective_batch(histories, objectives, users)
        rng = np.random.default_rng(0)
        candidates = np.unique(
            np.concatenate(
                [
                    rng.choice(
                        np.arange(1, retrieval_irn.vocab_size), size=20, replace=False
                    ),
                    np.asarray(objectives, dtype=np.int64),
                ]
            )
        )
        pruned = retrieval_irn.score_with_objective_batch(
            histories, objectives, users, candidate_items=candidates
        )
        keep = np.zeros(retrieval_irn.vocab_size, dtype=bool)
        keep[candidates] = True
        assert np.all(np.isneginf(pruned[:, ~keep]))
        np.testing.assert_allclose(
            pruned[:, keep], full[:, keep], rtol=0, atol=1e-9
        )

    def test_pruned_topk_equals_exact_under_coverage(self, retrieval_irn, contexts):
        k = 5
        for history, objective, user in contexts:
            full = retrieval_irn.score_with_objective_batch(
                [history], [objective], [user]
            )
            top, values = stable_topk(full, k)
            finite = np.isfinite(values[0])
            exact_top = top[0][finite]
            rng = np.random.default_rng(int(objective))
            extras = rng.choice(
                np.arange(1, retrieval_irn.vocab_size), size=15, replace=False
            )
            cover = np.unique(
                np.concatenate([exact_top, extras, [objective]])
            )
            pruned = retrieval_irn.score_with_objective_batch(
                [history], [objective], [user], candidate_items=cover
            )
            pruned_top, pruned_values = stable_topk(pruned, k)
            pruned_finite = np.isfinite(pruned_values[0])
            assert np.array_equal(pruned_top[0][pruned_finite], exact_top)

    def test_full_coverage_short_circuits_to_exact(self, retrieval_irn, contexts):
        histories = [c[0] for c in contexts]
        objectives = [c[1] for c in contexts]
        users = [c[2] for c in contexts]
        full = retrieval_irn.score_with_objective_batch(histories, objectives, users)
        covered = retrieval_irn.score_with_objective_batch(
            histories,
            objectives,
            users,
            candidate_items=np.arange(1, retrieval_irn.vocab_size),
        )
        # Structural bit-identity: full coverage takes the exact code path.
        assert np.array_equal(full, covered)

    def test_invalid_candidate_sets_rejected(self, retrieval_irn, contexts):
        from repro.utils.exceptions import ConfigurationError

        history, objective, user = contexts[0]
        with pytest.raises(ConfigurationError):
            retrieval_irn.score_with_objective_batch(
                [history], [objective], [user], candidate_items=np.array([], dtype=np.int64)
            )
        with pytest.raises(ConfigurationError):
            retrieval_irn.score_with_objective_batch(
                [history], [objective], [user], candidate_items=np.array([0, 3])
            )
        with pytest.raises(ConfigurationError):
            retrieval_irn.score_with_objective_batch(
                [history],
                [objective],
                [user],
                candidate_items=np.array([retrieval_irn.vocab_size]),
            )
