"""Planner-level contracts of two-stage retrieval.

``full_vocab_parity`` (full-coverage candidate sets plan bit-identically
to the exact planner), candidate containment of pruned plans, retrieval
metrics, and the cache-key discipline keeping pruned and exact plans from
ever aliasing in a :class:`~repro.cache.memo.PlanCache`.
"""

from __future__ import annotations

import pytest

from repro.cache.memo import PlanCache
from repro.core.beam import BeamSearchPlanner
from repro.retrieval import CooccurrenceNeighborGenerator, FullVocabGenerator
from repro.utils.exceptions import ConfigurationError


def plan_args(contexts):
    return (
        [c[0] for c in contexts],
        [c[1] for c in contexts],
        [c[2] for c in contexts],
    )


class _AlwaysFallback(FullVocabGenerator):
    """A generator that can never shortlist: every context falls back."""

    name = "always-fallback"

    def _candidates(self, history, objective, user_index):
        return None


@pytest.fixture(scope="module")
def exact_plans(retrieval_irn, tiny_split, contexts):
    planner = BeamSearchPlanner(retrieval_irn).fit(tiny_split)
    return planner.plan_paths_batch(*plan_args(contexts), max_length=5)


class TestFullVocabParity:
    def test_plans_bit_identical(self, retrieval_irn, tiny_split, contexts, exact_plans):
        pruned = BeamSearchPlanner(
            retrieval_irn, candidate_generator=FullVocabGenerator()
        ).fit(tiny_split)
        plans = pruned.plan_paths_batch(*plan_args(contexts), max_length=5)
        assert plans == exact_plans

    def test_fallback_contexts_plan_exactly(
        self, retrieval_irn, tiny_split, contexts, exact_plans
    ):
        planner = BeamSearchPlanner(
            retrieval_irn, candidate_generator=_AlwaysFallback()
        ).fit(tiny_split)
        plans = planner.plan_paths_batch(*plan_args(contexts), max_length=5)
        assert plans == exact_plans
        info = planner.cache_info()["retrieval"]
        assert info["fallbacks"] == info["requests"] > 0


class TestPrunedPlanning:
    def test_paths_stay_inside_candidate_sets(self, retrieval_irn, tiny_split, contexts):
        generator = CooccurrenceNeighborGenerator(num_candidates=16)
        planner = BeamSearchPlanner(
            retrieval_irn, candidate_generator=generator
        ).fit(tiny_split)
        plans = planner.plan_paths_batch(*plan_args(contexts), max_length=5)
        assert any(plans)
        for (history, objective, user), path in zip(contexts, plans):
            cands = generator.candidates(history, objective, user)
            if cands is None:
                continue
            assert set(path) <= set(int(i) for i in cands)

    def test_retrieval_metrics_counted(self, retrieval_irn, tiny_split, contexts):
        planner = BeamSearchPlanner(
            retrieval_irn, candidate_generator=CooccurrenceNeighborGenerator(num_candidates=16)
        ).fit(tiny_split)
        planner.plan_paths_batch(*plan_args(contexts), max_length=5)
        info = planner.cache_info()["retrieval"]
        assert info["generator"] == "cooccurrence"
        assert info["requests"] == len(contexts)
        assert info["candidate_items"] > 0
        assert info["fallbacks"] == 0

    def test_generator_fitted_by_planner_fit(self, retrieval_irn, tiny_split):
        generator = CooccurrenceNeighborGenerator(num_candidates=16)
        assert not generator.is_fitted
        BeamSearchPlanner(retrieval_irn, candidate_generator=generator).fit(tiny_split)
        assert generator.is_fitted

    def test_exact_planner_reports_no_retrieval_block(
        self, retrieval_irn, tiny_split
    ):
        planner = BeamSearchPlanner(retrieval_irn).fit(tiny_split)
        assert "retrieval" not in planner.cache_info()

    def test_invalid_generator_rejected(self, retrieval_irn):
        with pytest.raises(ConfigurationError):
            BeamSearchPlanner(retrieval_irn, candidate_generator=object())

    def test_sharded_pruned_planning_matches_serial(
        self, retrieval_irn, tiny_split, contexts
    ):
        generator = CooccurrenceNeighborGenerator(num_candidates=16).fit(
            tiny_split.corpus
        )
        serial = BeamSearchPlanner(
            retrieval_irn, candidate_generator=generator, num_workers=1
        ).fit(tiny_split)
        sharded = BeamSearchPlanner(
            retrieval_irn,
            candidate_generator=generator,
            num_workers=2,
            shard_backend="thread",
        ).fit(tiny_split)
        expected = serial.plan_paths_batch(*plan_args(contexts), max_length=5)
        assert sharded.plan_paths_batch(*plan_args(contexts), max_length=5) == expected


class TestCacheKeyDiscipline:
    def test_exact_and_pruned_keys_never_collide(self, retrieval_irn, tiny_split):
        exact = BeamSearchPlanner(retrieval_irn).fit(tiny_split)
        pruned = BeamSearchPlanner(
            retrieval_irn, candidate_generator=FullVocabGenerator()
        ).fit(tiny_split)
        assert exact._retrieval_key() is None
        assert pruned._retrieval_key() is not None
        context = ((1, 2, 3), 4, None, 5)
        cache = PlanCache(maxsize=8)
        cache.put(context + (exact._retrieval_key(),), ("exact",))
        cache.put(context + (pruned._retrieval_key(),), ("pruned",))
        assert len(cache) == 2
        assert cache.get(context + (exact._retrieval_key(),)) == ("exact",)
        assert cache.get(context + (pruned._retrieval_key(),)) == ("pruned",)

    def test_refit_generator_changes_key(self, retrieval_irn, tiny_split):
        generator = FullVocabGenerator()
        planner = BeamSearchPlanner(
            retrieval_irn, candidate_generator=generator
        ).fit(tiny_split)
        before = planner._retrieval_key()
        generator.fit(tiny_split.corpus)
        after = planner._retrieval_key()
        assert before != after

    def test_differently_configured_generators_differ(self, retrieval_irn, tiny_split):
        narrow = BeamSearchPlanner(
            retrieval_irn,
            candidate_generator=CooccurrenceNeighborGenerator(num_candidates=8),
        ).fit(tiny_split)
        wide = BeamSearchPlanner(
            retrieval_irn,
            candidate_generator=CooccurrenceNeighborGenerator(num_candidates=32),
        ).fit(tiny_split)
        assert narrow._retrieval_key() != wide._retrieval_key()

    def test_plan_cache_entries_carry_retrieval_component(
        self, retrieval_irn, tiny_split, contexts
    ):
        generator = FullVocabGenerator()
        planner = BeamSearchPlanner(
            retrieval_irn, candidate_generator=generator
        ).fit(tiny_split)
        planner.plan_paths_batch(*plan_args(contexts[:2]), max_length=5)
        history, objective, user = contexts[0]
        pruned_key = (
            tuple(history), objective, user, 5, generator.retrieval_key()
        )
        exact_key = (tuple(history), objective, user, 5, None)
        assert pruned_key in planner.plan_cache
        assert exact_key not in planner.plan_cache

    def test_step_cache_keys_isolated(self, retrieval_irn, tiny_split, contexts):
        history, objective, user = contexts[0]
        request = [("next_step", history, objective, (), user)]
        exact = BeamSearchPlanner(retrieval_irn).fit(tiny_split)
        exact.plan_for_requests(request)
        pruned = BeamSearchPlanner(
            retrieval_irn, candidate_generator=FullVocabGenerator()
        ).fit(tiny_split)
        pruned.plan_for_requests(request)
        exact_key = (tuple(history), objective, user, exact.max_length, None)
        pruned_key = (
            tuple(history),
            objective,
            user,
            pruned.max_length,
            pruned._retrieval_key(),
        )
        assert exact_key in exact._step_cache
        assert exact_key not in pruned._step_cache
        assert pruned_key in pruned._step_cache
