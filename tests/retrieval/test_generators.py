"""Candidate-generator contract tests: every backend obeys the protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import (
    CandidateGenerator,
    CooccurrenceNeighborGenerator,
    EmbeddingANNGenerator,
    FullVocabGenerator,
    make_generator,
    resolve_retrieval_spec,
    retrieval_registry,
)
from repro.utils.exceptions import ConfigurationError, NotFittedError


class _ZeroVectors:
    """Embedding stub whose vectors give the ANN query nothing to anchor on."""

    def __init__(self, vocab_size: int, dim: int = 8) -> None:
        self.vectors = np.zeros((vocab_size, dim), dtype=np.float64)


class TestProtocol:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FullVocabGenerator(),
            lambda: CooccurrenceNeighborGenerator(num_candidates=16),
            lambda: EmbeddingANNGenerator(num_candidates=16, embedding_dim=8),
        ],
        ids=["full", "cooccurrence", "ann"],
    )
    def test_candidates_sorted_unique_contain_objective(
        self, factory, tiny_corpus, contexts
    ):
        generator = factory().fit(tiny_corpus)
        vocab = tiny_corpus.vocab.size
        for history, objective, user in contexts:
            cands = generator.candidates(history, objective, user)
            if cands is None:
                continue
            assert cands.dtype == np.int64
            assert np.array_equal(cands, np.unique(cands))  # sorted + unique
            assert cands[0] >= 1 and cands[-1] < vocab
            assert objective in cands

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CooccurrenceNeighborGenerator(num_candidates=16),
            lambda: EmbeddingANNGenerator(num_candidates=16, embedding_dim=8),
        ],
        ids=["cooccurrence", "ann"],
    )
    def test_deterministic_for_fixed_fit(self, factory, tiny_corpus, contexts):
        generator = factory().fit(tiny_corpus)
        history, objective, user = contexts[0]
        first = generator.candidates(history, objective, user)
        second = generator.candidates(history, objective, user)
        assert first is not None
        assert np.array_equal(first, second)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            FullVocabGenerator().candidates([1, 2], 3)

    def test_objective_out_of_range_rejected(self, tiny_corpus):
        generator = FullVocabGenerator().fit(tiny_corpus)
        with pytest.raises(ConfigurationError):
            generator.candidates([1, 2], 0)
        with pytest.raises(ConfigurationError):
            generator.candidates([1, 2], tiny_corpus.vocab.size)

    def test_bad_num_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            CooccurrenceNeighborGenerator(num_candidates=0)

    def test_fit_generation_advances(self, tiny_corpus):
        generator = FullVocabGenerator()
        assert generator.fit_generation == 0
        generator.fit(tiny_corpus)
        key_one = generator.retrieval_key()
        generator.fit(tiny_corpus)
        key_two = generator.retrieval_key()
        assert generator.fit_generation == 2
        assert key_one != key_two
        assert key_one[0] == key_two[0]  # config identity is stable

    def test_config_key_distinguishes_knobs(self):
        narrow = CooccurrenceNeighborGenerator(num_candidates=16)
        wide = CooccurrenceNeighborGenerator(num_candidates=64)
        assert narrow.config_key() != wide.config_key()
        assert narrow.config_key() != EmbeddingANNGenerator(num_candidates=16).config_key()


class TestFullVocab:
    def test_every_real_item(self, tiny_corpus, contexts):
        generator = FullVocabGenerator().fit(tiny_corpus)
        history, objective, user = contexts[0]
        cands = generator.candidates(history, objective, user)
        assert np.array_equal(
            cands, np.arange(1, tiny_corpus.vocab.size, dtype=np.int64)
        )


class TestCooccurrenceGenerator:
    def test_respects_num_candidates(self, tiny_corpus, contexts):
        generator = CooccurrenceNeighborGenerator(num_candidates=8).fit(tiny_corpus)
        for history, objective, user in contexts:
            cands = generator.candidates(history, objective, user)
            assert cands is not None
            # +1: the objective is force-included even when not shortlisted.
            assert cands.size <= 9

    def test_neighbors_reflect_cooccurrence(self, tiny_corpus, contexts):
        generator = CooccurrenceNeighborGenerator(
            num_candidates=16, expansion_hops=1
        ).fit(tiny_corpus)
        history, objective, user = contexts[0]
        cands = generator.candidates(history, objective, user)
        assert cands is not None
        neighbors = generator._neighbors
        weights = generator._weights
        seeds = set(int(i) for i in history[-generator.history_window :]) | {objective}
        reachable = set()
        for seed in seeds:
            live = weights[seed] > 0
            reachable.update(int(i) for i in neighbors[seed][live])
        assert set(int(i) for i in cands) <= reachable | {objective}


class TestANNGenerator:
    def test_coarse_index_built_past_threshold(self, tiny_corpus, contexts):
        generator = EmbeddingANNGenerator(
            num_candidates=12, embedding_dim=8, coarse_threshold=8, nprobe=2
        ).fit(tiny_corpus)
        assert generator._centroids is not None
        history, objective, user = contexts[0]
        cands = generator.candidates(history, objective, user)
        assert cands is not None
        assert objective in cands
        assert cands.size <= 13

    def test_brute_force_below_threshold(self, tiny_corpus, contexts):
        generator = EmbeddingANNGenerator(
            num_candidates=12, embedding_dim=8, coarse_threshold=10_000
        ).fit(tiny_corpus)
        assert generator._centroids is None
        history, objective, user = contexts[0]
        assert generator.candidates(history, objective, user) is not None

    def test_zero_query_falls_back(self, tiny_corpus, contexts):
        generator = EmbeddingANNGenerator(
            num_candidates=12,
            embedding_model=_ZeroVectors(tiny_corpus.vocab.size),
        ).fit(tiny_corpus)
        history, objective, user = contexts[0]
        assert generator.candidates(history, objective, user) is None

    def test_unknown_embedding_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbeddingANNGenerator(embedding="bogus")


class TestSpecResolution:
    def test_known_specs(self):
        assert resolve_retrieval_spec(None) == "none"
        assert resolve_retrieval_spec("NONE") == "none"
        assert resolve_retrieval_spec("ann") == "ann"

    def test_unknown_spec_lists_known(self):
        with pytest.raises(ConfigurationError, match="ann"):
            resolve_retrieval_spec("hnsw")

    def test_make_generator(self):
        assert make_generator("none") is None
        assert isinstance(make_generator("full"), FullVocabGenerator)
        ann = make_generator("ann", num_candidates=32)
        assert isinstance(ann, EmbeddingANNGenerator)
        assert ann.num_candidates == 32
        assert isinstance(
            make_generator("cooccurrence"), CooccurrenceNeighborGenerator
        )

    def test_registry_names(self):
        for name in ("full", "ann", "cooccurrence"):
            assert issubclass(retrieval_registry.get(name), CandidateGenerator)
